"""Command-line entry point: list and run paper experiments.

Usage::

    python -m repro list                  # what can be reproduced
    python -m repro run fig10_speedup_2way [--accesses N] [--quick] [-j 4]
    python -m repro run all [--quick]     # every experiment, in order
    python -m repro sweep --designs direct,accord:2,sws:8:2 [-j 8]
    python -m repro profile soplex        # workload trace characteristics
    python -m repro bench --quick         # hot-loop throughput (acc/s)
    python -m repro info                  # system configuration summary
    python -m repro serve -j 4            # long-lived sweep service (HTTP)
    python -m repro submit --designs direct,accord:2 --quick   # client
    python -m repro audit                 # verify result-store integrity

``run`` and ``sweep`` share the executor flags: ``--jobs/-j`` fans
simulations out over worker processes, and results are memoized in a
content-addressed store (``--results-dir``, default
``$REPRO_RESULTS_DIR`` or ``~/.cache/repro``; ``--no-store`` disables
it), so re-running a sweep only simulates what changed. Resilience
knobs (``--retries``, ``--timeout``) and the sweep journal
(``--resume`` after a kill) are described in ``docs/robustness.md``,
as is the trust layer (``--verify-fraction`` shadow verification and
the ``audit`` subcommand).

Exit codes: 0 on success, :data:`EXIT_CONFIG` (2) for bad flags or
configuration, :data:`EXIT_EXECUTION` (3) when a sweep fails while
executing, :data:`EXIT_VERIFICATION` (4) when verification or an audit
finds an integrity failure that fallback cannot heal.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENT_MODULES

#: Bad flags / configuration (argparse's own error exit code).
EXIT_CONFIG = 2
#: A sweep accepted its configuration but failed while executing.
EXIT_EXECUTION = 3
#: Shadow verification caught an unhealable mismatch, or an audit
#: found integrity failures (digest or recompute mismatches).
EXIT_VERIFICATION = 4

_DESCRIPTIONS = {
    "fig1_associativity": "Fig 1: hit-rate & speedup vs associativity",
    "table1_lookup_cost": "Table I: lookup cost model",
    "table2_predictor_storage": "Table II: predictor accuracy & storage",
    "table4_workloads": "Table IV: workload characteristics",
    "fig6_cyclic": "Fig 6: cyclic kernel vs PIP",
    "table5_pip": "Table V: PWS sensitivity to PIP",
    "fig7_accuracy": "Fig 7: way-prediction accuracy",
    "table6_hitrate": "Table VI: hit-rate under way steering",
    "fig10_speedup_2way": "Fig 10: 2-way design speedups",
    "table7_sws_hitrate": "Table VII: SWS hit-rates",
    "fig13_sws_speedup": "Fig 13: SWS speedups",
    "fig12_all_workloads": "Fig 12: all 46 workloads",
    "table8_cache_size": "Table VIII: cache-size sensitivity",
    "table9_storage": "Table IX: ACCORD storage",
    "table10_predictors": "Table X: way-predictor comparison",
    "fig14_predictor_speedup": "Fig 14: predictor speedups",
    "fig15_energy": "Fig 15: energy / power / EDP",
    "ablations": "Ablations: replacement, GWS tables, SWS hashes, ...",
}


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENT_MODULES)
    print("Available experiments (python -m repro run <name>):\n")
    for name in EXPERIMENT_MODULES:
        print(f"  {name.ljust(width)}  {_DESCRIPTIONS.get(name, '')}")
    return 0


def _cmd_info() -> int:
    from repro.params.system import paper_system, scaled_system

    paper = paper_system()
    scaled = scaled_system()
    print("Paper system (Table III):")
    print(f"  cores            {paper.cores.num_cores} x "
          f"{paper.cores.frequency_ghz}GHz, {paper.cores.issue_width}-wide")
    print(f"  DRAM cache       {paper.dram_cache.capacity_bytes // 2**30}GB, "
          f"{paper.dram_bus.aggregate_bandwidth_gbps:.0f} GB/s")
    print(f"  NVM              {paper.nvm_capacity_bytes // 2**30}GB, "
          f"{paper.nvm_bus.aggregate_bandwidth_gbps:.0f} GB/s, "
          f"read {paper.nvm_timing.read_ns:.0f}ns / "
          f"write {paper.nvm_timing.write_ns:.0f}ns")
    print("Default experiment scale:")
    print(f"  scale            {scaled.scale:.6f} "
          f"(cache {scaled.dram_cache.capacity_bytes // 2**20}MB)")
    return 0


def _cmd_run(names: List[str], passthrough: List[str]) -> int:
    targets = EXPERIMENT_MODULES if names == ["all"] else names
    unknown = [n for n in targets if n not in EXPERIMENT_MODULES]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use 'python -m repro list' to see what is available",
              file=sys.stderr)
        return 2
    from repro.errors import ReproError

    for name in targets:
        module = importlib.import_module(f"repro.experiments.{name}")
        print(f"==> {name}")
        try:
            module.main(passthrough)
        except ReproError as exc:
            print(f"{name} failed: {exc}", file=sys.stderr)
            return EXIT_EXECUTION
        print()
    return 0


def _progress(done: int, total: int, key, source: str) -> None:
    print(f"[{done}/{total}] {key.display} ({source})", file=sys.stderr)


def _print_sweep_tables(per_design, labels, num_workloads, phase_csv=None):
    """Render sweep tables; returns the CSV columns (None on failure).

    Shared by the CLI ``sweep`` and the service client ``submit`` so
    both paths produce byte-identical tables and CSV exports from the
    same per-design result grids.
    """
    from repro.analysis.report import per_workload_table
    from repro.sim.runner import mean_hit_rate

    hit_columns = {
        label: {w: r.hit_rate for w, r in results.items()}
        for label, results in per_design.items()
    }
    print(per_workload_table(
        hit_columns,
        title=f"Sweep: hit rate, {len(labels)} designs x "
              f"{num_workloads} workloads",
        gmean_row=False,
    ))
    print("Mean hit rate: " + " | ".join(
        f"{label}={mean_hit_rate(results):.3f}"
        for label, results in per_design.items()
    ))

    if phase_csv:
        from repro.analysis.export import save_phases_csv
        from repro.errors import SimulationError

        try:
            save_phases_csv(per_design, phase_csv)
        except SimulationError as exc:
            print(f"phase CSV not written: {exc}", file=sys.stderr)
            return None
        print(f"wrote {phase_csv}")

    csv_columns = hit_columns
    if len(labels) > 1:
        base_label = labels[0]
        speedup_columns = {
            label: {
                w: r.speedup_over(per_design[base_label][w])
                for w, r in results.items()
            }
            for label, results in per_design.items()
            if label != base_label
        }
        print()
        print(per_workload_table(
            speedup_columns, title=f"Sweep: speedup over {base_label}"
        ))
        csv_columns = speedup_columns
    return csv_columns


def _cmd_profile(args: argparse.Namespace,
                 parser: argparse.ArgumentParser) -> int:
    from repro.errors import ReproError
    from repro.params.system import scaled_system
    from repro.sim.profile import profile_shards, profile_trace, shard_summary
    from repro.sim.runner import TraceFactory
    from repro.workloads.trace_cache import shared_trace_cache

    if not 0.0 < args.scale <= 1.0:
        parser.error("--scale must be in (0, 1]")
    if args.accesses <= 0:
        parser.error("--accesses must be positive")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    try:
        factory = TraceFactory(
            scaled_system(ways=1, scale=args.scale), args.accesses, args.seed
        )
        trace = factory.trace_for(args.workload)
        profile = profile_trace(
            trace,
            region_window=args.region_window,
            reuse_distances=not args.no_reuse,
        )
    except ReproError as exc:
        parser.error(str(exc))
    print(f"Trace profile: {args.workload} "
          f"(scale {args.scale:g}, seed {args.seed})")
    print(profile.summary())
    disk = shared_trace_cache()
    if disk is not None:
        counters = disk.stats
        print(f"trace cache: {counters.hits} hits, "
              f"{counters.misses} misses, "
              f"{counters.bytes_read} bytes read")
    if args.shards > 1:
        try:
            shard_profiles = profile_shards(
                trace, args.shards, scale=args.scale, seed=args.seed,
                engine=args.engine,
            )
        except ReproError as exc:
            parser.error(str(exc))
        print()
        print(f"Shard attribution ({args.shards} set-range shards):")
        print(shard_summary(shard_profiles))
    return 0


def _cmd_sweep(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    from pathlib import Path

    from repro.analysis.export import save_series_csv
    from repro.errors import (
        ConfigError,
        JournalError,
        ReproError,
        VerificationError,
    )
    from repro.exec import (
        FAULT_PLAN_ENV,
        JobKey,
        SweepJournal,
        default_store_root,
        parse_design_spec,
    )
    from repro.exec.faults import active_plan
    from repro.experiments.common import settings_from_args

    settings = settings_from_args(args, parser)
    if args.phase_csv and settings.epoch is None:
        parser.error("--phase-csv requires --epoch-metrics")
    if args.resume and args.no_journal:
        parser.error("--resume needs the sweep journal (drop --no-journal)")
    try:
        # Reject a malformed $REPRO_FAULT_PLAN before any work happens.
        active_plan()
    except ConfigError as exc:
        parser.error(f"{FAULT_PLAN_ENV}: {exc}")
    try:
        designs = [
            parse_design_spec(spec)
            for spec in args.designs.split(",") if spec.strip()
        ]
    except ConfigError as exc:
        parser.error(str(exc))
    if not designs:
        parser.error("--designs: no design specs given")
    labels = [design.display_name for design in designs]
    if len(set(labels)) != len(labels):
        parser.error("--designs: duplicate designs in sweep")

    keys = {
        label: [
            JobKey(
                design=design,
                workload=workload,
                num_accesses=settings.num_accesses,
                warmup=settings.warmup,
                seed=settings.seed,
                scale=settings.scale,
                epoch=settings.epoch,
                engine=settings.engine,
            )
            for workload in settings.suite
        ]
        for label, design in zip(labels, designs)
    }
    flat = [key for per_label in keys.values() for key in per_label]

    if settings.engine_strict and settings.engine != "auto":
        # Fail fast before any job is scheduled: probe each design's
        # engine eligibility with the same resolver the workers use.
        from repro.sim.engines import resolve_engine
        from repro.sim.system import build_dram_cache
        from repro.params.system import scaled_system

        for label, design in zip(labels, designs):
            cache = build_dram_cache(
                design,
                scaled_system(ways=design.ways, scale=settings.scale),
                seed=settings.seed,
            )
            try:
                resolve_engine(cache, requested=settings.engine,
                               strict=True, design=design)
            except ReproError as exc:
                parser.error(f"--engine-strict: {exc}")

    journal = None
    if not args.no_journal:
        if args.journal:
            journal_path = Path(args.journal)
        else:
            root = Path(args.results_dir) if args.results_dir \
                else default_store_root()
            journal_path = root / "sweep.journal.jsonl"
        journal = SweepJournal(journal_path)
        if args.resume:
            try:
                done = journal.load()
            except JournalError as exc:
                parser.error(f"--resume: {exc}")
            if journal.header.get("sweep") != SweepJournal.sweep_digest(flat):
                parser.error(
                    f"--resume: journal at {journal_path} records a "
                    "different sweep (designs, workloads or settings "
                    "changed); rerun without --resume to start over"
                )
            print(f"resuming: {done}/{len(flat)} jobs already journaled",
                  file=sys.stderr)
        else:
            try:
                journal.begin(flat, meta={
                    "designs": args.designs,
                    "workloads": ",".join(settings.suite),
                    "accesses": settings.num_accesses,
                    "seed": settings.seed,
                })
            except JournalError as exc:
                parser.error(str(exc))

    executor = settings.make_executor(
        progress=_progress if args.progress else None, journal=journal
    )
    try:
        resolved = executor.run(flat)
    except VerificationError as exc:
        print(f"verification failed: {exc}", file=sys.stderr)
        if journal is not None:
            print(f"rerun with --resume to continue from {journal.path}",
                  file=sys.stderr)
        return EXIT_VERIFICATION
    except ReproError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        if journal is not None:
            print(f"rerun with --resume to continue from {journal.path}",
                  file=sys.stderr)
        return EXIT_EXECUTION
    per_design = {
        label: {key.workload: resolved[key] for key in per_label}
        for label, per_label in keys.items()
    }

    csv_columns = _print_sweep_tables(
        per_design, labels, len(settings.suite), phase_csv=args.phase_csv
    )
    if csv_columns is None:
        return 1
    stats = executor.stats
    line = f"\n{stats.executed} simulated, {stats.cached} from cache"
    if stats.resumed:
        line += f", {stats.resumed} resumed from journal"
    if stats.retried:
        line += f", {stats.retried} retried"
    if stats.transient_retries:
        line += f", {stats.transient_retries} transient retries"
    if stats.timeouts:
        line += f", {stats.timeouts} timed out"
    if settings.verify_fraction > 0 or stats.verified or stats.mismatches:
        line += f", {stats.verified} verified"
    if stats.mismatches:
        line += f", {stats.mismatches} mismatches healed"
    store = executor.store
    if store is not None and (
        store.stats.degraded_writes or store.stats.quarantined
    ):
        line += (f" (store: {store.stats.degraded_writes} degraded writes, "
                 f"{store.stats.quarantined} quarantined)")
    print(line)
    if args.csv:
        save_series_csv(csv_columns, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_bench(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    from repro.errors import ReproError
    from repro.sim.bench import (
        DEFAULT_ACCESSES,
        QUICK_ACCESSES,
        SWEEP_CONFIGS,
        compare_hit_rates,
        compare_sweep_to_baseline,
        compare_to_baseline,
        format_report,
        format_scaling_report,
        format_sweep_report,
        load_report,
        run_bench,
        run_shard_scaling,
        run_sweep_bench,
        save_report,
    )

    accesses = args.accesses
    if accesses is None:
        accesses = QUICK_ACCESSES if args.quick else DEFAULT_ACCESSES
    if accesses <= 0:
        parser.error("--accesses must be positive")
    if not 0.0 < args.scale <= 1.0:
        parser.error("--scale must be in (0, 1]")
    if not 0.0 <= args.max_regression < 1.0:
        parser.error("--max-regression must be a fraction in [0, 1)")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.shard_scaling and args.shards < 2:
        parser.error("--shard-scaling needs --shards >= 2")
    if args.configs is not None and not args.sweep:
        parser.error("--configs only applies with --sweep")
    if args.sweep:
        if args.shards != 1 or args.shard_scaling:
            parser.error("--sweep and --shards are mutually exclusive")
        configs = SWEEP_CONFIGS if args.configs is None else args.configs
        if configs < 2:
            parser.error("--configs must be >= 2")
        try:
            report = run_sweep_bench(
                workload=args.workload,
                num_accesses=accesses,
                seed=args.seed,
                scale=args.scale,
                repeats=args.repeats,
                configs=configs,
            )
        except ReproError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(format_sweep_report(report))
        if args.json:
            save_report(report, args.json)
            print(f"wrote {args.json}")
        if args.baseline:
            try:
                baseline = load_report(args.baseline)
            except ReproError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            verdict = compare_sweep_to_baseline(
                report, baseline, args.max_regression
            )
            if verdict is not None:
                print(f"FAIL: {verdict}", file=sys.stderr)
                return 1
            print(
                f"baseline check OK ({report['speedup']:.2f}x vs "
                f"{baseline['speedup']:.2f}x in {args.baseline})"
            )
        return 0
    if args.shard_scaling:
        try:
            report = run_shard_scaling(
                workload=args.workload,
                num_accesses=accesses,
                seed=args.seed,
                scale=args.scale,
                repeats=args.repeats,
                shards=args.shards,
            )
        except ReproError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(format_scaling_report(report))
        if args.json:
            save_report(report, args.json)
            print(f"wrote {args.json}")
        return 0
    try:
        report = run_bench(
            workload=args.workload,
            num_accesses=accesses,
            seed=args.seed,
            scale=args.scale,
            repeats=args.repeats,
            shards=args.shards,
            engine=args.engine,
        )
    except ReproError as exc:
        parser.error(str(exc))
    print(format_report(report))
    if args.json:
        save_report(report, args.json)
        print(f"wrote {args.json}")
    if args.check_hit_rates:
        try:
            reference = load_report(args.check_hit_rates)
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        mismatch = compare_hit_rates(report, reference)
        if mismatch is not None:
            print(f"FAIL: {mismatch}", file=sys.stderr)
            return 1
        print(f"hit rates identical to {args.check_hit_rates}")
    if args.baseline:
        try:
            baseline = load_report(args.baseline)
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        verdict = compare_to_baseline(report, baseline, args.max_regression)
        if verdict is not None:
            print(f"FAIL: {verdict}", file=sys.stderr)
            return 1
        ratio = (
            report["aggregate_accesses_per_sec"]
            / baseline["aggregate_accesses_per_sec"]
        )
        print(f"baseline check OK ({ratio:.2f}x of {args.baseline})")
    return 0


def _cmd_serve(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    import asyncio

    from repro.errors import ConfigError, ReproError
    from repro.service.server import ServiceConfig, run_service

    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            shards=args.shards,
            retries=args.retries,
            timeout=args.timeout,
            results_dir=args.results_dir,
            use_store=not args.no_store,
            max_pending=args.max_queue,
            rate=args.rate,
            burst=args.burst,
            resume=not args.no_resume,
            verify_fraction=args.verify_fraction,
            verify_engine=args.verify_engine,
        )
        asyncio.run(run_service(config))
    except ConfigError as exc:
        parser.error(str(exc))
    except KeyboardInterrupt:
        pass
    except (ReproError, OSError) as exc:
        print(f"service failed: {exc}", file=sys.stderr)
        return EXIT_EXECUTION
    return 0


def _cmd_audit(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    import json as _json
    from pathlib import Path

    from repro.errors import ReproError
    from repro.exec.store import default_store_root
    from repro.verify.audit import audit_store, audit_traces, format_report

    if not 0.0 <= args.recompute_fraction <= 1.0:
        parser.error("--recompute-fraction must be in [0, 1]")
    root = Path(args.results_dir) if args.results_dir else default_store_root()
    if not root.is_dir():
        print(f"no result store at {root} (nothing to audit)",
              file=sys.stderr)
        return 0
    try:
        report = audit_store(
            root,
            recompute_fraction=args.recompute_fraction,
            engine=args.verify_engine,
            quarantine=not args.no_quarantine,
        )
        if not args.no_traces:
            trace_root = Path(args.trace_dir) if args.trace_dir else None
            audit_traces(report, root=trace_root,
                         quarantine=not args.no_quarantine)
    except ReproError as exc:
        print(f"audit failed: {exc}", file=sys.stderr)
        return EXIT_EXECUTION
    print(format_report(report))
    if args.json:
        Path(args.json).write_text(
            _json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.json}")
    return EXIT_VERIFICATION if report.mismatches else 0


def _cmd_submit(args: argparse.Namespace,
                parser: argparse.ArgumentParser) -> int:
    from repro.analysis.export import save_series_csv
    from repro.errors import ConfigError, ExecutionError
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.jobspec import expand_spec
    from repro.sim.system import RunResult

    if args.phase_csv and args.epoch_metrics is None:
        parser.error("--phase-csv requires --epoch-metrics")
    spec = {"kind": "sweep", "designs": args.designs}
    if args.workloads is not None:
        spec["workloads"] = args.workloads
    if args.accesses is not None:
        spec["accesses"] = args.accesses
    if args.seed is not None:
        spec["seed"] = args.seed
    if args.scale is not None:
        spec["scale"] = args.scale
    if args.epoch_metrics is not None:
        spec["epoch"] = args.epoch_metrics
    if args.quick:
        spec["quick"] = True
    if args.engine is not None and args.engine != "auto":
        spec["engine"] = args.engine
    try:
        # Expand locally with the same code the server runs, so streamed
        # result digests map straight back onto (design, workload) cells.
        keys, labels, workloads = expand_spec(spec)
    except ConfigError as exc:
        parser.error(str(exc))

    key_cell = {}
    it = iter(keys)
    for label in labels:
        for workload in workloads:
            key_cell[next(it).digest()] = (label, workload)

    def on_event(event):
        if not args.progress:
            return
        kind = event.get("event")
        if kind == "progress":
            print(f"[{event['batch_done']}/{event['batch_total']}] "
                  f"{event['display']} ({event['source']})", file=sys.stderr)
        elif kind == "scheduled":
            state = ("deduplicated" if event.get("deduplicated")
                     else event.get("state"))
            print(f"scheduled {event['display']} ({state})", file=sys.stderr)
        elif kind == "error":
            error = event.get("error", {})
            print(f"job failed: {event.get('display')}: "
                  f"{error.get('message')}", file=sys.stderr)

    client = ServiceClient(
        host=args.host, port=args.port, timeout=args.timeout
    )
    try:
        results = client.submit(spec, on_event=on_event)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        if exc.retry_after is not None:
            print(f"retry after ~{exc.retry_after:.0f}s", file=sys.stderr)
        return exc.exit_code
    except ExecutionError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return EXIT_EXECUTION

    per_design = {label: {} for label in labels}
    missing = []
    for digest, (label, workload) in key_cell.items():
        event = results.get(digest)
        if event is None:
            missing.append(f"{label}/{workload}")
            continue
        per_design[label][workload] = RunResult.from_dict(event["result"])
    if missing:
        print(f"service did not return: {', '.join(missing)}",
              file=sys.stderr)
        return EXIT_EXECUTION

    csv_columns = _print_sweep_tables(
        per_design, labels, len(workloads), phase_csv=args.phase_csv
    )
    if csv_columns is None:
        return 1
    cached = sum(
        1 for event in results.values() if event.get("source") == "cached"
    )
    print(f"\n{len(results) - cached} computed by service, "
          f"{cached} answered from warm store")
    if args.csv:
        save_series_csv(csv_columns, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _add_endpoint_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument("--host", default="127.0.0.1",
                   help="service address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8765,
                   help="service port (default 8765)")


def main(argv: Optional[List[str]] = None) -> int:
    from repro.experiments.common import add_settings_arguments

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ACCORD (ISCA 2018) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("info", help="show system configuration")
    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("names", nargs="+",
                            help="experiment names, or 'all'")
    add_settings_arguments(run_parser)
    sweep_parser = sub.add_parser(
        "sweep",
        help="run a designs x workloads grid through the parallel executor",
    )
    sweep_parser.add_argument(
        "--designs", required=True,
        help="comma-separated design specs: kind[:ways[:hashes]][:key=value...]"
             " e.g. 'direct,accord:2,sws:8:2,pws:2:pip=0.9'",
    )
    sweep_parser.add_argument("--csv", default=None,
                              help="also write the sweep table as tidy CSV")
    sweep_parser.add_argument("--phase-csv", default=None, dest="phase_csv",
                              help="write per-epoch phase metrics as tidy CSV "
                                   "(requires --epoch-metrics)")
    sweep_parser.add_argument("--progress", action="store_true",
                              help="print per-job progress to stderr")
    sweep_parser.add_argument("--journal", default=None, metavar="PATH",
                              help="sweep journal path (default: "
                                   "<results-dir>/sweep.journal.jsonl)")
    sweep_parser.add_argument("--no-journal", action="store_true",
                              help="do not write a resume journal")
    sweep_parser.add_argument("--resume", action="store_true",
                              help="finish a killed sweep: replay journaled "
                                   "results and execute only the rest")
    add_settings_arguments(sweep_parser)
    profile_parser = sub.add_parser(
        "profile",
        help="profile a workload trace (footprint, runs, reuse distances)",
    )
    profile_parser.add_argument("workload",
                                help="workload or mix name (see workloads/)")
    profile_parser.add_argument("--accesses", type=int, default=150_000,
                                help="trace length to generate (default 150000)")
    profile_parser.add_argument("--seed", type=int, default=7)
    profile_parser.add_argument("--scale", type=float, default=1.0 / 128.0,
                                help="system scale factor in (0, 1] "
                                     "(default 1/128: 32MB cache)")
    profile_parser.add_argument("--region-window", type=int, default=64,
                                help="recent-region window (RLT-sized, "
                                     "default 64)")
    profile_parser.add_argument("--no-reuse", action="store_true",
                                help="skip the reuse-distance estimate "
                                     "(faster on long traces)")
    profile_parser.add_argument("--shards", type=int, default=1,
                                help="also time each of N set-range shards "
                                     "to attribute where a sharded run's "
                                     "wall-clock goes (default: off)")
    profile_parser.add_argument("--engine", default="stream",
                                choices=("auto", "vector", "replay", "stream", "loop"),
                                help="drive engine the shard attribution is "
                                     "timed under (default stream, the shard "
                                     "workers' batched loop)")
    bench_parser = sub.add_parser(
        "bench",
        help="measure functional-simulator throughput (accesses/sec)",
    )
    bench_parser.add_argument("--workload", default="soplex",
                              help="workload to trace (default soplex)")
    bench_parser.add_argument("--accesses", type=int, default=None,
                              help="trace length (default 150000, "
                                   "or 40000 with --quick)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="short benchmark for CI smoke runs")
    bench_parser.add_argument("--seed", type=int, default=7)
    bench_parser.add_argument("--scale", type=float, default=1.0 / 128.0,
                              help="system scale factor in (0, 1] "
                                   "(default 1/128: 32MB cache)")
    bench_parser.add_argument("--repeats", type=int, default=3,
                              help="timed runs per design; best is kept "
                                   "(default 3)")
    bench_parser.add_argument("--json", default=None,
                              help="write the report as JSON to this path")
    bench_parser.add_argument("--baseline", default=None,
                              help="compare against a committed report; "
                                   "exit 1 on regression")
    bench_parser.add_argument("--max-regression", type=float, default=0.30,
                              dest="max_regression",
                              help="tolerated aggregate slowdown vs the "
                                   "baseline, as a fraction (default 0.30)")
    bench_parser.add_argument("--shards", type=int, default=1,
                              help="set-range shards per run; shardable "
                                   "designs split across a worker pool with "
                                   "a bit-identical merge (default 1)")
    bench_parser.add_argument("--shard-scaling", action="store_true",
                              dest="shard_scaling",
                              help="run the bench at shards=1 and --shards N "
                                   "and report the speedup (BENCH_shard.json)")
    bench_parser.add_argument("--engine", default="auto",
                              choices=("auto", "vector", "replay", "stream", "loop"),
                              help="drive engine to benchmark; designs the "
                                   "engine cannot drive exactly fall back "
                                   "down the chain (default auto)")
    bench_parser.add_argument("--sweep", action="store_true",
                              help="time a same-trace config matrix: "
                                   "per-job vs batched (fused kernel) "
                                   "execution, reported in jobs/sec "
                                   "(BENCH_sweep.json)")
    bench_parser.add_argument("--configs", type=int, default=None,
                              help="config-matrix size for --sweep "
                                   "(default 16)")
    bench_parser.add_argument("--check-hit-rates", default=None,
                              dest="check_hit_rates", metavar="PATH",
                              help="assert per-design hit rates are exactly "
                                   "identical to a reference report; exit 1 "
                                   "on any difference (CI determinism gate)")
    serve_parser = sub.add_parser(
        "serve",
        help="run the long-lived sweep service (HTTP, see docs/service.md)",
    )
    _add_endpoint_arguments(serve_parser)
    serve_parser.add_argument("--jobs", "-j", type=int, default=1,
                              help="parallel worker processes (default 1)")
    serve_parser.add_argument("--shards", type=int, default=1,
                              help="set-range shards per simulation "
                                   "(default 1)")
    serve_parser.add_argument("--retries", type=int, default=1,
                              help="attempts per failing job (default 1)")
    serve_parser.add_argument("--timeout", type=float, default=None,
                              help="per-job watchdog timeout in seconds")
    serve_parser.add_argument("--results-dir", default=None,
                              dest="results_dir",
                              help="result store root (default "
                                   "$REPRO_RESULTS_DIR or ~/.cache/repro)")
    serve_parser.add_argument("--no-store", action="store_true",
                              dest="no_store",
                              help="disable the result store (and with it "
                                   "warm answers and restart resume)")
    serve_parser.add_argument("--max-queue", type=int, default=256,
                              dest="max_queue",
                              help="admission queue bound; overflow sheds "
                                   "with 503 (default 256)")
    serve_parser.add_argument("--rate", type=float, default=5.0,
                              help="per-client submissions/sec before 429 "
                                   "(default 5)")
    serve_parser.add_argument("--burst", type=float, default=10.0,
                              help="per-client burst capacity (default 10)")
    serve_parser.add_argument("--no-resume", action="store_true",
                              dest="no_resume",
                              help="do not resume journaled in-flight "
                                   "batches from a previous daemon")
    serve_parser.add_argument("--verify-fraction", type=float, default=0.0,
                              dest="verify_fraction", metavar="F",
                              help="shadow-verify this fraction of computed "
                                   "jobs on the reference engine (default 0)")
    serve_parser.add_argument("--verify-engine", default="stream",
                              dest="verify_engine",
                              choices=("stream", "loop"),
                              help="reference engine for shadow verification "
                                   "(default stream)")
    audit_parser = sub.add_parser(
        "audit",
        help="verify result-store integrity (schemas, payload digests)",
    )
    audit_parser.add_argument("--results-dir", default=None,
                              dest="results_dir",
                              help="result store root to audit (default "
                                   "$REPRO_RESULTS_DIR or ~/.cache/repro)")
    audit_parser.add_argument("--recompute-fraction", type=float, default=0.0,
                              dest="recompute_fraction", metavar="F",
                              help="re-execute this fraction of entries on "
                                   "the reference engine and compare digests "
                                   "(default 0: digest checks only)")
    audit_parser.add_argument("--verify-engine", default="stream",
                              dest="verify_engine",
                              choices=("stream", "loop"),
                              help="reference engine for --recompute-fraction "
                                   "(default stream)")
    audit_parser.add_argument("--no-traces", action="store_true",
                              dest="no_traces",
                              help="skip the trace-cache audit")
    audit_parser.add_argument("--trace-dir", default=None, dest="trace_dir",
                              help="trace cache root (default "
                                   "$REPRO_TRACE_DIR or <store>/traces)")
    audit_parser.add_argument("--no-quarantine", action="store_true",
                              dest="no_quarantine",
                              help="report corrupt entries without moving "
                                   "them to quarantine/")
    audit_parser.add_argument("--json", default=None,
                              help="write the audit report as JSON to "
                                   "this path")
    submit_parser = sub.add_parser(
        "submit",
        help="submit a sweep to a running service and render the tables",
    )
    _add_endpoint_arguments(submit_parser)
    submit_parser.add_argument(
        "--designs", required=True,
        help="comma-separated design specs, same grammar as 'sweep'",
    )
    submit_parser.add_argument("--workloads", default=None,
                               help="comma-separated workloads "
                                    "(default: the full suite)")
    submit_parser.add_argument("--accesses", type=int, default=None,
                               help="trace length per job")
    submit_parser.add_argument("--seed", type=int, default=None)
    submit_parser.add_argument("--scale", type=float, default=None,
                               help="system scale factor in (0, 1]")
    submit_parser.add_argument("--quick", action="store_true",
                               help="small suite and short traces")
    submit_parser.add_argument("--engine", default=None,
                               choices=("auto", "vector", "replay", "stream", "loop"),
                               help="drive engine request forwarded to the "
                                    "service (results are engine-invariant)")
    submit_parser.add_argument("--epoch-metrics", type=int, default=None,
                               dest="epoch_metrics", metavar="N",
                               help="per-epoch phase metrics every N reads")
    submit_parser.add_argument("--csv", default=None,
                               help="also write the sweep table as tidy CSV")
    submit_parser.add_argument("--phase-csv", default=None, dest="phase_csv",
                               help="write per-epoch phase metrics as tidy "
                                    "CSV (requires --epoch-metrics)")
    submit_parser.add_argument("--progress", action="store_true",
                               help="print streamed job progress to stderr")
    submit_parser.add_argument("--timeout", type=float, default=600.0,
                               help="client-side HTTP timeout in seconds "
                                    "(default 600)")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    if args.command == "sweep":
        return _cmd_sweep(args, parser)
    if args.command == "profile":
        return _cmd_profile(args, parser)
    if args.command == "bench":
        return _cmd_bench(args, parser)
    if args.command == "serve":
        return _cmd_serve(args, parser)
    if args.command == "submit":
        return _cmd_submit(args, parser)
    if args.command == "audit":
        return _cmd_audit(args, parser)
    passthrough: List[str] = []
    if args.accesses is not None:
        passthrough += ["--accesses", str(args.accesses)]
    if args.seed is not None:
        passthrough += ["--seed", str(args.seed)]
    if args.scale is not None:
        passthrough += ["--scale", str(args.scale)]
    if args.workloads is not None:
        passthrough += ["--workloads", args.workloads]
    if args.quick:
        passthrough += ["--quick"]
    if args.jobs != 1:
        passthrough += ["--jobs", str(args.jobs)]
    if args.shards != 1:
        passthrough += ["--shards", str(args.shards)]
    if args.results_dir is not None:
        passthrough += ["--results-dir", args.results_dir]
    if args.no_store:
        passthrough += ["--no-store"]
    if args.epoch_metrics is not None:
        passthrough += ["--epoch-metrics", str(args.epoch_metrics)]
    if args.retries != 1:
        passthrough += ["--retries", str(args.retries)]
    if args.timeout is not None:
        passthrough += ["--timeout", str(args.timeout)]
    if args.engine != "auto":
        passthrough += ["--engine", args.engine]
    if args.engine_strict:
        passthrough += ["--engine-strict"]
    if args.verify_fraction:
        passthrough += ["--verify-fraction", str(args.verify_fraction)]
    if args.verify_engine != "stream":
        passthrough += ["--verify-engine", args.verify_engine]
    return _cmd_run(args.names, passthrough)


if __name__ == "__main__":
    raise SystemExit(main())
