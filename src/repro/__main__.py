"""Command-line entry point: list and run paper experiments.

Usage::

    python -m repro list                  # what can be reproduced
    python -m repro run fig10_speedup_2way [--accesses N] [--quick]
    python -m repro run all [--quick]     # every experiment, in order
    python -m repro info                  # system configuration summary
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENT_MODULES

_DESCRIPTIONS = {
    "fig1_associativity": "Fig 1: hit-rate & speedup vs associativity",
    "table1_lookup_cost": "Table I: lookup cost model",
    "table2_predictor_storage": "Table II: predictor accuracy & storage",
    "table4_workloads": "Table IV: workload characteristics",
    "fig6_cyclic": "Fig 6: cyclic kernel vs PIP",
    "table5_pip": "Table V: PWS sensitivity to PIP",
    "fig7_accuracy": "Fig 7: way-prediction accuracy",
    "table6_hitrate": "Table VI: hit-rate under way steering",
    "fig10_speedup_2way": "Fig 10: 2-way design speedups",
    "table7_sws_hitrate": "Table VII: SWS hit-rates",
    "fig13_sws_speedup": "Fig 13: SWS speedups",
    "fig12_all_workloads": "Fig 12: all 46 workloads",
    "table8_cache_size": "Table VIII: cache-size sensitivity",
    "table9_storage": "Table IX: ACCORD storage",
    "table10_predictors": "Table X: way-predictor comparison",
    "fig14_predictor_speedup": "Fig 14: predictor speedups",
    "fig15_energy": "Fig 15: energy / power / EDP",
    "ablations": "Ablations: replacement, GWS tables, SWS hashes, ...",
}


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENT_MODULES)
    print("Available experiments (python -m repro run <name>):\n")
    for name in EXPERIMENT_MODULES:
        print(f"  {name.ljust(width)}  {_DESCRIPTIONS.get(name, '')}")
    return 0


def _cmd_info() -> int:
    from repro.params.system import paper_system, scaled_system

    paper = paper_system()
    scaled = scaled_system()
    print("Paper system (Table III):")
    print(f"  cores            {paper.cores.num_cores} x "
          f"{paper.cores.frequency_ghz}GHz, {paper.cores.issue_width}-wide")
    print(f"  DRAM cache       {paper.dram_cache.capacity_bytes // 2**30}GB, "
          f"{paper.dram_bus.aggregate_bandwidth_gbps:.0f} GB/s")
    print(f"  NVM              {paper.nvm_capacity_bytes // 2**30}GB, "
          f"{paper.nvm_bus.aggregate_bandwidth_gbps:.0f} GB/s, "
          f"read {paper.nvm_timing.read_ns:.0f}ns / "
          f"write {paper.nvm_timing.write_ns:.0f}ns")
    print("Default experiment scale:")
    print(f"  scale            {scaled.scale:.6f} "
          f"(cache {scaled.dram_cache.capacity_bytes // 2**20}MB)")
    return 0


def _cmd_run(names: List[str], passthrough: List[str]) -> int:
    targets = EXPERIMENT_MODULES if names == ["all"] else names
    unknown = [n for n in targets if n not in EXPERIMENT_MODULES]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use 'python -m repro list' to see what is available",
              file=sys.stderr)
        return 2
    for name in targets:
        module = importlib.import_module(f"repro.experiments.{name}")
        print(f"==> {name}")
        module.main(passthrough)
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ACCORD (ISCA 2018) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("info", help="show system configuration")
    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("names", nargs="+",
                            help="experiment names, or 'all'")
    run_parser.add_argument("--accesses", type=int, default=None)
    run_parser.add_argument("--quick", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    passthrough: List[str] = []
    if args.accesses is not None:
        passthrough += ["--accesses", str(args.accesses)]
    if args.quick:
        passthrough += ["--quick"]
    return _cmd_run(args.names, passthrough)


if __name__ == "__main__":
    raise SystemExit(main())
