"""Workload catalog (paper Table IV plus the extended 46-workload set).

Each :class:`WorkloadSpec` records the paper-reported characteristics
(L3 MPKI, memory footprint, idealized 8-way speedup potential) and the
behavioural knobs our synthetic generator uses to reproduce them:

* ``region_run`` — mean number of consecutive 64B lines touched per
  4KB-region visit. High values (libquantum, nekbone, leslie3d) give
  GWS near-perfect accuracy; ~1 (mcf, graph kernels) starves it.
* ``conflict_frac`` / ``conflict_degree`` — fraction of traffic cycling
  through groups of set-aliased pages, and pages per group. This is
  what makes a workload *associativity-sensitive*: degree-2 groups
  thrash a direct-mapped cache but co-reside in a 2-way cache.
* ``reuse`` — temporal skew of region selection (higher = hotter hot
  set = higher base hit-rate).
* ``write_frac`` — writebacks per demand read.

MPKI and footprints follow Table IV where the paper states them;
where the scanned text is unreadable we substitute standard published
values for the same benchmarks and note them as calibration inputs,
not results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.errors import WorkloadError

GB = 1024**3
MB = 1024**2


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one workload."""

    name: str
    suite: str  # SPEC | GAP | HPC | MIX
    mpki: float
    footprint_bytes: int
    potential: float  # paper's idealized 8-way speedup (Table IV)
    region_run: float = 8.0
    conflict_frac: float = 0.0
    conflict_degree: int = 2
    reuse: float = 1.0
    write_frac: float = 0.30
    sensitive: bool = True  # part of the associativity-sensitive main suite

    def __post_init__(self):
        if self.mpki <= 0:
            raise WorkloadError(f"{self.name}: MPKI must be positive")
        if self.footprint_bytes <= 0:
            raise WorkloadError(f"{self.name}: footprint must be positive")
        if not 0 <= self.conflict_frac <= 1:
            raise WorkloadError(f"{self.name}: conflict_frac out of range")
        if self.conflict_degree < 2:
            raise WorkloadError(f"{self.name}: conflict groups need >= 2 pages")
        if self.region_run < 1:
            raise WorkloadError(f"{self.name}: region_run must be >= 1")

    @property
    def instructions_per_access(self) -> float:
        return 1000.0 / self.mpki

    def scaled(self, scale: float) -> "WorkloadSpec":
        """Footprint scaled to match a geometry-scaled system."""
        scaled_bytes = max(int(self.footprint_bytes * scale), 1 * MB)
        return replace(self, footprint_bytes=scaled_bytes)


def _spec(name, mpki, fp, pot, run, cf, reuse, wf=0.30, degree=2, sensitive=True,
          suite="SPEC"):
    return WorkloadSpec(
        name=name,
        suite=suite,
        mpki=mpki,
        footprint_bytes=fp,
        potential=pot,
        region_run=run,
        conflict_frac=cf,
        conflict_degree=degree,
        reuse=reuse,
        write_frac=wf,
        sensitive=sensitive,
    )


# --- Table IV rate-mode workloads (17) -------------------------------------

_RATE_MODE: List[WorkloadSpec] = [
    # name          mpki   footprint       pot    run  conflict reuse
    _spec("soplex",   27.0, int(28.7 * GB), 2.43, 12.0, 0.300, 1.78, wf=0.25, degree=4),
    _spec("leslie",   21.0, int(25.0 * GB), 1.63, 24.0, 0.200, 2.07, wf=0.35, degree=3),
    _spec("libq",     26.7, int(620 * MB), 1.55, 48.0, 0.160, 0.36, wf=0.20),
    _spec("gcc",      16.0, int(14.2 * GB), 1.27, 8.0, 0.140, 2.07, wf=0.35),
    _spec("zeusmp",    5.4, int(8.0 * GB), 1.18, 16.0, 0.110, 2.26, wf=0.35, degree=3),
    _spec("wrf",       7.1, int(11.3 * GB), 1.18, 20.0, 0.110, 2.64, wf=0.35, degree=3),
    _spec("omnet",    21.0, int(2.7 * GB), 1.17, 1.6, 0.100, 1.02, wf=0.40),
    _spec("xalanc",    2.6, int(6.1 * GB), 1.09, 6.0, 0.060, 2.45, wf=0.30),
    _spec("mcf",      67.0, int(26.9 * GB), 1.06, 1.2, 0.020, 1.11, wf=0.25),
    _spec("sphinx",   12.0, int(160 * MB), 1.01, 32.0, 0.003, 3.39, wf=0.10),
    _spec("milc",     19.0, int(9.4 * GB), 0.99, 8.0, 0.004, 1.11, wf=0.35),
    _spec("pr_twi",   30.0, int(24.5 * GB), 1.15, 1.5, 0.090, 1.21, wf=0.20, suite="GAP"),
    _spec("cc_twi",   25.0, int(24.5 * GB), 1.15, 1.5, 0.090, 1.30, wf=0.20, suite="GAP"),
    _spec("bc_twi",   28.0, int(30.0 * GB), 1.11, 1.8, 0.075, 1.30, wf=0.25, suite="GAP"),
    _spec("pr_web",   14.0, int(26.5 * GB), 1.07, 3.0, 0.050, 1.68, wf=0.20, suite="GAP"),
    _spec("cc_web",   12.0, int(26.5 * GB), 1.05, 3.0, 0.045, 1.78, wf=0.20, suite="GAP"),
    _spec("nekbone",   8.0, int(330 * MB), 1.04, 40.0, 0.009, 3.39, wf=0.30, suite="HPC"),
]

# --- Extended SPEC set (Figure 12's insensitive workloads) ------------------

_EXTRA_SPEC: List[WorkloadSpec] = [
    _spec(name, mpki, fp, 1.0, run, cf, reuse, sensitive=False)
    for (name, mpki, fp, run, cf, reuse) in [
        ("perlbench", 0.8, int(700 * MB), 8.0, 0.02, 1.40),
        ("bzip2",     3.4, int(2.6 * GB), 10.0, 0.03, 1.20),
        ("bwaves",   10.5, int(3.7 * GB), 28.0, 0.02, 0.90),
        ("gamess",    0.2, int(80 * MB), 6.0, 0.00, 1.60),
        ("povray",    0.1, int(20 * MB), 6.0, 0.00, 1.70),
        ("calculix",  0.6, int(200 * MB), 12.0, 0.01, 1.40),
        ("hmmer",     1.1, int(120 * MB), 10.0, 0.01, 1.40),
        ("sjeng",     0.5, int(900 * MB), 2.0, 0.01, 1.20),
        ("gems",     17.0, int(13.0 * GB), 24.0, 0.04, 0.85),
        ("h264",      0.9, int(180 * MB), 8.0, 0.01, 1.40),
        ("tonto",     0.3, int(90 * MB), 8.0, 0.00, 1.50),
        ("lbm",      22.0, int(6.4 * GB), 32.0, 0.03, 0.75),
        ("astar",     4.8, int(1.9 * GB), 2.5, 0.05, 1.10),
        ("gobmk",     0.6, int(150 * MB), 4.0, 0.01, 1.40),
        ("dealII",    1.3, int(600 * MB), 8.0, 0.02, 1.30),
        ("namd",      0.3, int(100 * MB), 10.0, 0.00, 1.50),
        ("gromacs",   0.4, int(110 * MB), 10.0, 0.00, 1.50),
        ("cactus",    4.4, int(3.4 * GB), 20.0, 0.03, 1.00),
    ]
]

_EXTRA_GAP: List[WorkloadSpec] = [
    _spec("bc_web", 13.0, int(31.0 * GB), 1.05, 2.2, 0.06, 0.95, wf=0.25,
          sensitive=False, suite="GAP"),
]

_MIX_NAMES = [f"mix{i}" for i in range(1, 11)]

# Main suite = 17 rate-mode + 4 mixes = the paper's 21 workloads.
MAIN_SUITE: List[str] = [w.name for w in _RATE_MODE] + _MIX_NAMES[:4]

# Extended = 29 SPEC + 10 mixes + 6 GAP + 1 HPC = 46 workloads (Figure 12).
EXTENDED_SUITE: List[str] = (
    [w.name for w in _RATE_MODE]
    + [w.name for w in _EXTRA_SPEC]
    + [w.name for w in _EXTRA_GAP]
    + _MIX_NAMES
)

_CATALOG: Dict[str, WorkloadSpec] = {
    w.name: w for w in _RATE_MODE + _EXTRA_SPEC + _EXTRA_GAP
}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a non-mix workload by name."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; mixes are built via "
            f"repro.workloads.mixes.build_mix_trace"
        ) from None


def is_mix(name: str) -> bool:
    return name.startswith("mix")


def main_suite() -> List[str]:
    """The paper's 21-workload evaluation suite."""
    return list(MAIN_SUITE)


def extended_suite() -> List[str]:
    """All 46 workloads of Figure 12."""
    return list(EXTENDED_SUITE)


def rate_mode_specs() -> List[WorkloadSpec]:
    """Table IV's 17 rate-mode workloads."""
    return list(_RATE_MODE)
