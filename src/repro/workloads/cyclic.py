"""Cyclic reference kernel (paper Section IV-B.1, Figure 6).

The kernel (a, b)^N accesses two conflicting lines alternately, N times.
A direct-mapped cache thrashes (0% hits); a 2-way cache eventually
co-locates both lines, with PWS's install bias (PIP) controlling how
quickly the pair learns to use both ways.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import WorkloadError
from repro.sim.trace import Trace


def conflicting_addresses(cache_capacity_bytes: int, count: int = 2,
                          set_offset_bytes: int = 0) -> List[int]:
    """``count`` line addresses that map to the same set in any
    organization of the given capacity (they differ by whole capacities).
    """
    if count < 1:
        raise WorkloadError("need at least one address")
    if set_offset_bytes % 64 != 0:
        raise WorkloadError("set offset must be line-aligned")
    return [set_offset_bytes + i * cache_capacity_bytes for i in range(count)]


def same_preferred_conflicting_addresses(
    cache_capacity_bytes: int, ways: int = 2, count: int = 2
) -> List[int]:
    """Conflicting addresses that also share a *preferred way*.

    The paper's cyclic-reference analysis (Section IV-B.1) studies two
    lines contending for the same preferred location; with the hashed
    preferred-way function, arbitrary capacity-aliased addresses only
    share a preferred way half the time, so this helper scans aliased
    candidates until ``count`` of them agree.
    """
    from repro.cache.geometry import CacheGeometry
    from repro.core.steering import preferred_way

    if count < 1:
        raise WorkloadError("need at least one address")
    geometry = CacheGeometry(cache_capacity_bytes, ways)
    chosen: List[int] = []
    target = None
    candidate = 0
    while len(chosen) < count:
        addr = candidate * cache_capacity_bytes
        candidate += 1
        way = preferred_way(geometry.tag(addr), ways)
        if target is None:
            target = way
        if way == target:
            chosen.append(addr)
        if candidate > 64 * count:
            raise WorkloadError("could not find enough same-preferred addresses")
    return chosen


def cyclic_trace(
    addresses: Sequence[int],
    iterations: int,
    name: str = "cyclic",
) -> Trace:
    """The temporal sequence (a1, a2, ..., ak)^N as a read-only trace."""
    if iterations < 1:
        raise WorkloadError("iterations must be >= 1")
    if not addresses:
        raise WorkloadError("need at least one address")
    addrs: List[int] = []
    for _ in range(iterations):
        addrs.extend(addresses)
    return Trace(
        name=name,
        addrs=addrs,
        writes=bytearray(len(addrs)),
        instructions_per_access=1000.0,
    )
