"""Content-addressed on-disk cache for generated workload traces.

Trace generation is pure: the synthetic generators are seeded and the
workload catalog is static, so a trace is fully determined by *what was
asked for* — workload, cache capacity, access count, seed and footprint
scale. :class:`TraceKey` canonicalizes that request (embedding the
resolved :class:`~repro.workloads.spec.WorkloadSpec` payloads, so a
catalog retune invalidates stale entries) and hashes it to a SHA-256
content address, mirroring the result store
(:mod:`repro.exec.store`) that memoizes simulation outputs.

Entries live under ``<root>/<dd>/<digest>.npz`` in the binary trace
format (:func:`repro.sim.trace.save_trace_npz`) with a ``.key.json``
sidecar holding the canonical key; a lookup verifies the sidecar before
trusting the payload, so a digest collision or hand-edited file
degrades to a cache miss and regeneration, never to a wrong trace.
Writes are atomic (temp file + ``os.replace``); concurrent sweep
workers sharing one cache directory can only race to write identical
bytes. An unwritable cache warns once and degrades to regenerating;
each lost write is counted in ``stats.degraded_writes``. Corrupt or
truncated entries (payload *or* sidecar) are quarantined on read —
moved to ``<root>/quarantine/`` with a ``.why`` sidecar naming the
reason — and the trace is regenerated from its seed, bit-identically.

The root defaults to ``$REPRO_TRACE_DIR``, else
``$REPRO_RESULTS_DIR/traces``, else ``~/.cache/repro/traces``. Setting
``REPRO_TRACE_CACHE=0`` disables the cache entirely.

``TRACE_SCHEMA_VERSION`` doubles as the generator version: bump it
whenever :mod:`repro.workloads.synthetic` or the mix interleaving in
:mod:`repro.workloads.mixes` changes the bytes they produce, so stale
cached traces can never leak into new results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

# NOTE: repro.exec.{faults,resilience} are imported lazily inside the
# methods that need them: importing anything under repro.exec at module
# scope would run repro/exec/__init__.py, which (via jobs -> sim.runner)
# imports this module back while it is still initializing.

from repro.errors import TraceError, WorkloadError
from repro.sim.trace import Trace, load_trace_npz, save_trace_npz
from repro.workloads.mixes import MIX_RECIPES
from repro.workloads.spec import get_workload, is_mix

#: Version of the key schema AND of the trace generators it memoizes.
TRACE_SCHEMA_VERSION = 1

TRACE_DIR_ENV = "REPRO_TRACE_DIR"
TRACE_CACHE_TOGGLE_ENV = "REPRO_TRACE_CACHE"
_RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"


def trace_cache_enabled() -> bool:
    """False when ``REPRO_TRACE_CACHE=0`` opts out of on-disk memoizing."""
    return os.environ.get(TRACE_CACHE_TOGGLE_ENV, "1") != "0"


def default_trace_root() -> Path:
    """``$REPRO_TRACE_DIR``, else ``$REPRO_RESULTS_DIR/traces``, else
    ``~/.cache/repro/traces``."""
    env = os.environ.get(TRACE_DIR_ENV)
    if env:
        return Path(env)
    results = os.environ.get(_RESULTS_DIR_ENV)
    if results:
        return Path(results) / "traces"
    return Path.home() / ".cache" / "repro" / "traces"


def _workload_payload(
    workload: str, footprint_scale: float
) -> Dict[str, Any]:
    """Resolved generator inputs for a workload name.

    Embeds the scaled :class:`WorkloadSpec` field values (for a mix, of
    every member at the mix's per-member 1/16 scale), so editing the
    catalog — or the mix recipes — changes the key.
    """
    if is_mix(workload):
        recipe = MIX_RECIPES.get(workload)
        if recipe is None:
            raise WorkloadError(f"unknown mix {workload!r}")
        return {
            "members": [
                asdict(get_workload(member).scaled(footprint_scale / 16.0))
                for member in recipe
            ],
        }
    return {"spec": asdict(get_workload(workload).scaled(footprint_scale))}


@dataclass(frozen=True)
class TraceKey:
    """Everything that determines one generated trace's bytes."""

    workload: str
    capacity_bytes: int
    num_accesses: int
    seed: int
    footprint_scale: float

    def canonical(self) -> str:
        """Deterministic JSON form of the key (hashed for the address)."""
        payload = {
            "schema": TRACE_SCHEMA_VERSION,
            "workload": self.workload,
            "capacity_bytes": self.capacity_bytes,
            "num_accesses": self.num_accesses,
            "seed": self.seed,
            # repr() keeps float identity exact across json round trips.
            "footprint_scale": repr(float(self.footprint_scale)),
            "generator": _workload_payload(self.workload, self.footprint_scale),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        return hashlib.sha256(self.canonical().encode("ascii")).hexdigest()


@dataclass
class TraceCacheStats:
    """Hit/miss and degradation counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    degraded_writes: int = 0
    quarantined: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready form (``profile`` output and ``/metrics``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_read": self.bytes_read,
            "degraded_writes": self.degraded_writes,
            "quarantined": self.quarantined,
        }


class TraceCache:
    """Memoizes generated :class:`Trace` objects keyed by :class:`TraceKey`."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_trace_root()
        self.stats = TraceCacheStats()
        self._warned_write = False

    def path_for(self, key: TraceKey) -> Path:
        digest = key.digest()
        return self.root / digest[:2] / f"{digest}.npz"

    def _key_path(self, path: Path) -> Path:
        return path.with_suffix(".key.json")

    def get(self, key: TraceKey) -> Optional[Trace]:
        """Stored trace for ``key``, or None (quarantining bad entries).

        Warm hits are loaded with memory-mapped column arrays (the list
        forms materialize lazily only for scalar engines) and tagged
        with ``cache_token = key.digest()`` so engine plan memos can
        recognize the same trace across loads and processes.
        """
        path = self.path_for(key)
        key_path = self._key_path(path)
        try:
            with open(key_path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (FileNotFoundError, NotADirectoryError):
            self.stats.misses += 1
            return None  # cold cache (or unusable root): a plain miss
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._quarantine(path, f"unreadable key sidecar: {exc}")
            self.stats.misses += 1
            return None
        if not isinstance(record, dict) or record.get("key") != key.canonical():
            self._quarantine(path, "key sidecar does not match lookup key")
            self.stats.misses += 1
            return None
        try:
            size = path.stat().st_size
            trace = load_trace_npz(str(path), mmap=True)
        except FileNotFoundError:
            self._quarantine(path, "key sidecar without npz payload")
            self.stats.misses += 1
            return None
        except (OSError, TraceError) as exc:
            self._quarantine(path, f"corrupt npz payload: {exc}")
            self.stats.misses += 1
            return None
        trace.cache_token = key.digest()
        self.stats.hits += 1
        self.stats.bytes_read += size
        return trace

    def put(self, key: TraceKey, trace: Trace) -> None:
        """Persist a trace; a failed write is counted, never fatal."""
        from repro.exec.faults import (
            SITE_TRACE_ENTRY,
            SITE_TRACE_WRITE,
            fault_point,
        )

        path = self.path_for(key)
        try:
            fault_point(SITE_TRACE_WRITE, token=key.digest())
            path.parent.mkdir(parents=True, exist_ok=True)
            self._write_atomic_npz(path, trace)
            self._write_atomic_key(self._key_path(path), key)
        except (OSError, TraceError) as exc:
            self.stats.degraded_writes += 1
            if not self._warned_write:
                self._warned_write = True
                warnings.warn(
                    f"trace cache at {self.root} is not writable ({exc}); "
                    "affected traces will not be memoized "
                    "(stats.degraded_writes counts the losses)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        fault_point(SITE_TRACE_ENTRY, token=key.digest(), path=str(path))

    @staticmethod
    def _write_atomic_npz(path: Path, trace: Trace) -> None:
        # The .npz suffix matters: numpy appends one to suffix-less
        # paths, which would orphan the temp file.
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-", suffix=".npz", dir=str(path.parent)
        )
        os.close(fd)
        try:
            save_trace_npz(trace, tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _write_atomic_key(key_path: Path, key: TraceKey) -> None:
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=str(key_path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {"schema": TRACE_SCHEMA_VERSION, "key": key.canonical()},
                    handle,
                )
            os.replace(tmp, key_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: TraceKey) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        """Number of stored traces (walks the shard directories)."""
        if not self.root.is_dir():
            return 0
        return sum(
            1
            for shard in self.root.iterdir()
            if shard.is_dir() and shard.name != "quarantine"
            for entry in shard.glob("*.npz")
            if not entry.name.startswith(".tmp-")
        )

    def _quarantine(self, path: Path, reason: str) -> None:
        from repro.exec.resilience import quarantine_entry

        self.stats.quarantined += 1
        quarantine_entry(
            path, self.root, reason, extras=(self._key_path(path),)
        )
        warnings.warn(
            f"trace cache entry {path.name} quarantined "
            f"under {self.root / 'quarantine'}: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )


_SHARED: Dict[str, TraceCache] = {}


def shared_trace_cache() -> Optional[TraceCache]:
    """Process-wide cache instance for the current root, or None.

    Returns None when ``REPRO_TRACE_CACHE=0``. Instances are shared per
    resolved root so the warn-once-on-unwritable state is not reset by
    every :class:`~repro.sim.runner.TraceFactory` construction.
    """
    if not trace_cache_enabled():
        return None
    root = str(default_trace_root())
    cache = _SHARED.get(root)
    if cache is None:
        cache = TraceCache(root)
        _SHARED[root] = cache
    return cache
