"""Workload catalog and synthetic trace generation.

The paper evaluates SPEC2006 (rate mode), GAP graph analytics on real
graphs, HPC (nekbone) and SPEC mixes. Without the proprietary binaries
and datasets, each workload is reproduced as a parameterized synthetic
request stream calibrated to its Table IV characteristics (MPKI,
footprint, associativity sensitivity) and its qualitative behaviours
(spatial locality for GWS, conflict thrash for associativity, sparse
pointer chasing for mcf/graphs). See DESIGN.md §2.
"""

from repro.workloads.spec import (
    EXTENDED_SUITE,
    MAIN_SUITE,
    WorkloadSpec,
    get_workload,
    main_suite,
    extended_suite,
)
from repro.workloads.synthetic import SyntheticWorkload, generate_trace
from repro.workloads.mixes import MIX_RECIPES, build_mix_trace
from repro.workloads.cyclic import cyclic_trace

__all__ = [
    "WorkloadSpec",
    "MAIN_SUITE",
    "EXTENDED_SUITE",
    "get_workload",
    "main_suite",
    "extended_suite",
    "SyntheticWorkload",
    "generate_trace",
    "MIX_RECIPES",
    "build_mix_trace",
    "cyclic_trace",
]
