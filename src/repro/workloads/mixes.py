"""SPEC mix workloads (paper Section III-B).

The paper builds 10 mixed workloads from the 16 SPEC benchmarks with at
least 2 MPKI. We reproduce them by interleaving bursts from four member
generators per mix; each member occupies a disjoint address region
whose base is a multiple of the cache capacity, so the set-aliasing
structure of each member is preserved inside the shared cache.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.sim.trace import Trace
from repro.utils.rng import XorShift64
from repro.workloads.spec import get_workload
from repro.workloads.synthetic import SyntheticWorkload

# The 16 SPEC workloads with >= 2 MPKI in our catalog.
_HIGH_MPKI_POOL = [
    "soplex", "leslie", "libq", "gcc", "zeusmp", "wrf", "omnet", "xalanc",
    "mcf", "sphinx", "milc", "bzip2", "bwaves", "gems", "lbm", "astar",
]

MIX_RECIPES: Dict[str, List[str]] = {
    "mix1": ["soplex", "mcf", "libq", "sphinx"],
    "mix2": ["leslie", "omnet", "gcc", "milc"],
    "mix3": ["libq", "xalanc", "zeusmp", "mcf"],
    "mix4": ["wrf", "soplex", "milc", "omnet"],
    "mix5": ["gems", "gcc", "leslie", "astar"],
    "mix6": ["lbm", "mcf", "sphinx", "bzip2"],
    "mix7": ["bwaves", "libq", "xalanc", "wrf"],
    "mix8": ["milc", "soplex", "gems", "omnet"],
    "mix9": ["zeusmp", "lbm", "leslie", "astar"],
    "mix10": ["mcf", "bwaves", "gcc", "bzip2"],
}

_MEMBER_SPAN_MULTIPLIER = 1 << 16  # members sit 2^16 cache-capacities apart


def build_mix_trace(
    mix_name: str,
    cache_capacity_bytes: int,
    num_accesses: int,
    seed: int = 1,
    scale: float = 1.0,
) -> Trace:
    """Interleave the mix's member workloads into one trace."""
    recipe = MIX_RECIPES.get(mix_name)
    if recipe is None:
        raise WorkloadError(f"unknown mix {mix_name!r}")
    rng = XorShift64(seed ^ 0x3175)
    members = []
    for index, member_name in enumerate(recipe):
        spec = get_workload(member_name)
        # Catalog footprints are 16-copy rate-mode totals (Table IV);
        # a mix runs ONE copy of each member per core group, so each
        # member's footprint is 1/16 of the catalog value before the
        # geometry scale is applied.
        spec = spec.scaled(scale / 16.0)
        base = index * _MEMBER_SPAN_MULTIPLIER * cache_capacity_bytes
        members.append(
            SyntheticWorkload(
                spec,
                cache_capacity_bytes,
                seed=rng.fork(index).getstate(),
                addr_base=base,
            )
        )

    # Generate per-member chunks and interleave burst-by-burst. Chunked
    # interleaving (64 requests at a time) approximates the fine-grained
    # multiplexing of simultaneously running cores.
    chunk = 64
    per_member = num_accesses // len(members)
    streams = [m.generate(per_member, name=f"{mix_name}:{m.spec.name}") for m in members]
    addrs: List[int] = []
    writes = bytearray()
    position = 0
    while position < per_member:
        stop = min(position + chunk, per_member)
        for stream in streams:
            addrs.extend(stream.addrs[position:stop])
            writes.extend(stream.writes[position:stop])
        position = stop

    ipa = sum(s.instructions_per_access for s in streams) / len(streams)
    return Trace(name=mix_name, addrs=addrs, writes=writes,
                 instructions_per_access=ipa)
