"""Primitive access-pattern generators and phase composition.

The catalog generator (:mod:`repro.workloads.synthetic`) models each
benchmark as one stationary behaviour. Real programs move through
phases — an initialization stream, a pointer-chasing core loop, a
write-heavy result phase — and several of the paper's workloads (gcc,
xalancbmk) are known phase-changers. This module provides:

* primitive generators (:class:`StreamPattern`,
  :class:`PointerChasePattern`, :class:`HotColdPattern`,
  :class:`ScanPattern`) that each produce one idiomatic address stream;
* :class:`PhasedWorkload`, which splices primitives into a phased
  trace, letting users compose custom workloads against the public
  simulator API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.params.system import LINE_SIZE, PAGE_SIZE
from repro.sim.trace import Trace
from repro.utils.rng import XorShift64, mix64


class Pattern:
    """Base class: a stateful source of line-granularity addresses."""

    name = "pattern"

    def next_access(self, rng: XorShift64) -> Tuple[int, bool]:
        """Return (byte address, is_write) for the next request."""
        raise NotImplementedError


class StreamPattern(Pattern):
    """Sequential streaming over a buffer (STREAM/lbm-like).

    Touches consecutive lines with an optional stride, wrapping at the
    end of the buffer. ``write_every`` inserts a store each N loads
    (copy kernels write as much as they read).
    """

    name = "stream"

    def __init__(self, base: int, size_bytes: int, stride_lines: int = 1,
                 write_every: int = 0):
        if size_bytes < LINE_SIZE:
            raise WorkloadError("stream buffer smaller than one line")
        if stride_lines < 1:
            raise WorkloadError("stride must be >= 1 line")
        self.base = base
        self.num_lines = size_bytes // LINE_SIZE
        self.stride = stride_lines
        self.write_every = write_every
        self._position = 0
        self._count = 0

    def next_access(self, rng: XorShift64) -> Tuple[int, bool]:
        addr = self.base + (self._position % self.num_lines) * LINE_SIZE
        self._position += self.stride
        self._count += 1
        is_write = self.write_every > 0 and self._count % self.write_every == 0
        return addr, is_write


class PointerChasePattern(Pattern):
    """Random-graph pointer chasing (mcf/graph-analytics-like).

    Follows a fixed pseudo-random permutation over the node set, so
    every access is data-dependent, spatial locality is nil, and the
    working set is the whole node array.
    """

    name = "pointer_chase"

    def __init__(self, base: int, num_nodes: int, seed: int = 1):
        if num_nodes < 2:
            raise WorkloadError("need at least two nodes to chase")
        self.base = base
        self.num_nodes = num_nodes
        self._salt = mix64(seed)
        self._current = 0

    def next_access(self, rng: XorShift64) -> Tuple[int, bool]:
        addr = self.base + self._current * LINE_SIZE
        self._current = mix64(self._current ^ self._salt) % self.num_nodes
        return addr, False


class HotColdPattern(Pattern):
    """A hot working set with a cold tail (libquantum/caching-friendly).

    ``hot_fraction`` of accesses go uniformly to the hot region; the
    rest sample the full footprint.
    """

    name = "hot_cold"

    def __init__(self, base: int, footprint_bytes: int, hot_bytes: int,
                 hot_fraction: float = 0.9, write_frac: float = 0.0):
        if hot_bytes > footprint_bytes:
            raise WorkloadError("hot region larger than the footprint")
        if not 0.0 <= hot_fraction <= 1.0:
            raise WorkloadError("hot_fraction out of range")
        self.base = base
        self.total_lines = max(footprint_bytes // LINE_SIZE, 1)
        self.hot_lines = max(hot_bytes // LINE_SIZE, 1)
        self.hot_fraction = hot_fraction
        self.write_frac = write_frac

    def next_access(self, rng: XorShift64) -> Tuple[int, bool]:
        if rng.next_bool(self.hot_fraction):
            line = rng.next_below(self.hot_lines)
        else:
            line = rng.next_below(self.total_lines)
        is_write = self.write_frac > 0 and rng.next_bool(self.write_frac)
        return self.base + line * LINE_SIZE, is_write


class ScanPattern(Pattern):
    """Page-granular scans: touch every line of a page, move on.

    The best case for GWS — maximal region locality — and the pattern
    behind nekbone/libquantum-style accuracy in Figure 7.
    """

    name = "scan"

    def __init__(self, base: int, num_pages: int):
        if num_pages < 1:
            raise WorkloadError("need at least one page to scan")
        self.base = base
        self.num_pages = num_pages
        self._page = 0
        self._line = 0

    def next_access(self, rng: XorShift64) -> Tuple[int, bool]:
        addr = self.base + self._page * PAGE_SIZE + self._line * LINE_SIZE
        self._line += 1
        if self._line == PAGE_SIZE // LINE_SIZE:
            self._line = 0
            self._page = (self._page + 1) % self.num_pages
        return addr, False


@dataclass(frozen=True)
class Phase:
    """One phase: a pattern active for a number of accesses."""

    pattern: Pattern
    accesses: int

    def __post_init__(self):
        if self.accesses < 1:
            raise WorkloadError("a phase needs at least one access")


class PhasedWorkload:
    """Concatenate phases into a single trace, optionally repeating."""

    def __init__(self, phases: Sequence[Phase], seed: int = 1,
                 instructions_per_access: float = 50.0):
        if not phases:
            raise WorkloadError("need at least one phase")
        self.phases = list(phases)
        self.seed = seed
        self.instructions_per_access = instructions_per_access

    def generate(self, repeats: int = 1, name: str = "phased") -> Trace:
        if repeats < 1:
            raise WorkloadError("repeats must be >= 1")
        rng = XorShift64(self.seed)
        addrs: List[int] = []
        writes = bytearray()
        for _ in range(repeats):
            for phase in self.phases:
                for _ in range(phase.accesses):
                    addr, is_write = phase.pattern.next_access(rng)
                    addrs.append(addr)
                    writes.append(1 if is_write else 0)
        return Trace(name, addrs, writes, self.instructions_per_access)


def interleave(
    patterns: Sequence[Pattern],
    total_accesses: int,
    seed: int = 1,
    weights: Optional[Sequence[float]] = None,
    instructions_per_access: float = 50.0,
    name: str = "interleaved",
) -> Trace:
    """Probabilistically interleave patterns (multi-threaded behaviour)."""
    if not patterns:
        raise WorkloadError("need at least one pattern")
    if total_accesses < 1:
        raise WorkloadError("need at least one access")
    if weights is None:
        weights = [1.0] * len(patterns)
    if len(weights) != len(patterns) or any(w <= 0 for w in weights):
        raise WorkloadError("weights must be positive, one per pattern")
    total_weight = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total_weight
        cumulative.append(running)

    rng = XorShift64(seed)
    addrs: List[int] = []
    writes = bytearray()
    for _ in range(total_accesses):
        pick = rng.next_float()
        index = next(i for i, edge in enumerate(cumulative) if pick <= edge)
        addr, is_write = patterns[index].next_access(rng)
        addrs.append(addr)
        writes.append(1 if is_write else 0)
    return Trace(name, addrs, writes, instructions_per_access)
