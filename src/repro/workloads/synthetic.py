"""Synthetic trace generator engine.

Generates the L3-miss-level request stream for one workload as a
sequence of *region bursts*:

* With probability ``conflict_frac`` the burst targets the next page of
  a round-robin **conflict group** — ``conflict_degree`` pages whose
  addresses differ by exactly the cache capacity, so their lines alias
  in every set-associative organization of that capacity. Cycling
  through a degree-2 group is the paper's (a,b)^N pattern at page
  granularity: it thrashes a direct-mapped cache but co-resides in a
  2-way cache, which is what makes a workload associativity-sensitive.
* Otherwise the burst targets a page drawn from a log-skewed reuse
  distribution over the workload's footprint (``reuse`` sharpens or
  flattens the skew), scattered across the footprint by a hash so hot
  pages do not cluster in adjacent sets.

Within the chosen page the burst touches ``run`` consecutive lines
(``run`` ~ exponential with the spec's ``region_run`` mean), producing
the spatial locality that GWS exploits. Dirty writebacks are emitted at
rate ``write_frac`` against recently read lines.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import WorkloadError
from repro.params.system import PAGE_SIZE
from repro.sim.trace import Trace
from repro.utils.rng import XorShift64, mix64
from repro.workloads.spec import WorkloadSpec

LINE = 64
LINES_PER_PAGE = PAGE_SIZE // LINE
_RECENT_CAPACITY = 1024
_CONFLICT_GROUPS = 32


class SyntheticWorkload:
    """Stateful generator producing the request stream of one workload."""

    def __init__(
        self,
        spec: WorkloadSpec,
        cache_capacity_bytes: int,
        seed: int = 1,
        addr_base: int = 0,
    ):
        if cache_capacity_bytes <= 0:
            raise WorkloadError("cache capacity must be positive")
        if addr_base % cache_capacity_bytes != 0:
            raise WorkloadError(
                "addr_base must be a multiple of the cache capacity so that "
                "set-aliasing is preserved under the offset"
            )
        self.spec = spec
        self.capacity = cache_capacity_bytes
        self.addr_base = addr_base
        self._rng = XorShift64(seed)
        self._salt = mix64(seed ^ 0xFEED)

        self.num_pages = max(spec.footprint_bytes // PAGE_SIZE, 16)
        # Conflict groups live above the regular footprint, aligned so
        # that group members differ by exactly one cache capacity.
        conflict_base_page = -(-self.num_pages * PAGE_SIZE // self.capacity) + 1
        self._conflict_base = conflict_base_page * self.capacity
        self._conflict_next: List[int] = [0] * _CONFLICT_GROUPS

        self._recent: List[int] = []
        self._recent_pos = 0

        mean_run = min(spec.region_run, float(LINES_PER_PAGE))
        self._run_scale = max(mean_run - 1.0, 0.0)

    # -- page selection -------------------------------------------------

    def _conflict_page_addr(self) -> int:
        """Next page of a round-robin conflict group."""
        group = self._rng.next_below(_CONFLICT_GROUPS)
        member = self._conflict_next[group]
        degree = self.spec.conflict_degree
        self._conflict_next[group] = (member + 1) % degree
        return self._conflict_base + group * PAGE_SIZE + member * self.capacity

    def _regular_page_addr(self) -> int:
        """Page from the log-skewed reuse distribution, hash-scattered."""
        u = self._rng.next_float()
        skew = u ** self.spec.reuse
        rank = int(self.num_pages ** skew) - 1
        rank = min(max(rank, 0), self.num_pages - 1)
        slot = mix64(rank ^ self._salt) % self.num_pages
        return slot * PAGE_SIZE

    # -- burst generation -------------------------------------------------

    def _run_length(self) -> int:
        if self._run_scale <= 0.0:
            return 1
        u = self._rng.next_float()
        run = 1 + int(-self._run_scale * math.log(1.0 - u))
        return min(run, LINES_PER_PAGE)

    def _remember(self, addr: int) -> None:
        if len(self._recent) < _RECENT_CAPACITY:
            self._recent.append(addr)
        else:
            self._recent[self._recent_pos] = addr
            self._recent_pos = (self._recent_pos + 1) % _RECENT_CAPACITY

    def generate(self, num_accesses: int, name: Optional[str] = None) -> Trace:
        """Produce a trace with approximately ``num_accesses`` requests."""
        if num_accesses <= 0:
            raise WorkloadError("num_accesses must be positive")
        spec = self.spec
        rng = self._rng
        addrs: List[int] = []
        writes = bytearray()
        base = self.addr_base

        while len(addrs) < num_accesses:
            if spec.conflict_frac > 0 and rng.next_bool(spec.conflict_frac):
                page_addr = self._conflict_page_addr()
            else:
                page_addr = self._regular_page_addr()
            run = self._run_length()
            positions = max(LINES_PER_PAGE - run + 1, 1)
            # Align run starts to run-sized strides (array-walk behaviour):
            # pages get fully covered after a few visits, so line-granular
            # cold misses saturate quickly instead of trickling in forever.
            start = (rng.next_below(positions) // run) * run
            for i in range(run):
                addr = base + page_addr + (start + i) * LINE
                addrs.append(addr)
                writes.append(0)
                self._remember(addr)
                if spec.write_frac > 0 and rng.next_bool(spec.write_frac):
                    victim = self._recent[rng.next_below(len(self._recent))]
                    addrs.append(victim)
                    writes.append(1)

        return Trace(
            name=name or spec.name,
            addrs=addrs,
            writes=writes,
            instructions_per_access=spec.instructions_per_access,
        )


def generate_trace(
    spec: WorkloadSpec,
    cache_capacity_bytes: int,
    num_accesses: int,
    seed: int = 1,
    scale: float = 1.0,
) -> Trace:
    """Convenience wrapper: scale the spec's footprint, then generate."""
    scaled = spec.scaled(scale) if scale != 1.0 else spec
    workload = SyntheticWorkload(scaled, cache_capacity_bytes, seed=seed)
    return workload.generate(num_accesses)
