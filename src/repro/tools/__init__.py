"""User-facing command-line tools.

* ``python -m repro.tools.make_traces`` — generate the calibrated
  workload traces as portable files.
* ``python -m repro.tools.profile_trace`` — profile a trace file
  (footprint, spatial runs, reuse distances).

The experiments never need trace files (they generate in memory); these
tools exist for interchange with other simulators and for inspecting
what the generators produce.
"""
