"""Generate calibrated workload traces as portable text files.

Usage::

    python -m repro.tools.make_traces --out traces/ --accesses 100000 \
        soplex libq mix1

With no workload arguments, the paper's 21-workload main suite is
generated. Files use the self-describing format of
:mod:`repro.sim.trace` and can be re-read with ``load_trace``.
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional, Sequence

from repro.params.system import scaled_system
from repro.sim.runner import TraceFactory
from repro.sim.trace import save_trace
from repro.workloads.spec import main_suite


def make_traces(
    workloads: Sequence[str],
    out_dir: str,
    num_accesses: int = 100_000,
    seed: int = 7,
    scale: float = 1.0 / 128.0,
) -> List[str]:
    """Generate and save traces; returns the written file paths."""
    os.makedirs(out_dir, exist_ok=True)
    config = scaled_system(ways=1, scale=scale)
    factory = TraceFactory(config, num_accesses=num_accesses, seed=seed)
    written = []
    for workload in workloads:
        trace = factory.trace_for(workload)
        path = os.path.join(out_dir, f"{workload}.trace")
        save_trace(trace, path)
        written.append(path)
    return written


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workloads", nargs="*",
                        help="workload names (default: the 21-workload suite)")
    parser.add_argument("--out", default="traces",
                        help="output directory (default: ./traces)")
    parser.add_argument("--accesses", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    workloads = args.workloads or main_suite()
    paths = make_traces(workloads, args.out, args.accesses, args.seed)
    for path in paths:
        print(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
