"""Profile a saved trace file.

Usage::

    python -m repro.tools.profile_trace traces/soplex.trace

Prints footprint, spatial-run statistics, region reuse and a
reuse-distance histogram — the characteristics the synthetic
generators are calibrated against (see DESIGN.md §2).
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.sim.profile import profile_trace
from repro.sim.trace import load_trace
from repro.utils.charts import histogram


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace_files", nargs="+", help="trace files to profile")
    parser.add_argument("--no-reuse", action="store_true",
                        help="skip the (slower) reuse-distance estimate")
    parser.add_argument("--runs-histogram", action="store_true",
                        help="also plot the distribution of run starts")
    args = parser.parse_args(argv)

    for path in args.trace_files:
        trace = load_trace(path)
        profile = profile_trace(trace, reuse_distances=not args.no_reuse)
        print(f"== {path} ({trace.name}) ==")
        print(profile.summary())
        if args.runs_histogram:
            run_samples = []
            previous = None
            run = 0
            for addr, is_write in zip(trace.addrs, trace.writes):
                if is_write:
                    continue
                line = addr // 64
                if previous is not None and line == previous + 1:
                    run += 1
                else:
                    if run:
                        run_samples.append(float(run))
                    run = 1
                previous = line
            if run:
                run_samples.append(float(run))
            print(histogram(run_samples, bins=8, title="run-length distribution"))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
