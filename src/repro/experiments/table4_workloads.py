"""Table IV: workload characteristics.

Reports, for each rate-mode workload: catalog MPKI and footprint (the
calibration inputs) plus the *measured* idealized 8-way potential
speedup — the reproduction's analogue of the paper's "8-Way Potential
Speedup" column.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args
from repro.utils.tables import format_table
from repro.workloads.spec import get_workload, rate_mode_specs


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    rate_names = [s.name for s in rate_mode_specs()]
    settings.suite = [w for w in settings.suite if w in rate_names] or rate_names
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())
    runner.run("ideal8", AccordDesign(kind="ideal", ways=8))
    speedups = runner.speedups("ideal8", "direct")

    rows = []
    for name in settings.suite:
        spec = get_workload(name)
        footprint_gb = spec.footprint_bytes / (1024**3)
        rows.append(
            [
                spec.suite,
                name,
                f"{spec.mpki:.1f}",
                f"{footprint_gb:.2f}GB" if footprint_gb >= 1 else
                f"{spec.footprint_bytes // (1024**2)}MB",
                f"{speedups[name]:.2f}",
                f"{spec.potential:.2f}",
            ]
        )
    return format_table(
        ["suite", "workload", "L3 MPKI", "footprint",
         "measured 8-way potential", "paper potential"],
        rows,
        title="Table IV: workload characteristics",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
