"""Figure 14: per-workload speedup of prior way predictors vs ACCORD
(2-way cache, over direct-mapped).

Expected shape: CA-cache loses on bandwidth (swaps) even where
associativity does not help; MRU and partial-tag perform well but need
megabytes of SRAM; ACCORD matches them with 320 bytes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import per_workload_table
from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args

DESIGNS = {
    "CA-Cache (0B)": AccordDesign(kind="ca", ways=1),
    "MRU Pred (4MB)": AccordDesign(kind="mru", ways=2),
    "Partial-Tag (32MB)": AccordDesign(kind="partial_tag", ways=2),
    "ACCORD (320B)": AccordDesign(kind="accord", ways=2),
}


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())
    columns = {}
    for label, design in DESIGNS.items():
        runner.run(label, design)
        columns[label] = runner.speedups(label, "direct")
    return per_workload_table(
        columns,
        title="Figure 14: speedup of way predictors and ACCORD (2-way)",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
