"""Table VIII: ACCORD speedup vs DRAM-cache size.

Sweeps the (scaled) cache size over the equivalents of 1/2/4/8 GB while
keeping workload footprints pinned at the default (4GB-equivalent)
scale, so smaller caches see more pressure. Expected shape: ACCORD's
speedup shrinks as the cache grows (more of the footprint fits, less
room for improvement).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args
from repro.params.system import scaled_system
from repro.sim.runner import TraceFactory
from repro.utils.tables import format_table

SIZES_GB = (1.0, 2.0, 4.0, 8.0)
BASE_SCALE = 1.0 / 128.0


class _SizedRunner(SuiteRunner):
    """SuiteRunner whose trace footprints stay at the 4GB-equivalent
    scale while the cache geometry uses the swept scale."""

    def __init__(self, settings: Settings, footprint_scale: float):
        super().__init__(settings)
        config = scaled_system(ways=1, scale=settings.scale)
        self.traces = TraceFactory(
            config,
            settings.num_accesses,
            settings.seed,
            footprint_scale=footprint_scale,
        )


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    rows = []
    for size_gb in SIZES_GB:
        sized = replace(settings, scale=BASE_SCALE * (size_gb / 4.0))
        runner = _SizedRunner(sized, footprint_scale=BASE_SCALE)
        runner.run("direct", baseline_design())
        runner.run("accord", AccordDesign(kind="sws", ways=8, hashes=2))
        rows.append(
            [f"{size_gb:.1f}GB", f"{runner.gmean_speedup('accord', 'direct'):.3f}"]
        )
    return format_table(
        ["cache size", "speedup from ACCORD SWS(8,2)"],
        rows,
        title="Table VIII: sensitivity to cache size",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
