"""Figure 7: per-workload way-prediction accuracy for a 2-way cache.

Compares Rand Pred, PWS, GWS and PWS+GWS (ACCORD). Expected shape:
PWS ~= PIP (85%) everywhere; GWS near-perfect on high-spatial-locality
workloads (libq, nekbone) and weak on sparse ones (mcf, graph kernels);
PWS+GWS ~90% overall.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import per_workload_table, collect
from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, parse_args

DESIGNS = {
    "Rand Pred": AccordDesign(kind="unbiased", ways=2),
    "PWS": AccordDesign(kind="pws", ways=2),
    "GWS": AccordDesign(kind="gws", ways=2),
    "PWS+GWS": AccordDesign(kind="accord", ways=2),
}


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    runner = SuiteRunner(settings)
    columns = {}
    for label, design in DESIGNS.items():
        results = runner.run(label, design)
        columns[label] = collect(results, lambda r: r.prediction_accuracy)
    return per_workload_table(
        columns,
        title="Figure 7: way-prediction accuracy (2-way cache)",
        gmean_row=False,
    ) + "\n" + " | ".join(
        f"{label} mean={runner.mean_wp(label):.3f}" for label in DESIGNS
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
