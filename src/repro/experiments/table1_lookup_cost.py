"""Table I: accesses and transfers per hit/miss for each lookup scheme.

Analytic (from the lookup cost model) and cross-checked empirically in
``tests/test_experiments.py`` against the simulator's counters.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.analytic import lookup_cost_table
from repro.experiments.common import Settings, parse_args
from repro.utils.tables import format_table


def run(settings: Optional[Settings] = None, ways: int = 4) -> str:
    rows = [
        [
            cost.organization,
            f"{cost.hit_accesses:g} access / {cost.hit_transfers:g} transfer",
            f"{cost.miss_accesses:g} access / {cost.miss_transfers:g} transfer",
        ]
        for cost in lookup_cost_table(ways)
    ]
    return format_table(
        ["organization", "actions on a hit", "actions on a miss"],
        rows,
        title=f"Table I: lookup costs for an N={ways}-way set-associative cache",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
