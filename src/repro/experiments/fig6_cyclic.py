"""Figure 6: PIP's impact on the cyclic-reference kernel (a,b)^N.

Two independent evaluations of the same model:

* *analytic* — exact Markov-chain expectation
  (:func:`repro.analysis.analytic.cyclic_pws_hit_rate`);
* *simulated* — the actual 2-way PWS cache replaying the kernel trace,
  averaged over trials.

Expected shape: PIP=50% (unbiased) learns to use both ways fastest;
PIP=80% stays close; PIP=90% learns slowly but converges with enough
reuse; a direct-mapped cache (PIP=100%) stays at 0%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.analytic import cyclic_pws_hit_rate
from repro.cache.geometry import CacheGeometry
from repro.core.accord import AccordDesign, make_design
from repro.experiments.common import Settings, parse_args
from repro.utils.tables import format_table
from repro.workloads.cyclic import cyclic_trace, same_preferred_conflicting_addresses

PIPS = (0.5, 0.7, 0.8, 0.9)
ITERATIONS = (2, 4, 8, 16, 32, 64, 128)
_KERNEL_CAPACITY = 1 << 20  # a small cache is enough for a 2-line kernel


def simulated_hit_rate(pip: float, iterations: int, trials: int = 32) -> float:
    """Replay (a,b)^N against a real 2-way PWS cache, averaged."""
    addresses = same_preferred_conflicting_addresses(_KERNEL_CAPACITY, ways=2, count=2)
    trace = cyclic_trace(addresses, iterations)
    total = 0.0
    for trial in range(trials):
        geometry = CacheGeometry(_KERNEL_CAPACITY, 2)
        cache = make_design(
            AccordDesign(kind="pws", ways=2, pip=pip), geometry, seed=trial + 1
        )
        for addr in trace.addrs:
            cache.read(addr)
        total += cache.stats.hit_rate
    return total / trials


def run(settings: Optional[Settings] = None, trials: int = 32) -> str:
    rows = []
    for n in ITERATIONS:
        row = [str(n)]
        for pip in PIPS:
            analytic = cyclic_pws_hit_rate(pip, n)
            simulated = simulated_hit_rate(pip, n, trials=trials)
            row.append(f"{analytic:.3f}/{simulated:.3f}")
        rows.append(row)
    return format_table(
        ["iterations N"] + [f"PIP={int(p * 100)}% (ana/sim)" for p in PIPS],
        rows,
        title="Figure 6: cyclic kernel hit-rate vs N (analytic / simulated)",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
