"""Table V: PWS hit-rate, way-prediction accuracy and speedup vs PIP.

Expected shape: accuracy tracks PIP almost exactly; hit-rate stays near
the unbiased 2-way value through PIP=85-90% then collapses to the
direct-mapped rate at PIP=100%; speedup peaks around PIP=85%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args
from repro.utils.tables import format_percent, format_table

PIPS = (0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 1.0)


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())

    rows = []
    for pip in PIPS:
        label = f"pws{int(pip * 100)}"
        if pip >= 1.0:
            # PIP=100% degenerates into a direct-mapped cache: report the
            # baseline itself (accuracy is trivially 100%).
            rows.append(
                ["Direct-Mapped (PIP=100%)",
                 format_percent(runner.mean_hit("direct")), "100.0%", "1.000"]
            )
            continue
        runner.run(label, AccordDesign(kind="pws", ways=2, pip=pip))
        name = (
            "2-way (Unbiased, PIP=50%)" if pip == 0.5
            else f"2-way PWS (PIP={int(pip * 100)}%)"
        )
        rows.append(
            [
                name,
                format_percent(runner.mean_hit(label)),
                format_percent(runner.mean_wp(label)),
                f"{runner.gmean_speedup(label, 'direct'):.3f}",
            ]
        )
    return format_table(
        ["organization", "hit-rate", "WP accuracy", "speedup"],
        rows,
        title="Table V: PWS sensitivity to the preferred-way install probability",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
