"""Table VI: hit-rate impact of way steering.

Direct-mapped vs unbiased 2-way vs PWS vs GWS vs PWS+GWS. Expected
shape: GWS retains the 2-way hit-rate (it only coarsens replacement
granularity); PWS trades a small amount of hit-rate for predictability;
PWS+GWS sits between PWS and the unbiased 2-way cache.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args
from repro.utils.tables import format_percent, format_table

DESIGNS = {
    "Direct-mapped": baseline_design(),
    "2-Way Rand": AccordDesign(kind="unbiased", ways=2),
    "PWS": AccordDesign(kind="pws", ways=2),
    "GWS": AccordDesign(kind="gws", ways=2),
    "PWS+GWS": AccordDesign(kind="accord", ways=2),
}


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    runner = SuiteRunner(settings)
    row = []
    for label, design in DESIGNS.items():
        runner.run(label, design)
        row.append(format_percent(runner.mean_hit(label)))
    return format_table(
        list(DESIGNS),
        [row],
        title="Table VI: mean hit-rate under way steering (Amean)",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
