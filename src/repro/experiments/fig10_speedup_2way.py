"""Figure 10: per-workload speedup of 2-way designs over direct-mapped.

Parallel lookup, serial lookup, PWS, GWS, PWS+GWS (ACCORD) and perfect
way-prediction. Expected shape: parallel wastes bandwidth; serial is
slightly better; PWS+GWS approaches perfect-WP; GWS alone can
underperform on low-spatial-locality workloads.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import per_workload_table
from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args

DESIGNS = {
    "Parallel": AccordDesign(kind="parallel", ways=2),
    "Serial": AccordDesign(kind="serial", ways=2),
    "PWS": AccordDesign(kind="pws", ways=2),
    "GWS": AccordDesign(kind="gws", ways=2),
    "PWS+GWS": AccordDesign(kind="accord", ways=2),
    "Perfect WP": AccordDesign(kind="perfect", ways=2),
}


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())
    columns = {}
    for label, design in DESIGNS.items():
        runner.run(label, design)
        columns[label] = runner.speedups(label, "direct")
    return per_workload_table(
        columns, title="Figure 10: speedup from a 2-way DRAM cache"
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
