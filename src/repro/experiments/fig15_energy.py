"""Figure 15: off-chip memory-system power, energy and EDP.

ACCORD 2-way and ACCORD SWS(8,2), normalized to the direct-mapped
baseline. Expected shape: similar DRAM-cache energy (bandwidth-neutral
design), lower main-memory energy via the higher hit-rate, a few
percent total energy saving and a double-digit EDP improvement.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.energy import EnergyModel
from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args
from repro.sim.runner import geometric_mean
from repro.utils.tables import format_table

DESIGNS = {
    "ACCORD 2-way": AccordDesign(kind="accord", ways=2),
    "ACCORD SWS(8,2)": AccordDesign(kind="sws", ways=8, hashes=2),
}


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    runner = SuiteRunner(settings)
    base_results = runner.run("direct", baseline_design())
    model = EnergyModel()

    base_reports = {
        wl: model.evaluate(r.stats, r.runtime_ns) for wl, r in base_results.items()
    }

    rows = []
    for label, design in DESIGNS.items():
        results = runner.run(label, design)
        ratios = {"speedup": [], "power": [], "energy": [], "edp": []}
        for wl, result in results.items():
            report = model.evaluate(result.stats, result.runtime_ns)
            relative = report.relative_to(base_reports[wl])
            for key in ratios:
                ratios[key].append(relative[key])
        rows.append(
            [label]
            + [f"{geometric_mean(ratios[k]):.3f}" for k in
               ("speedup", "power", "energy", "edp")]
        )
    return format_table(
        ["design", "speedup", "power", "energy", "EDP"],
        rows,
        title="Figure 15: memory-system energy (normalized to direct-mapped)",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
