"""Shared experiment machinery.

Every experiment runs a set of named designs over a workload suite with
*paired traces*: the trace for a workload is generated once (it depends
only on cache capacity, which all designs share) and replayed against
every design.

Execution routes through :mod:`repro.exec`: each (design, workload)
pair becomes a :class:`~repro.exec.JobKey`, warm keys are served from
the content-addressed result store, and cold keys run in parallel when
``Settings.jobs > 1``. Parallel replay is bit-identical to serial
because trace generation is seeded per key.
"""

from __future__ import annotations

import argparse
import os
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.accord import AccordDesign
from repro.errors import WorkloadError
from repro.exec import Executor, JobKey, ResultStore
from repro.params.system import SystemConfig, scaled_system
from repro.sim.runner import (
    TraceFactory,
    geometric_mean,
    mean_hit_rate,
    mean_prediction_accuracy,
    speedups_vs_baseline,
)
from repro.sim.system import RunResult
from repro.workloads.spec import get_workload, is_mix, main_suite

DEFAULT_SCALE = 1.0 / 128.0


@dataclass
class Settings:
    """Knobs shared by all experiments."""

    num_accesses: int = 200_000
    warmup: float = 0.5
    seed: int = 7
    scale: float = DEFAULT_SCALE
    suite: List[str] = field(default_factory=main_suite)
    jobs: int = 1
    # Set-range shards per individual run (--shards); intra-run
    # parallelism with a bit-identical merge (see repro.sim.shard).
    shards: int = 1
    results_dir: Optional[str] = None
    use_store: bool = True
    # Demand reads per phase-metrics sample (--epoch-metrics); None
    # disables phase-resolved recording.
    epoch: Optional[int] = None
    # Transient-failure / dead-worker retry budget per job (--retries).
    retries: int = 1
    # Per-job wall-clock watchdog in seconds (--timeout); None disables.
    # Only enforced on the parallel path, where a stuck worker can be
    # killed and its job rescheduled.
    timeout: Optional[float] = None
    # Drive-engine request (--engine); results are engine-invariant.
    engine: str = "auto"
    # --engine-strict: error instead of falling back when the requested
    # engine cannot drive a design exactly.
    engine_strict: bool = False
    # Pack same-trace jobs into shared-trace batches with the fused
    # multi-config kernel (--no-batch disables). Results are
    # bit-identical either way; batching only changes wall-clock.
    batch: bool = True
    # Shadow-verification sampling fraction (--verify-fraction): this
    # share of executed jobs is re-run on the reference engine and the
    # result digests compared (see repro.verify). 0 disables.
    verify_fraction: float = 0.0
    # Reference engine for shadow verification and `repro audit`
    # recomputes (--verify-engine): "stream" (default) or "loop".
    verify_engine: str = "stream"

    def quick(self) -> "Settings":
        """A reduced configuration for smoke tests and CI."""
        return replace(
            self,
            num_accesses=40_000,
            suite=["soplex", "libq", "mcf", "sphinx"],
        )

    def make_executor(self, progress=None, journal=None) -> Executor:
        """Executor honouring this configuration's resilience knobs."""
        store = ResultStore(self.results_dir) if self.use_store else None
        return Executor(
            jobs=self.jobs,
            store=store,
            retries=self.retries,
            progress=progress,
            timeout=self.timeout,
            journal=journal,
            shards=self.shards,
            verify_fraction=self.verify_fraction,
            verify_engine=self.verify_engine,
            batch=self.batch,
        )

    def budgeted(self) -> "Settings":
        """Clamp the jobs × shards product to the machine's core count.

        Shards multiply the worker count (each job fans out ``shards``
        ways), so ``-j 8 --shards 4`` would ask for 32 workers. When
        the product exceeds the available cores, *jobs* is reduced —
        never the requested shard count, since sharding is what the
        user asked for and is deterministic at any worker budget — with
        a warning naming the adjustment.
        """
        if self.shards <= 1 or self.jobs <= 1:
            return self
        cores = os.cpu_count() or 1
        if self.jobs * self.shards <= cores:
            return self
        jobs = max(1, cores // self.shards)
        warnings.warn(
            f"jobs*shards = {self.jobs}*{self.shards} exceeds the "
            f"{cores} available core(s); reducing jobs to {jobs}",
            RuntimeWarning,
            stacklevel=2,
        )
        return replace(self, jobs=jobs)


def _parse_workloads(text: str, parser: argparse.ArgumentParser) -> List[str]:
    names = [name.strip() for name in text.split(",") if name.strip()]
    if not names:
        parser.error("--workloads: no workload names given")
    for name in names:
        if is_mix(name):
            continue
        try:
            get_workload(name)
        except WorkloadError as exc:
            parser.error(f"--workloads: {exc}")
    return names


def add_settings_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the flags shared by every experiment (and ``sweep``)."""
    parser.add_argument("--accesses", type=int, default=None,
                        help="requests per workload trace")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--quick", action="store_true",
                        help="small suite / short traces for a fast check")
    parser.add_argument("--workloads", type=str, default=None,
                        help="comma-separated workload subset "
                             "(default: the experiment's suite)")
    parser.add_argument("--scale", type=float, default=None,
                        help="system scale factor in (0, 1] "
                             "(default 1/128: 32MB cache)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes (1 = serial, the default)")
    parser.add_argument("--shards", type=int, default=1,
                        help="set-range shards per individual run; splits "
                             "one simulation across cores with a "
                             "bit-identical merge (designs with global "
                             "policy state fall back to serial)")
    parser.add_argument("--results-dir", type=str, default=None,
                        help="result-store directory "
                             "(default: $REPRO_RESULTS_DIR or ~/.cache/repro)")
    parser.add_argument("--no-store", action="store_true",
                        help="disable the on-disk result store")
    parser.add_argument("--epoch-metrics", type=int, default=None,
                        metavar="N", dest="epoch_metrics",
                        help="record phase-resolved metrics every N demand "
                             "reads (default: disabled)")
    parser.add_argument("--retries", type=int, default=1,
                        help="per-job retry budget for transient failures "
                             "and dead workers (default 1; 0 = fail fast)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECS",
                        help="per-job wall-clock timeout in seconds; a stuck "
                             "worker is killed and the job rescheduled "
                             "(parallel runs only; default: none)")
    from repro.sim.engines import ENGINE_NAMES

    parser.add_argument("--engine", type=str, default="auto",
                        choices=ENGINE_NAMES,
                        help="drive engine: auto picks the fastest exact "
                             "engine per design (vector kernel, batched "
                             "stream loop, or per-access reference loop); "
                             "results are identical under every engine")
    parser.add_argument("--engine-strict", action="store_true",
                        dest="engine_strict",
                        help="error instead of falling back when the "
                             "requested --engine cannot drive a design "
                             "exactly")
    parser.add_argument("--no-batch", action="store_true", dest="no_batch",
                        help="run every job individually instead of packing "
                             "same-trace jobs into fused-kernel batches "
                             "(results are bit-identical; batching only "
                             "changes wall-clock)")
    parser.add_argument("--verify-fraction", type=float, default=0.0,
                        metavar="F", dest="verify_fraction",
                        help="shadow-verify this fraction of executed jobs "
                             "against a reference-engine re-run (sampled "
                             "deterministically by job digest; mismatches "
                             "are quarantined, the offending engine is "
                             "circuit-broken, and the sweep heals from the "
                             "reference result; default 0: disabled)")
    parser.add_argument("--verify-engine", type=str, default="stream",
                        choices=("stream", "loop"), dest="verify_engine",
                        help="reference engine for shadow verification "
                             "(default: stream)")


def settings_from_args(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> Settings:
    """Build Settings from parsed common flags.

    ``--quick`` applies first; explicitly passed flags always win over
    the quick defaults (so ``--quick --accesses 100000`` runs the quick
    suite with 100k accesses).
    """
    settings = Settings()
    if args.quick:
        settings = settings.quick()
    if args.accesses is not None:
        if args.accesses <= 0:
            parser.error("--accesses must be positive")
        settings = replace(settings, num_accesses=args.accesses)
    if args.seed is not None:
        settings = replace(settings, seed=args.seed)
    if args.scale is not None:
        if not 0.0 < args.scale <= 1.0:
            parser.error("--scale must be in (0, 1]")
        settings = replace(settings, scale=args.scale)
    if args.workloads is not None:
        settings = replace(settings, suite=_parse_workloads(args.workloads, parser))
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.epoch_metrics is not None and args.epoch_metrics <= 0:
        parser.error("--epoch-metrics must be positive")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if not 0.0 <= args.verify_fraction <= 1.0:
        parser.error("--verify-fraction must be in [0, 1]")
    return replace(
        settings,
        jobs=args.jobs,
        shards=args.shards,
        results_dir=args.results_dir,
        use_store=not args.no_store,
        epoch=args.epoch_metrics,
        retries=args.retries,
        timeout=args.timeout,
        engine=args.engine,
        engine_strict=args.engine_strict,
        batch=not args.no_batch,
        verify_fraction=args.verify_fraction,
        verify_engine=args.verify_engine,
    ).budgeted()


def parse_args(description: str, argv: Optional[Sequence[str]] = None) -> Settings:
    """Common experiment CLI; see :func:`add_settings_arguments`."""
    parser = argparse.ArgumentParser(description=description)
    add_settings_arguments(parser)
    args = parser.parse_args(argv)
    return settings_from_args(args, parser)


class SuiteRunner:
    """Runs designs over the settings' suite with shared traces.

    All simulation goes through one :class:`~repro.exec.Executor`, so a
    runner transparently gains ``-j`` parallelism and warm-store
    restarts; per-label results are additionally memoized in-process as
    before.
    """

    def __init__(self, settings: Settings):
        self.settings = settings
        # Traces depend on capacity only; build them against a 1-way view.
        self._trace_config = scaled_system(ways=1, scale=settings.scale)
        self.traces = TraceFactory(
            self._trace_config, settings.num_accesses, settings.seed
        )
        self.executor = settings.make_executor()
        self._results: Dict[str, Dict[str, RunResult]] = {}

    def config_for(self, design: AccordDesign) -> SystemConfig:
        return scaled_system(ways=design.ways, scale=self.settings.scale)

    def job_key(self, design: AccordDesign, workload: str) -> JobKey:
        return JobKey(
            design=design,
            workload=workload,
            num_accesses=self.settings.num_accesses,
            warmup=self.settings.warmup,
            seed=self.settings.seed,
            scale=self.settings.scale,
            # Subclasses may pin footprints elsewhere (Table VIII).
            footprint_scale=self.traces.footprint_scale,
            epoch=self.settings.epoch,
            engine=self.settings.engine,
        )

    def _check_engine_strict(self, design: AccordDesign) -> None:
        """Fail fast under --engine-strict before any job is scheduled."""
        if not self.settings.engine_strict or self.settings.engine == "auto":
            return
        from repro.sim.engines import resolve_engine
        from repro.sim.system import build_dram_cache

        cache = build_dram_cache(
            design, self.config_for(design), seed=self.settings.seed
        )
        resolve_engine(
            cache, requested=self.settings.engine, strict=True, design=design
        )

    def run(self, label: str, design: AccordDesign) -> Dict[str, RunResult]:
        """Run (and memoize) one design across the suite."""
        if label not in self._results:
            if not self.settings.suite:
                raise WorkloadError("workload suite is empty")
            self._check_engine_strict(design)
            keys = [self.job_key(design, w) for w in self.settings.suite]
            resolved = self.executor.run(keys)
            self._results[label] = {
                key.workload: resolved[key] for key in keys
            }
        return self._results[label]

    # -- aggregates -------------------------------------------------------

    def mean_hit(self, label: str) -> float:
        return mean_hit_rate(self._results[label])

    def mean_wp(self, label: str) -> float:
        return mean_prediction_accuracy(self._results[label])

    def gmean_speedup(self, label: str, baseline_label: str) -> float:
        speedups = speedups_vs_baseline(
            self._results[label], self._results[baseline_label]
        )
        return geometric_mean(speedups.values())

    def speedups(self, label: str, baseline_label: str) -> Dict[str, float]:
        return speedups_vs_baseline(
            self._results[label], self._results[baseline_label]
        )


def baseline_design() -> AccordDesign:
    """The paper's baseline: direct-mapped, tags-with-data."""
    return AccordDesign(kind="direct", ways=1, label="Direct-mapped")
