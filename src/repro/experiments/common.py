"""Shared experiment machinery.

Every experiment runs a set of named designs over a workload suite with
*paired traces*: the trace for a workload is generated once (it depends
only on cache capacity, which all designs share) and replayed against
every design.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.accord import AccordDesign
from repro.params.system import SystemConfig, scaled_system
from repro.sim.runner import (
    TraceFactory,
    geometric_mean,
    mean_hit_rate,
    mean_prediction_accuracy,
    run_suite,
    speedups_vs_baseline,
)
from repro.sim.system import RunResult
from repro.workloads.spec import main_suite

DEFAULT_SCALE = 1.0 / 128.0


@dataclass
class Settings:
    """Knobs shared by all experiments."""

    num_accesses: int = 200_000
    warmup: float = 0.5
    seed: int = 7
    scale: float = DEFAULT_SCALE
    suite: List[str] = field(default_factory=main_suite)

    def quick(self) -> "Settings":
        """A reduced configuration for smoke tests and CI."""
        return replace(
            self,
            num_accesses=40_000,
            suite=["soplex", "libq", "mcf", "sphinx"],
        )


def parse_args(description: str, argv: Optional[Sequence[str]] = None) -> Settings:
    """Common CLI: --accesses, --seed, --quick."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--accesses", type=int, default=200_000,
                        help="requests per workload trace")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--quick", action="store_true",
                        help="small suite / short traces for a fast check")
    args = parser.parse_args(argv)
    settings = Settings(num_accesses=args.accesses, seed=args.seed)
    return settings.quick() if args.quick else settings


class SuiteRunner:
    """Runs designs over the settings' suite with shared traces."""

    def __init__(self, settings: Settings):
        self.settings = settings
        # Traces depend on capacity only; build them against a 1-way view.
        self._trace_config = scaled_system(ways=1, scale=settings.scale)
        self.traces = TraceFactory(
            self._trace_config, settings.num_accesses, settings.seed
        )
        self._results: Dict[str, Dict[str, RunResult]] = {}

    def config_for(self, design: AccordDesign) -> SystemConfig:
        return scaled_system(ways=design.ways, scale=self.settings.scale)

    def run(self, label: str, design: AccordDesign) -> Dict[str, RunResult]:
        """Run (and memoize) one design across the suite."""
        if label not in self._results:
            self._results[label] = run_suite(
                design,
                self.settings.suite,
                config=self.config_for(design),
                traces=self.traces,
                num_accesses=self.settings.num_accesses,
                warmup=self.settings.warmup,
                seed=self.settings.seed,
            )
        return self._results[label]

    # -- aggregates -------------------------------------------------------

    def mean_hit(self, label: str) -> float:
        return mean_hit_rate(self._results[label])

    def mean_wp(self, label: str) -> float:
        return mean_prediction_accuracy(self._results[label])

    def gmean_speedup(self, label: str, baseline_label: str) -> float:
        speedups = speedups_vs_baseline(
            self._results[label], self._results[baseline_label]
        )
        return geometric_mean(speedups.values())

    def speedups(self, label: str, baseline_label: str) -> Dict[str, float]:
        return speedups_vs_baseline(
            self._results[label], self._results[baseline_label]
        )


def baseline_design() -> AccordDesign:
    """The paper's baseline: direct-mapped, tags-with-data."""
    return AccordDesign(kind="direct", ways=1, label="Direct-mapped")
