"""Table VII: hit-rate of SWS designs.

Direct-mapped, 2-way ACCORD, SWS(4,2), SWS(8,2) and a full 8-way cache.
Expected shape: SWS(8,2) sits between 2-way ACCORD and 8-way, at a
2-lookup miss-confirmation cost.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args
from repro.utils.tables import format_percent, format_table

DESIGNS = {
    "Direct-mapped": baseline_design(),
    "ACCORD (2-way)": AccordDesign(kind="accord", ways=2),
    "SWS (4,2-way)": AccordDesign(kind="sws", ways=4, hashes=2),
    "SWS (8,2-way)": AccordDesign(kind="sws", ways=8, hashes=2),
    "8-Way": AccordDesign(kind="ideal", ways=8),
}


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    runner = SuiteRunner(settings)
    row = []
    for label, design in DESIGNS.items():
        runner.run(label, design)
        row.append(format_percent(runner.mean_hit(label)))
    return format_table(
        list(DESIGNS),
        [row],
        title="Table VII: hit-rate of different ACCORD designs",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
