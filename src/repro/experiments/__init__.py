"""One runnable module per paper table/figure.

Run any experiment as ``python -m repro.experiments.<module>``;
``--accesses N`` controls trace length (shorter = faster, noisier) and
``--quick`` runs a reduced-size sanity configuration.

Module -> paper artifact mapping lives in DESIGN.md §4; every module
exposes ``run(settings) -> str`` returning the formatted report that
``main()`` prints, so benchmarks and tests can drive the same code.
"""

EXPERIMENT_MODULES = [
    "fig1_associativity",
    "table1_lookup_cost",
    "table2_predictor_storage",
    "table4_workloads",
    "fig6_cyclic",
    "table5_pip",
    "fig7_accuracy",
    "table6_hitrate",
    "fig10_speedup_2way",
    "table7_sws_hitrate",
    "fig13_sws_speedup",
    "fig12_all_workloads",
    "table8_cache_size",
    "table9_storage",
    "table10_predictors",
    "fig14_predictor_speedup",
    "fig15_energy",
    "ablations",
]
