"""Table IX: storage requirements of ACCORD.

Pure accounting: PWS and SWS are stateless; GWS needs the RIT and RLT
(64 entries x 20 bits each = 320 bytes total). Cross-checked against
the live policy objects' ``storage_bits``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.storage import storage_table
from repro.cache.geometry import CacheGeometry
from repro.core.accord import AccordDesign, make_design
from repro.experiments.common import Settings, parse_args
from repro.utils.tables import format_table

PAPER_CAPACITY = 4 * 1024 * 1024 * 1024


def run(settings: Optional[Settings] = None) -> str:
    geometry = CacheGeometry(PAPER_CAPACITY, 2)
    rows = [[name, f"{nbytes} Bytes"] for name, nbytes in storage_table(geometry)]

    # Cross-check against a live ACCORD instance.
    cache = make_design(AccordDesign(kind="accord", ways=2), geometry)
    live_bytes = (cache.storage_overhead_bits() + 7) // 8
    rows.append(["(live ACCORD cache object)", f"{live_bytes} Bytes"])
    return format_table(
        ["ACCORD component", "storage"],
        rows,
        title="Table IX: storage requirements of ACCORD (4GB cache)",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
