"""Figure 12: ACCORD across all 46 workloads.

Runs ACCORD 2-way and ACCORD SWS(8,2) over the extended suite
(29 SPEC + 10 mixes + 6 GAP + 1 HPC), including workloads that are not
sensitive to associativity. Expected shape: positive average speedup
and — the robustness claim — no workload with a meaningful slowdown.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import per_workload_table
from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args
from repro.workloads.spec import extended_suite

DESIGNS = {
    "ACCORD 2-way": AccordDesign(kind="accord", ways=2),
    "ACCORD SWS(8,2)": AccordDesign(kind="sws", ways=8, hashes=2),
}


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    if len(settings.suite) <= len(extended_suite()) // 2:
        pass  # quick mode keeps its reduced suite
    else:
        settings.suite = extended_suite()
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())
    columns = {}
    for label, design in DESIGNS.items():
        runner.run(label, design)
        columns[label] = runner.speedups(label, "direct")
    worst = {
        label: min(per_wl.values()) for label, per_wl in columns.items()
    }
    table = per_workload_table(
        columns, title=f"Figure 12: speedup over {len(settings.suite)} workloads"
    )
    footer = " | ".join(f"{label} worst-case={v:.3f}" for label, v in worst.items())
    return table + "\n" + footer


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
