"""Table II: accuracy and storage of conventional way predictors.

Storage is computed for the paper's unscaled 4GB geometry (MRU 4MB,
partial-tag 32MB); accuracy is measured on the scaled suite at 2/4/8
ways.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.storage import predictor_storage_bytes
from repro.cache.geometry import CacheGeometry
from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, parse_args
from repro.utils.tables import format_percent, format_table

PAPER_CAPACITY = 4 * 1024 * 1024 * 1024
PREDICTORS = ("unbiased", "mru", "partial_tag")
LABELS = {"unbiased": "Rand Pred", "mru": "MRU Pred", "partial_tag": "Partial-Tag"}


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    runner = SuiteRunner(settings)

    accuracy = {}
    for kind in PREDICTORS:
        for ways in (2, 4, 8):
            label = f"{kind}{ways}"
            runner.run(label, AccordDesign(kind=kind, ways=ways))
            accuracy[(kind, ways)] = runner.mean_wp(label)

    storage_row = ["Storage (4GB cache)"]
    for kind in PREDICTORS:
        geometry = CacheGeometry(PAPER_CAPACITY, 2)
        nbytes = predictor_storage_bytes(
            {"unbiased": "rand"}.get(kind, kind), geometry
        )
        storage_row.append(
            "0B" if nbytes == 0 else f"{nbytes // (1024 * 1024)}MB"
        )

    rows = [storage_row]
    for ways in (2, 4, 8):
        rows.append(
            [f"{ways}-way accuracy"]
            + [format_percent(accuracy[(kind, ways)]) for kind in PREDICTORS]
        )
    return format_table(
        ["", *(LABELS[p] for p in PREDICTORS)],
        rows,
        title="Table II: accuracy and storage of way predictors (4GB cache)",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
