"""Ablation studies for ACCORD's design choices.

Covers the paper's side observations and sensitivity claims:

* **replacement** — LRU vs random on a 2-way DRAM cache (Section
  II-B.4: LRU's per-hit state writes cost more than its hit-rate gains;
  the paper reports ~9% worse than random).
* **rit-rlt-size** — RIT/RLT entry-count sweep (Section IV-C.2: 64
  entries capture most of GWS's benefit).
* **region-size** — GWS region granularity sweep around 4KB.
* **sws-hashes** — SWS(8,k) for k = 1, 2, 3, 4 (Section V-A: more
  alternates add hit-rate but raise miss-confirmation cost).
* **higher-ways-no-sws** — ACCORD at 4/8 ways *without* SWS, showing
  the miss-confirmation problem SWS solves (paper: 4-way +3%, 8-way
  -6% without SWS).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args
from repro.utils.tables import format_percent, format_table


def run_replacement(settings: Settings) -> str:
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())
    runner.run("random", AccordDesign(kind="unbiased", ways=2, replacement="random"))
    runner.run("lru", AccordDesign(kind="unbiased", ways=2, replacement="lru"))
    runner.run("nru", AccordDesign(kind="unbiased", ways=2, replacement="nru"))
    runner.run("rrip", AccordDesign(kind="unbiased", ways=2, replacement="rrip"))
    rows = [
        [name,
         format_percent(runner.mean_hit(name)),
         f"{runner.gmean_speedup(name, 'direct'):.3f}"]
        for name in ("random", "lru", "nru", "rrip")
    ]
    return format_table(
        ["replacement", "hit-rate", "speedup vs direct-mapped"],
        rows,
        title="Ablation: replacement policy on a 2-way DRAM cache",
    )


def run_table_sizes(settings: Settings) -> str:
    runner = SuiteRunner(settings)
    rows = []
    for entries in (8, 16, 32, 64, 128, 256):
        label = f"rit{entries}"
        runner.run(
            label,
            AccordDesign(kind="accord", ways=2,
                         rit_entries=entries, rlt_entries=entries),
        )
        rows.append([str(entries), format_percent(runner.mean_wp(label)),
                     format_percent(runner.mean_hit(label))])
    return format_table(
        ["RIT/RLT entries", "WP accuracy", "hit-rate"],
        rows,
        title="Ablation: GWS table size",
    )


def run_region_size(settings: Settings) -> str:
    runner = SuiteRunner(settings)
    rows = []
    for region in (1024, 2048, 4096, 8192, 16384):
        label = f"region{region}"
        runner.run(label, AccordDesign(kind="accord", ways=2, region_size=region))
        rows.append([f"{region}B", format_percent(runner.mean_wp(label)),
                     format_percent(runner.mean_hit(label))])
    return format_table(
        ["region size", "WP accuracy", "hit-rate"],
        rows,
        title="Ablation: GWS region granularity",
    )


def run_sws_hashes(settings: Settings) -> str:
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())
    rows = []
    for hashes in (1, 2, 3, 4):
        label = f"sws8_{hashes}"
        runner.run(label, AccordDesign(kind="sws", ways=8, hashes=hashes))
        rows.append([
            f"SWS(8,{hashes})",
            format_percent(runner.mean_hit(label)),
            format_percent(runner.mean_wp(label)),
            f"{runner.gmean_speedup(label, 'direct'):.3f}",
        ])
    return format_table(
        ["design", "hit-rate", "WP accuracy", "speedup"],
        rows,
        title="Ablation: number of SWS hash locations (8 physical ways)",
    )


def run_higher_ways_no_sws(settings: Settings) -> str:
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())
    rows = []
    for ways in (2, 4, 8):
        label = f"accord{ways}"
        runner.run(label, AccordDesign(kind="accord", ways=ways))
        rows.append([
            f"ACCORD {ways}-way (no SWS)",
            format_percent(runner.mean_hit(label)),
            f"{runner.gmean_speedup(label, 'direct'):.3f}",
        ])
    return format_table(
        ["design", "hit-rate", "speedup"],
        rows,
        title="Ablation: ACCORD without SWS (miss-confirmation cost grows with N)",
    )


def run_dueling(settings: Settings) -> str:
    """Extension: set-dueling adaptive PIP vs fixed PIP values."""
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())
    rows = []
    for label, design in (
        ("ACCORD PIP=70%", AccordDesign(kind="accord", ways=2, pip=0.70)),
        ("ACCORD PIP=85%", AccordDesign(kind="accord", ways=2, pip=0.85)),
        ("ACCORD PIP=95%", AccordDesign(kind="accord", ways=2, pip=0.95)),
        ("ACCORD dueling (70/95)", AccordDesign(kind="dueling", ways=2)),
    ):
        runner.run(label, design)
        rows.append([
            label,
            format_percent(runner.mean_hit(label)),
            format_percent(runner.mean_wp(label)),
            f"{runner.gmean_speedup(label, 'direct'):.3f}",
        ])
    return format_table(
        ["design", "hit-rate", "WP accuracy", "speedup"],
        rows,
        title="Ablation (extension): set-dueling adaptive PIP",
    )


def run_dcp_modes(settings: Settings) -> str:
    """DCP way-information variants (Section II-B.3 extension cost)."""
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())
    rows = []
    for label, mode in (
        ("exact DCP (presence+way)", "exact"),
        ("finite DCP (L3-resident only)", "finite"),
        ("no DCP (always probe)", "none"),
    ):
        design = AccordDesign(kind="accord", ways=2, dcp=mode)
        runner.run(label, design)
        results = runner.run(label, design)
        probes = sum(r.stats.writeback_probe_accesses for r in results.values())
        writebacks = sum(r.stats.writebacks_in for r in results.values())
        rows.append([
            label,
            f"{probes / max(writebacks, 1):.2f}",
            f"{runner.gmean_speedup(label, 'direct'):.3f}",
        ])
    return format_table(
        ["writeback way-info", "probe accesses per writeback", "speedup"],
        rows,
        title="Ablation: DCP way-bit extension for writebacks",
    )


def run_mru_filtering(settings: Settings) -> str:
    """Section II-D: why MRU prediction fails for DRAM caches.

    Runs one raw access stream through the SRAM hierarchy and measures
    MRU way-prediction accuracy on (a) the raw stream, where L1-style
    temporal locality is intact, and (b) the L3-filtered stream the
    DRAM cache actually sees.
    """
    from repro.cache.geometry import CacheGeometry
    from repro.sim.frontend import (
        FrontendSpec,
        RawAccessGenerator,
        mru_accuracy_at_level,
        run_frontend,
    )

    spec = FrontendSpec()
    raw_accesses = min(settings.num_accesses * 2, 400_000)
    # SRAM hierarchy scaled like the DRAM cache (Table III / 8), so the
    # hot working set spills past the L3 into the DRAM cache.
    result = run_frontend(
        spec,
        raw_accesses,
        seed=settings.seed,
        l1=CacheGeometry(16 * 1024, 8),
        l2=CacheGeometry(128 * 1024, 8),
        l3=CacheGeometry(1024 * 1024, 16),
    )

    # Measure MRU on a cache under set pressure (footprint ~8x cache):
    # raw-stream hits come from just-touched lines (MRU trivially right),
    # filtered-stream hits come from capacity churn where several live
    # lines share a set and alternate (MRU confused).
    geometry = CacheGeometry(8 * 1024 * 1024, 2)
    raw_stream = RawAccessGenerator(spec, seed=settings.seed).accesses(raw_accesses)
    raw_acc = mru_accuracy_at_level(raw_stream, geometry, seed=settings.seed)
    filtered = zip(result.dram_cache_trace.addrs, result.dram_cache_trace.writes)
    filtered_acc = mru_accuracy_at_level(filtered, geometry, seed=settings.seed)

    rows = [
        ["L1 hit rate", format_percent(result.l1_hit_rate)],
        ["L2 hit rate (of L1 misses)", format_percent(result.l2_hit_rate)],
        ["L3 hit rate (of L2 misses)", format_percent(result.l3_hit_rate)],
        ["accesses filtered before L4", format_percent(result.filter_rate)],
        ["MRU accuracy on the RAW stream", format_percent(raw_acc)],
        ["MRU accuracy on the L3-FILTERED stream", format_percent(filtered_acc)],
    ]
    return format_table(
        ["quantity", "value"],
        rows,
        title="Ablation: SRAM-hierarchy filtering destroys MRU locality "
              "(Section II-D)",
    )


ABLATIONS = {
    "replacement": run_replacement,
    "rit-rlt-size": run_table_sizes,
    "region-size": run_region_size,
    "sws-hashes": run_sws_hashes,
    "higher-ways-no-sws": run_higher_ways_no_sws,
    "dueling-pip": run_dueling,
    "dcp-modes": run_dcp_modes,
    "mru-filtering": run_mru_filtering,
}


def run(settings: Optional[Settings] = None, which: Optional[Sequence[str]] = None) -> str:
    settings = settings or Settings()
    names = list(which) if which else list(ABLATIONS)
    sections = [ABLATIONS[name](settings) for name in names]
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
