"""Figure 1: impact of associativity on hit-rate and performance.

(a) hit-rate of 1/2/4/8-way caches; (b) speedup of the *parallel
lookup* implementation (streams the whole set — bandwidth hungry);
(c) speedup of an *idealized* set-associative design with the latency
and bandwidth of a direct-mapped cache.

Expected shape: hit-rate rises with ways; parallel lookup's speedup
degrades as ways grow despite the better hit-rate; idealized
associativity shows the performance that motivates ACCORD.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args
from repro.utils.tables import format_percent, format_table

WAYS = (1, 2, 4, 8)


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())

    rows = []
    for ways in WAYS:
        if ways == 1:
            hit = runner.mean_hit("direct")
            rows.append(["1-way", format_percent(hit), "1.000", "1.000"])
            continue
        runner.run(f"parallel{ways}", AccordDesign(kind="parallel", ways=ways))
        runner.run(f"ideal{ways}", AccordDesign(kind="ideal", ways=ways))
        rows.append(
            [
                f"{ways}-way",
                format_percent(runner.mean_hit(f"ideal{ways}")),
                f"{runner.gmean_speedup(f'parallel{ways}', 'direct'):.3f}",
                f"{runner.gmean_speedup(f'ideal{ways}', 'direct'):.3f}",
            ]
        )
    return format_table(
        ["organization", "hit-rate", "speedup (parallel)", "speedup (idealized)"],
        rows,
        title="Figure 1: associativity vs hit-rate and performance",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
