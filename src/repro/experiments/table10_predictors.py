"""Table X: comparison of way predictors (CA-cache, MRU, Partial-Tag,
ACCORD) — accuracy at 2/4/8 ways plus paper-scale storage.

CA-cache is direct-mapped with two indices, so it has no 4/8-way
variant (N/A). ACCORD's accuracy is roughly flat across associativity
because SWS keeps the effective choice binary.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.storage import predictor_storage_bytes
from repro.cache.geometry import CacheGeometry
from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, parse_args
from repro.utils.tables import format_percent, format_table

PAPER_CAPACITY = 4 * 1024 * 1024 * 1024


def _design_for(column: str, ways: int) -> Optional[AccordDesign]:
    if column == "CA-Cache":
        return AccordDesign(kind="ca", ways=1) if ways == 2 else None
    if column == "MRU Pred":
        return AccordDesign(kind="mru", ways=ways)
    if column == "Partial-Tag":
        return AccordDesign(kind="partial_tag", ways=ways)
    if column == "ACCORD":
        if ways == 2:
            return AccordDesign(kind="accord", ways=2)
        return AccordDesign(kind="sws", ways=ways, hashes=2)
    raise ValueError(column)


COLUMNS = ("CA-Cache", "MRU Pred", "Partial-Tag", "ACCORD")
_STORAGE_KEYS = {"CA-Cache": "ca", "MRU Pred": "mru",
                 "Partial-Tag": "partial_tag", "ACCORD": "accord"}


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    runner = SuiteRunner(settings)

    accuracy: Dict[Tuple[str, int], Optional[float]] = {}
    for column in COLUMNS:
        for ways in (2, 4, 8):
            design = _design_for(column, ways)
            if design is None:
                accuracy[(column, ways)] = None
                continue
            label = f"{column}:{ways}"
            runner.run(label, design)
            accuracy[(column, ways)] = runner.mean_wp(label)

    storage_row = ["Storage"]
    for column in COLUMNS:
        geometry = CacheGeometry(PAPER_CAPACITY, 2)
        nbytes = predictor_storage_bytes(_STORAGE_KEYS[column], geometry)
        if nbytes == 0:
            storage_row.append("0MB")
        elif nbytes >= 1024 * 1024:
            storage_row.append(f"{nbytes // (1024 * 1024)}MB")
        else:
            storage_row.append(f"{nbytes} bytes")

    rows = [storage_row]
    for ways in (2, 4, 8):
        row = [f"Accuracy ({ways}-way)"]
        for column in COLUMNS:
            value = accuracy[(column, ways)]
            row.append("N/A" if value is None else format_percent(value))
        rows.append(row)
    return format_table(
        ["", *COLUMNS],
        rows,
        title="Table X: comparison of different way predictors",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
