"""Figure 13: per-workload speedup of ACCORD extended with SWS.

ACCORD 2-way vs ACCORD SWS(4,2) vs ACCORD SWS(8,2), over direct-mapped.
Expected shape: SWS(8,2) gives the highest average speedup; workloads
with near-100% hit-rate (sphinx) may lose slightly from the extra
bandwidth/row-buffer pressure of wider sets.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import per_workload_table
from repro.core.accord import AccordDesign
from repro.experiments.common import Settings, SuiteRunner, baseline_design, parse_args

DESIGNS = {
    "ACCORD 2-way": AccordDesign(kind="accord", ways=2),
    "ACCORD SWS(4,2)": AccordDesign(kind="sws", ways=4, hashes=2),
    "ACCORD SWS(8,2)": AccordDesign(kind="sws", ways=8, hashes=2),
}


def run(settings: Optional[Settings] = None) -> str:
    settings = settings or Settings()
    runner = SuiteRunner(settings)
    runner.run("direct", baseline_design())
    columns = {}
    for label, design in DESIGNS.items():
        runner.run(label, design)
        columns[label] = runner.speedups(label, "direct")
    return per_workload_table(
        columns, title="Figure 13: speedup from extending ACCORD using SWS"
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    print(run(parse_args(__doc__, argv)))


if __name__ == "__main__":
    main()
