"""Virtual memory: VA -> PA translation with randomized frame allocation."""

from repro.vm.translation import PageTable

__all__ = ["PageTable"]
