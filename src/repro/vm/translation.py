"""A first-touch page table with randomized physical frame allocation.

The paper models a virtual memory system because physical frame
placement determines which DRAM-cache sets a page's lines map to:
contiguous virtual pages land in scattered physical frames, which is
exactly the behaviour that creates set conflicts between unrelated
regions. We allocate frames with a deterministic pseudo-random
free-list walk, seeded per process, on first touch.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError, SimulationError
from repro.params.system import PAGE_SIZE
from repro.utils.rng import XorShift64, mix64


class PageTable:
    """Per-process VA -> PA mapping at 4KB granularity.

    Frames are allocated lazily. To avoid materializing a free list for
    gigascale memories, a frame candidate is drawn by hashing
    (seed, virtual page, attempt) and probing until an unused frame is
    found — a deterministic analogue of random first-touch allocation.
    """

    def __init__(self, physical_bytes: int, seed: int = 1, page_size: int = PAGE_SIZE):
        if physical_bytes < page_size:
            raise ConfigError("physical memory smaller than one page")
        if page_size <= 0 or physical_bytes % page_size != 0:
            raise ConfigError("physical size must be a positive multiple of page size")
        self.page_size = page_size
        self.num_frames = physical_bytes // page_size
        self.seed = seed
        self._vpn_to_pfn: Dict[int, int] = {}
        self._used_frames: set = set()
        self._rng = XorShift64(seed)

    def __len__(self) -> int:
        return len(self._vpn_to_pfn)

    def translate(self, vaddr: int) -> int:
        """Translate a virtual byte address, allocating on first touch."""
        if vaddr < 0:
            raise SimulationError(f"negative virtual address {vaddr:#x}")
        vpn = vaddr // self.page_size
        pfn = self._vpn_to_pfn.get(vpn)
        if pfn is None:
            pfn = self._allocate(vpn)
        return pfn * self.page_size + (vaddr % self.page_size)

    def _allocate(self, vpn: int) -> int:
        if len(self._used_frames) >= self.num_frames:
            raise SimulationError("physical memory exhausted (no frame eviction model)")
        attempt = 0
        while True:
            candidate = mix64(self.seed * 0x10001 + vpn * 0x9E37 + attempt) % self.num_frames
            if candidate not in self._used_frames:
                break
            attempt += 1
            if attempt > 64:
                # Memory nearly full: fall back to a linear probe which
                # always terminates because a free frame exists.
                candidate = self._linear_probe(candidate)
                break
        self._used_frames.add(candidate)
        self._vpn_to_pfn[vpn] = candidate
        return candidate

    def _linear_probe(self, start: int) -> int:
        for offset in range(self.num_frames):
            candidate = (start + offset) % self.num_frames
            if candidate not in self._used_frames:
                return candidate
        raise SimulationError("physical memory exhausted during linear probe")

    def resident_pages(self) -> int:
        """Number of pages touched so far."""
        return len(self._vpn_to_pfn)
