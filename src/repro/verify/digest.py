"""Canonical content digests for simulation result payloads.

A result's *payload digest* is a SHA-256 over the canonical-JSON form
of its :class:`~repro.sim.stats.CacheStats` counters plus its optional
:class:`~repro.sim.stats.PhaseSeries` — exactly the bit-identical
surface the engine equivalence suite asserts on. Two results computed
by different engines (or processes, or machines) therefore share a
digest iff they are the same answer; timing metadata and cosmetic
labels never participate.

The digest serves two trust roles (:mod:`repro.verify`):

* **Shadow verification** compares the digest of a sampled job's result
  against a reference re-execution — a cheap equality check over the
  full counter surface.
* **Output integrity**: :meth:`RunResult.to_dict` embeds the digest as
  ``payload_digest``, and :meth:`ResultStore.get` (and ``repro audit``)
  recompute it on read, so on-disk bit-rot becomes a detected miss.

Pure stdlib on purpose: :mod:`repro.sim.system` imports this at module
level, so it must not import anything from the sim/exec stack.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional

__all__ = ["payload_digest", "result_digest"]


def payload_digest(
    stats: Mapping[str, Any], phases: Optional[Mapping[str, Any]] = None
) -> str:
    """SHA-256 hex digest of a canonical (stats, phases) payload.

    ``stats`` is a :meth:`CacheStats.to_dict` mapping (raw counters
    only, no derived rates) and ``phases`` a
    :meth:`PhaseSeries.to_dict` mapping or None. Canonical JSON
    (sorted keys, no whitespace) makes the digest independent of dict
    ordering and serializer cosmetics.
    """
    payload = json.dumps(
        {"phases": phases, "stats": stats},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def result_digest(result: Any) -> str:
    """Payload digest of a :class:`~repro.sim.system.RunResult`.

    Duck-typed (anything with ``.stats.to_dict()`` and an optional
    ``.phases``) so the exec layer can digest results without importing
    the simulator. Engine-invariant by construction: all four drive
    engines produce bit-identical stats and phase series.
    """
    phases = result.phases.to_dict() if result.phases is not None else None
    return payload_digest(result.stats.to_dict(), phases)
