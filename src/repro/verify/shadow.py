"""Shadow cross-engine verification of executed sweep jobs.

With ``--verify-fraction F`` the executor samples a deterministic
``F``-fraction of *executed* jobs (store reads are covered separately
by payload digests) and re-runs each sampled job on a trusted
reference engine, comparing :func:`~repro.verify.digest.result_digest`
of the two answers. The sample is a pure function of the job's content
address, so a resumed sweep re-samples exactly the same jobs and two
concurrent sweeps agree on which keys are audited.

On a mismatch the executor quarantines *both* payloads (suspect and
reference, each with a ``.why`` sidecar naming the engine, key, and
digests), trips the offending engine's circuit breaker
(:mod:`repro.verify.breaker`), and heals the sweep by recording the
reference result — so an injected or latent wrong answer is caught,
preserved for inspection, and the final tables still come out
bit-identical to a fault-free reference run.

This module holds the policy-free helpers; the orchestration lives in
:meth:`repro.exec.executor.Executor._maybe_verify`. Imported lazily by
the executor to keep :mod:`repro.verify` import-light.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = [
    "VERIFY_ENGINES",
    "quarantine_mismatch",
    "reference_result",
    "resolve_job_engine",
    "should_verify",
]

#: Engines trusted as the shadow reference: the scalar paths whose
#: equivalence to the per-access loop does not rest on kernel
#: vectorization. ``loop`` is ground truth; ``stream`` is the default
#: (same decision code, batched driving, much faster).
VERIFY_ENGINES = ("stream", "loop")


def should_verify(digest: str, fraction: float) -> bool:
    """Deterministic sample: is this job digest in the audit fraction?

    Maps ``sha256("shadow-verify:" + digest)`` onto [0, 1) and compares
    against ``fraction`` — uniform over keys, stable across processes
    and resumes, and independent of the store/journal digest itself (a
    different domain prefix, so sampling never correlates with shard
    directory layout).
    """
    if fraction <= 0.0:
        return False
    if fraction >= 1.0:
        return True
    draw = hashlib.sha256(
        f"shadow-verify:{digest}".encode("ascii")
    ).digest()
    return int.from_bytes(draw[:8], "big") / 2.0 ** 64 < fraction


def reference_result(key: Any, engine: str = "stream") -> Any:
    """Re-execute ``key`` on the reference ``engine``, faults suppressed.

    The re-execution must see the pristine simulation — an injected
    fault firing inside the shadow run would poison the reference — so
    the active fault plan is suspended around it.
    """
    from repro.exec.faults import suppressed
    from repro.exec.jobs import execute_job

    with suppressed():
        return execute_job(replace(key, engine=engine))


def resolve_job_engine(key: Any) -> str:
    """The concrete engine name ``key``'s request resolves to right now.

    Used to attribute a mismatch to the engine that actually produced
    the suspect result (``key.engine`` is usually just ``"auto"``).
    Must be called *before* tripping the breaker, which changes the
    resolution.
    """
    from repro.exec.jobs import _shard_engine

    return _shard_engine(key)


def _write_json_atomic(path: Path, payload: Dict[str, Any]) -> None:
    fd, tmp = tempfile.mkstemp(
        prefix=".tmp-", suffix=path.suffix, dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def quarantine_mismatch(
    root: Union[str, Path],
    key: Any,
    engine: str,
    suspect: Any,
    reference: Any,
    suspect_digest: str,
    reference_digest: str,
    reference_engine: str,
) -> Optional[Path]:
    """Preserve both sides of a verification mismatch for inspection.

    Writes ``<digest>.suspect.json`` and ``<digest>.reference.json``
    under ``<root>/quarantine/`` — the same directory the store's
    corrupt-entry machinery uses — each with a ``.why`` sidecar naming
    the engines, the job key, and both payload digests. Best-effort
    like :func:`repro.exec.resilience.quarantine_entry`: never raises.
    Returns the suspect path, or None when nothing could be written.
    """
    from repro.exec.jobs import RESULT_SCHEMA_VERSION

    qdir = Path(root) / "quarantine"
    try:
        qdir.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    why_base = {
        "reason": "shadow verification mismatch",
        "job": key.digest(),
        "display": key.display,
        "key": key.canonical(),
        "engine": engine,
        "reference_engine": reference_engine,
        "suspect_digest": suspect_digest,
        "reference_digest": reference_digest,
        "quarantined_utc": stamp,
    }
    wrote: Optional[Path] = None
    for role, result in (("suspect", suspect), ("reference", reference)):
        path = qdir / f"{key.digest()}.{role}.json"
        try:
            _write_json_atomic(path, {
                "schema": RESULT_SCHEMA_VERSION,
                "key": key.canonical(),
                "result": result.to_dict(),
            })
            _write_json_atomic(
                qdir / f"{path.name}.why",
                dict(why_base, role=role, entry=path.name),
            )
        except OSError:
            continue
        if wrote is None:
            wrote = path
    return wrote
