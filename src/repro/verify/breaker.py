"""Process-wide circuit breaker for the drive-engine resolver.

When shadow verification (:mod:`repro.verify.shadow`) catches an engine
producing a wrong answer, it *trips* that engine here. A tripped engine
is demoted for the rest of the process: the resolver
(:func:`repro.sim.engines.resolve_engine`) skips it and falls down the
``vector → replay → stream → loop`` chain, so the sweep completes on a
trusted engine instead of aborting — bit-identically, because engines
agree wherever they overlap.

The trip is recorded twice:

* in a process-global set, consulted on every resolution, and
* in the ``REPRO_ENGINE_DENY`` environment variable (comma-separated
  engine names), so pool worker processes forked *after* the trip
  inherit the demotion. Workers already running keep their resolved
  engine for in-flight jobs; with verification enabled their sampled
  results are still checked, so nothing wrong survives.

``loop`` is the ground-truth reference and can never be tripped —
demoting it would leave nothing to fall back to.

Pure stdlib (plus :mod:`repro.errors`) on purpose: the engine resolver
imports this at module level.
"""

from __future__ import annotations

import os
import warnings
from typing import FrozenSet

from repro.errors import ConfigError

__all__ = [
    "ENGINE_DENY_ENV",
    "is_tripped",
    "reset",
    "trip",
    "tripped",
]

ENGINE_DENY_ENV = "REPRO_ENGINE_DENY"

_TRIPPED: set = set()


def _env_tripped() -> FrozenSet[str]:
    raw = os.environ.get(ENGINE_DENY_ENV, "")
    return frozenset(name.strip() for name in raw.split(",") if name.strip())


def tripped() -> FrozenSet[str]:
    """Every engine currently demoted (local trips plus inherited env)."""
    return frozenset(_TRIPPED) | _env_tripped()


def is_tripped(name: str) -> bool:
    """Whether ``name`` is circuit-broken in this process."""
    return name in _TRIPPED or name in _env_tripped()


def trip(name: str, reason: str = "") -> bool:
    """Demote ``name`` for the rest of the process; True if newly tripped.

    Updates the deny environment variable so freshly forked workers
    inherit the demotion, flushes the per-process engine-plan memos
    (they cache pre-trip resolutions), and warns once per engine.
    """
    if name == "loop":
        raise ConfigError(
            "the 'loop' reference engine cannot be circuit-broken; "
            "there is nothing left to fall back to"
        )
    if is_tripped(name):
        return False
    _TRIPPED.add(name)
    os.environ[ENGINE_DENY_ENV] = ",".join(sorted(tripped()))
    # Deferred: importing the exec layer at module level would cycle
    # (engines -> breaker -> jobs -> ... -> engines).
    from repro.exec.jobs import clear_engine_plans

    clear_engine_plans()
    detail = f": {reason}" if reason else ""
    warnings.warn(
        f"engine {name!r} circuit-broken for the rest of the process"
        f"{detail}; affected jobs fall back down the engine chain "
        "(results stay exact)",
        RuntimeWarning,
        stacklevel=2,
    )
    return True


def reset() -> None:
    """Clear every trip (tests; a new process starts clean anyway)."""
    _TRIPPED.clear()
    os.environ.pop(ENGINE_DENY_ENV, None)
