"""Runtime trust layer: digests, shadow verification, audit, breaker.

Four coordinated defenses against wrong numbers at scale:

* :mod:`repro.verify.digest` — canonical ``payload_digest`` /
  ``result_digest`` over the bit-identical stats + phase surface.
* :mod:`repro.verify.shadow` — ``--verify-fraction`` sampling and the
  reference re-execution the executor compares against.
* :mod:`repro.verify.breaker` — the engine circuit breaker that
  demotes an engine caught lying, for the rest of the process.
* :mod:`repro.verify.audit` — the offline ``python -m repro audit``
  walk of the result store and trace cache.

Only the pure-stdlib pieces (digest, breaker) are imported eagerly:
:mod:`repro.sim.system` and the engine resolver pull them in at module
level, so anything heavier here would cycle. ``shadow`` and ``audit``
import the exec layer and are loaded lazily by their consumers.
"""

from repro.verify.breaker import is_tripped, reset, trip, tripped
from repro.verify.digest import payload_digest, result_digest

__all__ = [
    "is_tripped",
    "payload_digest",
    "reset",
    "result_digest",
    "trip",
    "tripped",
]
