"""Offline integrity audit of the result store and trace cache.

``python -m repro audit`` walks every memoized result under the store
root and checks, in increasing order of cost:

1. the record is readable JSON with the current schema version,
2. the stored canonical key hashes to the entry's file name (the
   content address is honest),
3. the embedded ``payload_digest`` matches a recomputation over the
   parsed stats/phases (the payload bytes are honest),
4. optionally (``--recompute-fraction F``) a deterministic sample of
   entries is *re-executed* on a trusted reference engine and the
   fresh digest compared — the only check that can catch a result that
   was wrong from birth rather than corrupted at rest.

Bad entries are quarantined through the store's existing machinery
(``<root>/quarantine/`` + ``.why`` sidecars) so the next sweep re-runs
them; the trace cache gets the same readable-and-self-consistent walk.
The report ranks findings by severity: recompute mismatches (wrong
science) above digest mismatches (bit-rot) above stale/malformed
entries (ordinary cache churn).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ReproError
from repro.exec.jobs import RESULT_SCHEMA_VERSION
from repro.exec.resilience import quarantine_entry
from repro.sim.system import RunResult
from repro.verify.digest import result_digest
from repro.verify.shadow import reference_result, should_verify

__all__ = ["AuditReport", "audit_store", "audit_traces", "format_report"]

#: Store subdirectories that are not shard directories.
_NON_SHARD_DIRS = frozenset({"quarantine", "service", "traces"})


@dataclass
class AuditReport:
    """Outcome counts (and per-entry findings) of one audit pass."""

    root: str
    scanned: int = 0
    clean: int = 0
    stale_schema: int = 0
    malformed: int = 0
    key_mismatches: int = 0
    digest_mismatches: int = 0
    recomputed: int = 0
    recompute_mismatches: int = 0
    quarantined_now: int = 0
    quarantined_before: int = 0
    traces_scanned: int = 0
    traces_clean: int = 0
    traces_quarantined: int = 0
    findings: List[Dict[str, str]] = field(default_factory=list)

    @property
    def mismatches(self) -> int:
        """Integrity failures (as opposed to ordinary cache churn)."""
        return self.digest_mismatches + self.recompute_mismatches

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            name: getattr(self, name)
            for name in (
                "root", "scanned", "clean", "stale_schema", "malformed",
                "key_mismatches", "digest_mismatches", "recomputed",
                "recompute_mismatches", "quarantined_now",
                "quarantined_before", "traces_scanned", "traces_clean",
                "traces_quarantined",
            )
        }
        payload["mismatches"] = self.mismatches
        payload["findings"] = list(self.findings)
        return payload

    def _flag(self, entry: Path, kind: str, detail: str) -> None:
        self.findings.append(
            {"entry": entry.name, "kind": kind, "detail": detail}
        )


def _shard_dirs(root: Path):
    if not root.is_dir():
        return
    for shard in sorted(root.iterdir()):
        if shard.is_dir() and shard.name not in _NON_SHARD_DIRS:
            yield shard


def _check_entry(
    report: AuditReport,
    entry: Path,
    recompute_fraction: float,
    engine: str,
) -> Optional[str]:
    """Audit one store entry; returns a quarantine reason or None."""
    try:
        record = json.loads(entry.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        report.malformed += 1
        report._flag(entry, "malformed", f"unreadable JSON: {exc}")
        return f"audit: unreadable result entry: {exc}"
    if not isinstance(record, dict):
        report.malformed += 1
        report._flag(entry, "malformed", "record is not a JSON object")
        return "audit: record is not a JSON object"
    if record.get("schema") != RESULT_SCHEMA_VERSION:
        report.stale_schema += 1
        report._flag(
            entry, "stale-schema",
            f"schema {record.get('schema')!r} != {RESULT_SCHEMA_VERSION}",
        )
        return (
            f"audit: stale result schema {record.get('schema')!r} "
            f"(current is {RESULT_SCHEMA_VERSION})"
        )
    canonical = json.dumps(
        record.get("key"), sort_keys=True, separators=(",", ":")
    )
    address = hashlib.sha256(canonical.encode("ascii")).hexdigest()
    if f"{address}.json" != entry.name:
        report.key_mismatches += 1
        report._flag(
            entry, "key-mismatch",
            f"stored key hashes to {address[:12]}..., not the file name",
        )
        return "audit: stored key does not hash to the entry's address"
    try:
        result = RunResult.from_dict(record["result"])
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        report.malformed += 1
        report._flag(entry, "malformed", f"unparseable result: {exc}")
        return f"audit: malformed result payload: {exc}"
    declared = record["result"].get("payload_digest")
    recomputed = result_digest(result)
    if declared != recomputed:
        report.digest_mismatches += 1
        report._flag(
            entry, "digest-mismatch",
            f"stored {str(declared)[:12]}..., recomputed {recomputed[:12]}...",
        )
        return (
            f"audit: payload digest mismatch (stored {declared!r}, "
            f"recomputed {recomputed})"
        )
    if should_verify(address, recompute_fraction):
        from repro.service.jobspec import key_from_canonical

        report.recomputed += 1
        try:
            key = key_from_canonical(record["key"])
            fresh = result_digest(reference_result(key, engine))
        except ReproError as exc:
            report.malformed += 1
            report._flag(entry, "malformed", f"recompute failed: {exc}")
            return f"audit: recompute failed: {exc}"
        if fresh != recomputed:
            report.recompute_mismatches += 1
            report._flag(
                entry, "recompute-mismatch",
                f"stored {recomputed[:12]}..., {engine} re-run {fresh[:12]}...",
            )
            return (
                f"audit: stored result disagrees with a fresh {engine!r} "
                f"re-execution (stored {recomputed}, recomputed {fresh})"
            )
    return None


def audit_store(
    root: Union[str, Path],
    recompute_fraction: float = 0.0,
    engine: str = "stream",
    quarantine: bool = True,
) -> AuditReport:
    """Audit every result entry under ``root``; see the module docstring.

    With ``quarantine`` (the default) failing entries are moved into
    ``<root>/quarantine/`` via the store's machinery so the next sweep
    treats them as cache misses; pass False for a read-only audit.
    """
    root = Path(root)
    report = AuditReport(root=str(root))
    for shard in _shard_dirs(root):
        for entry in sorted(shard.glob("*.json")):
            if entry.name.startswith(".tmp-"):
                continue
            report.scanned += 1
            reason = _check_entry(report, entry, recompute_fraction, engine)
            if reason is None:
                report.clean += 1
            elif quarantine:
                if quarantine_entry(entry, root, reason) is not None:
                    report.quarantined_now += 1
    qdir = root / "quarantine"
    if qdir.is_dir():
        report.quarantined_before = sum(
            1 for item in qdir.iterdir()
            if item.suffix == ".json" and not item.name.startswith(".tmp-")
        ) - report.quarantined_now
    return report


def audit_traces(
    report: AuditReport, root: Optional[Union[str, Path]] = None,
    quarantine: bool = True,
) -> AuditReport:
    """Extend ``report`` with a readability walk of the trace cache.

    Each ``.npz`` entry must carry a parseable ``.key.json`` sidecar
    whose canonical form declares the current trace schema, and the
    payload itself must load. Bad entries are quarantined (the cache
    regenerates traces from seed, so this only costs warm time).
    """
    from repro.sim.trace import load_trace_npz
    from repro.workloads.trace_cache import (
        TRACE_SCHEMA_VERSION,
        default_trace_root,
    )

    root = Path(root) if root is not None else default_trace_root()
    for shard in _shard_dirs(root):
        for entry in sorted(shard.glob("*.npz")):
            if entry.name.startswith(".tmp-"):
                continue
            report.traces_scanned += 1
            sidecar = entry.with_suffix(".key.json")
            reason = None
            try:
                record = json.loads(sidecar.read_text(encoding="utf-8"))
                canonical = json.loads(record["key"])
                if canonical.get("schema") != TRACE_SCHEMA_VERSION:
                    reason = (
                        f"audit: stale trace schema "
                        f"{canonical.get('schema')!r}"
                    )
            except (OSError, KeyError, TypeError, ValueError) as exc:
                reason = f"audit: bad trace key sidecar: {exc}"
            if reason is None:
                try:
                    load_trace_npz(str(entry))
                except (ReproError, OSError) as exc:
                    reason = f"audit: corrupt trace payload: {exc}"
            if reason is None:
                report.traces_clean += 1
                continue
            report._flag(entry, "trace", reason)
            if quarantine:
                if quarantine_entry(
                    entry, root, reason, extras=[sidecar]
                ) is not None:
                    report.traces_quarantined += 1
    return report


def format_report(report: AuditReport) -> str:
    """Human-readable ranked report: worst findings first."""
    lines = [f"audit of {report.root}:"]
    lines.append(
        f"  results: {report.scanned} scanned, {report.clean} clean"
        + (f", {report.recomputed} recomputed" if report.recomputed else "")
    )
    severity = (
        ("recompute-mismatch", report.recompute_mismatches,
         "WRONG ANSWERS (stored result disagrees with a fresh re-run)"),
        ("digest-mismatch", report.digest_mismatches,
         "payload digest mismatches (on-disk bit-rot)"),
        ("key-mismatch", report.key_mismatches,
         "entries whose key does not match their address"),
        ("malformed", report.malformed, "malformed entries"),
        ("stale-schema", report.stale_schema, "stale-schema entries"),
    )
    for kind, count, label in severity:
        if not count:
            continue
        lines.append(f"  {count} {label}:")
        for finding in report.findings:
            if finding["kind"] == kind:
                lines.append(
                    f"    {finding['entry']}: {finding['detail']}"
                )
    if report.quarantined_now:
        lines.append(
            f"  {report.quarantined_now} entr"
            f"{'y' if report.quarantined_now == 1 else 'ies'} "
            "quarantined by this audit"
        )
    if report.quarantined_before:
        lines.append(
            f"  {report.quarantined_before} previously quarantined "
            "entries present"
        )
    if report.traces_scanned:
        lines.append(
            f"  traces: {report.traces_scanned} scanned, "
            f"{report.traces_clean} clean, "
            f"{report.traces_quarantined} quarantined"
        )
    if report.mismatches == 0:
        lines.append("  integrity: OK")
    else:
        lines.append(
            f"  integrity: {report.mismatches} mismatch"
            f"{'' if report.mismatches == 1 else 'es'} — "
            "quarantined; re-run the sweep to heal"
        )
    return "\n".join(lines)
