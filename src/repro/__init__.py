"""ACCORD: Enabling Associativity for Gigascale DRAM Caches by
Coordinating Way-Install and Way-Prediction (ISCA 2018) — reproduction.

Quick start::

    from repro import AccordDesign, run_design

    accord = AccordDesign(kind="accord", ways=2)
    result = run_design(accord, "libq")
    print(result.hit_rate, result.prediction_accuracy)

Public surface:

* :mod:`repro.core` — PWS / GWS / SWS policies and the ACCORD factory
* :mod:`repro.cache` — the DRAM cache and baselines (CA-cache, SRAM)
* :mod:`repro.sim` — simulator, timing models, traces
* :mod:`repro.workloads` — workload catalog and generators
* :mod:`repro.analysis` — analytic models, storage and energy accounting
* :mod:`repro.exec` — sweep jobs, content-addressed result store, executor
* :mod:`repro.experiments` — one module per paper table/figure
"""

from repro.core.accord import AccordDesign, make_accord, make_design
from repro.cache.geometry import CacheGeometry
from repro.exec import Executor, JobKey, ResultStore
from repro.params.system import SystemConfig, paper_system, scaled_system
from repro.sim.system import RunResult, Simulator, build_dram_cache
from repro.sim.runner import (
    TraceFactory,
    geometric_mean,
    run_design,
    run_suite,
)
from repro.workloads.spec import extended_suite, get_workload, main_suite

__version__ = "1.0.0"

__all__ = [
    "AccordDesign",
    "make_accord",
    "make_design",
    "CacheGeometry",
    "SystemConfig",
    "paper_system",
    "scaled_system",
    "Executor",
    "JobKey",
    "ResultStore",
    "RunResult",
    "Simulator",
    "build_dram_cache",
    "TraceFactory",
    "run_design",
    "run_suite",
    "geometric_mean",
    "main_suite",
    "extended_suite",
    "get_workload",
    "__version__",
]
