"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing genuine programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class GeometryError(ConfigError):
    """A cache/memory geometry parameter is invalid (e.g. non power of two)."""


class TraceError(ReproError):
    """A trace file or trace record is malformed."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class PolicyError(ReproError):
    """A steering/prediction policy was used with an incompatible cache."""


class WorkloadError(ReproError):
    """A workload specification is unknown or invalid."""


class ExecutionError(ReproError):
    """A sweep job could not be completed (e.g. workers kept crashing)."""


class TransientError(ReproError):
    """A retryable failure: retrying the same operation may succeed.

    The executor retries these (and :class:`OSError`) with exponential
    backoff, unlike deterministic simulation errors which would fail
    identically on every attempt.
    """


class JournalError(ExecutionError):
    """A sweep journal is missing, unreadable, or corrupt."""


class VerificationError(ReproError):
    """Shadow verification caught a result that cannot be healed.

    Raised when a sampled job's result disagrees with the reference
    re-execution *and* no trusted engine remains to fall back to (the
    mismatch came from the reference chain itself). Recoverable
    mismatches never raise: the executor quarantines both payloads,
    trips the engine circuit breaker, and records the reference result
    instead. Maps to CLI exit code 4.
    """
