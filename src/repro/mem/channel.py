"""A DRAM channel: a set of banks sharing one data bus (detailed engine)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigError
from repro.mem.bank import Bank
from repro.mem.request import DeviceResponse
from repro.params.timing import BusConfig, DramTiming


@dataclass
class Channel:
    """Banks plus a shared bus; tracks bus occupancy for transfers."""

    timing: DramTiming
    bus: BusConfig
    num_banks: int = 16
    banks: List[Bank] = field(default_factory=list)
    bus_busy_until_ns: float = 0.0
    bytes_transferred: int = 0

    def __post_init__(self):
        if self.num_banks <= 0:
            raise ConfigError("a channel needs at least one bank")
        if not self.banks:
            self.banks = [Bank(self.timing) for _ in range(self.num_banks)]

    def access(
        self, bank_index: int, row: int, num_bytes: int, now_ns: float
    ) -> DeviceResponse:
        """Access ``row`` in one bank, then stream ``num_bytes`` on the bus."""
        if not 0 <= bank_index < self.num_banks:
            raise ConfigError(
                f"bank index {bank_index} out of range [0, {self.num_banks})"
            )
        bank_response = self.banks[bank_index].access(row, now_ns)
        # Per-channel bus: this channel owns 1/channels of aggregate BW,
        # so the transfer time is for a single channel's width.
        transfer_ns = self.bus.transfer_ns(num_bytes)
        start = max(bank_response.ready_ns, self.bus_busy_until_ns)
        ready = start + transfer_ns
        self.bus_busy_until_ns = ready
        self.bytes_transferred += num_bytes
        return DeviceResponse(ready_ns=ready, row_hit=bank_response.row_hit)

    def row_hit_rate(self) -> float:
        total = sum(b.total_accesses for b in self.banks)
        if not total:
            return 0.0
        hits = sum(b.row_hits for b in self.banks)
        return hits / total
