"""Memory access records exchanged between the hierarchy and devices."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AccessType(enum.Enum):
    """Kind of traffic arriving at the DRAM cache from the LLC."""

    READ = "read"
    WRITE = "write"  # dirty writeback from the LLC
    PREFETCH = "prefetch"

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


@dataclass
class Access:
    """One line-granularity memory access.

    ``addr`` is a physical byte address; the cache models align it to a
    64B line internally. ``instructions`` carries how many instructions
    retired since the previous L3 miss of the same core — the interval
    timing model uses it to reconstruct CPI.
    """

    addr: int
    type: AccessType = AccessType.READ
    core: int = 0
    instructions: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def is_write(self) -> bool:
        return self.type.is_write


@dataclass(frozen=True)
class DeviceResponse:
    """Timing outcome of one device access in the detailed engine."""

    ready_ns: float
    row_hit: bool
