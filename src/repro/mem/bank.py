"""DRAM bank model with an open-row buffer (detailed engine).

A bank services one column access at a time. The row buffer keeps the
most recently activated row open; accesses to the open row cost tCAS,
accesses to another row cost tRP + tRCD + tCAS, and the first access to
a precharged bank costs tRCD + tCAS. tRAS bounds how quickly an
activated row may be precharged again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.request import DeviceResponse
from repro.params.timing import DramTiming


@dataclass
class Bank:
    """State machine for one DRAM bank."""

    timing: DramTiming
    open_row: int = -1  # -1 means precharged
    busy_until_ns: float = 0.0
    activated_at_ns: float = field(default=-1.0e18)
    row_hits: int = 0
    row_misses: int = 0
    row_empties: int = 0

    def access(self, row: int, now_ns: float) -> DeviceResponse:
        """Perform a column access to ``row`` arriving at ``now_ns``.

        Returns when the data is available on the bank's sense amps;
        bus transfer time is accounted separately by the channel.
        """
        start = max(now_ns, self.busy_until_ns)
        if self.open_row == row:
            latency = self.timing.row_hit_ns
            self.row_hits += 1
            row_hit = True
        elif self.open_row < 0:
            latency = self.timing.row_empty_ns
            self.row_empties += 1
            self.activated_at_ns = start
            row_hit = False
        else:
            # Respect tRAS before the open row can be precharged.
            ras_ready = self.activated_at_ns + self.timing.t_ras
            start = max(start, ras_ready)
            latency = self.timing.row_miss_ns
            self.row_misses += 1
            self.activated_at_ns = start + self.timing.t_rp
            row_hit = False
        self.open_row = row
        ready = start + latency
        self.busy_until_ns = ready
        return DeviceResponse(ready_ns=ready, row_hit=row_hit)

    def precharge(self, now_ns: float) -> None:
        """Close the open row (used by close-page policies and refresh)."""
        if self.open_row >= 0:
            ras_ready = self.activated_at_ns + self.timing.t_ras
            start = max(now_ns, self.busy_until_ns, ras_ready)
            self.busy_until_ns = start + self.timing.t_rp
            self.open_row = -1

    @property
    def total_accesses(self) -> int:
        return self.row_hits + self.row_misses + self.row_empties

    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit the open row."""
        total = self.total_accesses
        return self.row_hits / total if total else 0.0


class RefreshController:
    """Periodic all-bank refresh (tREFI/tRFC) for the detailed engine.

    Every ``t_refi_ns`` the controller steals the bank array for
    ``t_rfc_ns`` and closes all rows. Stacked DRAM refreshes per
    channel; modelling it per-bank-group is unnecessary at this
    granularity. Refresh costs are invisible to the interval model
    (folded into the bus-efficiency factor) but the detailed engine can
    show their latency spikes.
    """

    def __init__(self, t_refi_ns: float = 3900.0, t_rfc_ns: float = 260.0):
        if t_refi_ns <= 0 or t_rfc_ns <= 0:
            raise ValueError("refresh intervals must be positive")
        if t_rfc_ns >= t_refi_ns:
            raise ValueError("tRFC must be smaller than tREFI")
        self.t_refi_ns = t_refi_ns
        self.t_rfc_ns = t_rfc_ns
        self._next_refresh_ns = t_refi_ns
        self.refreshes = 0

    def apply(self, banks, now_ns: float) -> float:
        """Perform any refreshes due by ``now_ns``.

        Returns the time until which the banks are blocked (now_ns if
        no refresh was due). Catch-up refreshes are issued one per call
        at most — the detailed engines call this per request, which is
        far more often than tREFI at any realistic load.
        """
        if now_ns < self._next_refresh_ns:
            return now_ns
        start = max(now_ns, self._next_refresh_ns)
        end = start + self.t_rfc_ns
        for bank in banks:
            bank.precharge(start)
            bank.busy_until_ns = max(bank.busy_until_ns, end)
        self._next_refresh_ns += self.t_refi_ns
        self.refreshes += 1
        return end
