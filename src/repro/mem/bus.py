"""Bandwidth accounting for the interval timing model.

The fast timing model does not simulate individual bus cycles; instead,
cache and memory models report how many bytes each class of traffic
moved, and the timing model converts byte counts plus a runtime estimate
into utilization and queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.params.timing import BusConfig


@dataclass
class BandwidthAccountant:
    """Accumulates bytes moved over a bus, bucketed by traffic class."""

    bus: BusConfig
    bytes_by_class: Dict[str, int] = field(default_factory=dict)

    def add(self, traffic_class: str, num_bytes: int) -> None:
        """Record ``num_bytes`` of traffic of the given class."""
        if num_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {num_bytes}")
        self.bytes_by_class[traffic_class] = (
            self.bytes_by_class.get(traffic_class, 0) + num_bytes
        )

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_class.values())

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of peak bandwidth consumed over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            raise ValueError(f"elapsed time must be positive, got {elapsed_ns}")
        peak_bytes = self.bus.aggregate_bandwidth_gbps * elapsed_ns  # GB/s * ns = bytes
        return self.total_bytes / peak_bytes

    def queueing_delay_ns(self, elapsed_ns: float, service_ns: float) -> float:
        """Mean queueing delay per access under an M/M/1 approximation.

        Utilization is clamped just below 1 so that oversubscribed
        configurations produce a very large but finite penalty; the
        fixed-point runtime solver then stretches runtime until
        utilization is feasible.
        """
        rho = min(self.utilization(elapsed_ns), 0.98)
        if rho <= 0:
            return 0.0
        return service_ns * rho / (1.0 - rho)

    def reset(self) -> None:
        self.bytes_by_class.clear()

    def snapshot(self) -> Dict[str, int]:
        """Return a copy of the per-class byte counts."""
        return dict(self.bytes_by_class)
