"""Stacked-DRAM (HBM) cache device for the detailed engine.

Address mapping follows the paper's organization: all ways of one cache
set live in the same row buffer (Figure 2b), so checking a second way
after a way mispredict is usually a row-buffer hit. Consecutive sets are
interleaved across channels and banks for parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigError
from repro.mem.channel import Channel
from repro.mem.request import DeviceResponse
from repro.params.system import TRANSFER_BYTES
from repro.params.timing import BusConfig, DramTiming
from repro.utils.bitops import ilog2

SETS_PER_ROW = 32  # 72B units per 2KB-ish row buffer region per way


@dataclass
class DramDevice:
    """HBM stack organized as channels x banks with row buffers."""

    timing: DramTiming
    bus: BusConfig
    num_banks_per_channel: int = 16
    channels: List[Channel] = field(default_factory=list)

    def __post_init__(self):
        if not self.channels:
            self.channels = [
                Channel(self.timing, self.bus, self.num_banks_per_channel)
                for _ in range(self.bus.channels)
            ]

    def _map(self, set_index: int) -> tuple:
        """Map a cache set to (channel, bank, row).

        Sets are first grouped into rows (ways co-located), then rows are
        striped over channels and banks.
        """
        row_group = set_index // SETS_PER_ROW
        channel = row_group % len(self.channels)
        per_channel = row_group // len(self.channels)
        bank = per_channel % self.num_banks_per_channel
        row = per_channel // self.num_banks_per_channel
        return channel, bank, row

    def access_set(
        self, set_index: int, num_lines: int, now_ns: float
    ) -> DeviceResponse:
        """Read/write ``num_lines`` 72B tag+data units from one set's row."""
        if num_lines <= 0:
            raise ConfigError("must access at least one line")
        channel_idx, bank, row = self._map(set_index)
        return self.channels[channel_idx].access(
            bank, row, num_lines * TRANSFER_BYTES, now_ns
        )

    def row_hit_rate(self) -> float:
        totals = [c.row_hit_rate() for c in self.channels if any(
            b.total_accesses for b in c.banks)]
        if not totals:
            return 0.0
        return sum(totals) / len(totals)

    @property
    def bytes_transferred(self) -> int:
        return sum(c.bytes_transferred for c in self.channels)


def make_hbm_device(timing: DramTiming, bus: BusConfig) -> DramDevice:
    """Factory used by the detailed simulator."""
    ilog2(SETS_PER_ROW)  # sanity: keep the constant a power of two
    return DramDevice(timing=timing, bus=bus)
