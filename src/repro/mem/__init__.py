"""Memory device models: DRAM banks/channels, NVM, buses, scheduling.

Two levels of fidelity are provided:

* :class:`repro.mem.bus.BandwidthAccountant` — event counting used by
  the fast interval timing model.
* :class:`repro.mem.dram.DramDevice` / :class:`repro.mem.nvm.NvmDevice`
  with banks, row buffers and an FR-FCFS scheduler — the cycle-level
  detailed engine used for validation.
"""

from repro.mem.request import Access, AccessType
from repro.mem.bus import BandwidthAccountant
from repro.mem.bank import Bank
from repro.mem.channel import Channel
from repro.mem.dram import DramDevice
from repro.mem.nvm import NvmDevice
from repro.mem.scheduler import FrFcfsScheduler

__all__ = [
    "Access",
    "AccessType",
    "BandwidthAccountant",
    "Bank",
    "Channel",
    "DramDevice",
    "NvmDevice",
    "FrFcfsScheduler",
]
