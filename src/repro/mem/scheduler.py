"""FR-FCFS memory request scheduler for the detailed engine.

First-Ready, First-Come-First-Served: among queued requests, those that
hit the currently open row of their bank are issued first; ties break by
arrival order. This is the standard high-performance DRAM scheduling
policy and the one USIMM-style simulators default to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(order=True)
class _QueuedRequest:
    arrival_ns: float
    seq: int
    payload: object = field(compare=False)
    bank_key: Tuple[int, int] = field(compare=False, default=(0, 0))
    row: int = field(compare=False, default=0)


class FrFcfsScheduler:
    """A bounded queue implementing FR-FCFS issue order."""

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._queue: List[_QueuedRequest] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def enqueue(
        self, payload: object, arrival_ns: float, bank_key: Tuple[int, int], row: int
    ) -> None:
        """Add a request; raises if the queue is full (caller must stall)."""
        if self.full:
            raise OverflowError("scheduler queue is full; caller must stall")
        self._queue.append(
            _QueuedRequest(arrival_ns, self._seq, payload, bank_key, row)
        )
        self._seq += 1

    def pop_next(
        self, open_row_of: Callable[[Tuple[int, int]], int]
    ) -> Optional[object]:
        """Remove and return the next request to issue.

        ``open_row_of`` maps a bank key to its currently open row (-1 if
        precharged). Row-hit requests are preferred; within each class
        the oldest wins.
        """
        if not self._queue:
            return None
        best_index = None
        best_key = None
        for i, req in enumerate(self._queue):
            is_hit = open_row_of(req.bank_key) == req.row
            key = (not is_hit, req.arrival_ns, req.seq)
            if best_key is None or key < best_key:
                best_key = key
                best_index = i
        request = self._queue.pop(best_index)
        return request.payload

    def oldest_arrival(self) -> Optional[float]:
        """Arrival time of the oldest queued request, or None if empty."""
        if not self._queue:
            return None
        return min(req.arrival_ns for req in self._queue)
