"""Non-volatile main memory (PCM-like) device model.

NVM row buffers exist but the dominant effect the paper relies on is the
raw latency gap (reads 2-4x, writes 4x DRAM) and the much lower channel
bandwidth (32 GB/s vs 128 GB/s). The detailed model therefore uses flat
read/write array latencies plus bus occupancy per transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.mem.request import DeviceResponse
from repro.params.system import LINE_SIZE
from repro.params.timing import BusConfig, NvmTiming


@dataclass
class _NvmChannel:
    """One NVM channel: serial array access + bus streaming."""

    timing: NvmTiming
    bus: BusConfig
    busy_until_ns: float = 0.0
    bytes_transferred: int = 0
    reads: int = 0
    writes: int = 0

    def access(self, is_write: bool, num_bytes: int, now_ns: float) -> DeviceResponse:
        start = max(now_ns, self.busy_until_ns)
        array_ns = self.timing.write_ns if is_write else self.timing.read_ns
        transfer_ns = self.bus.transfer_ns(num_bytes)
        ready = start + array_ns + transfer_ns
        # Writes occupy the device but a read's data is what the caller
        # waits for; either way the channel is busy until completion.
        self.busy_until_ns = ready
        self.bytes_transferred += num_bytes
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        return DeviceResponse(ready_ns=ready, row_hit=False)


@dataclass
class NvmDevice:
    """Multi-channel NVM main memory."""

    timing: NvmTiming
    bus: BusConfig
    channels: List[_NvmChannel] = field(default_factory=list)

    def __post_init__(self):
        if not self.channels:
            self.channels = [
                _NvmChannel(self.timing, self.bus) for _ in range(self.bus.channels)
            ]

    def _channel_for(self, line_addr: int) -> _NvmChannel:
        return self.channels[line_addr % len(self.channels)]

    def read_line(self, addr: int, now_ns: float) -> DeviceResponse:
        """Read one 64B line."""
        return self._channel_for(addr // LINE_SIZE).access(False, LINE_SIZE, now_ns)

    def write_line(self, addr: int, now_ns: float) -> DeviceResponse:
        """Write one 64B line (cache writeback or bypass store)."""
        return self._channel_for(addr // LINE_SIZE).access(True, LINE_SIZE, now_ns)

    @property
    def reads(self) -> int:
        return sum(c.reads for c in self.channels)

    @property
    def writes(self) -> int:
        return sum(c.writes for c in self.channels)

    @property
    def bytes_transferred(self) -> int:
        return sum(c.bytes_transferred for c in self.channels)
