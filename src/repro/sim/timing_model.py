"""Interval (fixed-point) timing model.

Converts the functional cache counters into runtime the way USIMM-class
simulators' aggregate behaviour comes out, without per-cycle
simulation:

* Each demand read's latency is the sum of its serialized DRAM-cache
  probes (the first probe pays an array access, follow-up probes hit
  the already-open row: Figure 2b co-locates all ways of a set in one
  row buffer) plus, on a miss, the NVM read.
* Every 72B tag+data transfer consumes stacked-DRAM bus bandwidth and
  every 64B line consumes NVM bus bandwidth; queueing delay grows with
  utilization (M/M/1 shape).
* Utilization depends on runtime and runtime depends on queueing, so
  runtime is solved as a fixed point.

Rate-mode evaluation (all ``num_cores`` cores running the workload)
multiplies traffic by the core count while per-core instruction
throughput stays that of one core — exactly how bandwidth contention
punishes parallel lookup in the paper's Figure 1b.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.params.system import LINE_SIZE, SystemConfig, TRANSFER_BYTES
from repro.sim.stats import CacheStats
from repro.utils.fixedpoint import solve_fixed_point

_MAX_RHO = 0.98


@dataclass(frozen=True)
class TimingBreakdown:
    """Where the runtime went (per core, nanoseconds)."""

    runtime_ns: float
    base_ns: float
    stall_ns: float
    avg_read_latency_ns: float
    dram_utilization: float
    nvm_utilization: float
    dram_queue_ns: float
    nvm_queue_ns: float

    @property
    def cpi(self) -> float:
        return self.runtime_ns  # placeholder; use cycles_per_instruction()

    def cycles_per_instruction(self, instructions: float, frequency_ghz: float) -> float:
        if instructions <= 0:
            raise SimulationError("instruction count must be positive")
        return self.runtime_ns * frequency_ghz / instructions


class IntervalTimingModel:
    """Fixed-point runtime estimator for one workload run."""

    def __init__(self, config: SystemConfig):
        self.config = config
        timing = config.dram_timing
        # First probe: activate + CAS (the access stream is L3-filtered,
        # so consecutive demand reads rarely reuse a row).
        self.first_probe_ns = timing.row_empty_ns
        # Follow-up probe in the same row buffer: CAS only.
        self.extra_probe_ns = timing.row_hit_ns
        # Single-channel streaming time of one 72B tag+data unit.
        self.dram_service_ns = config.dram_bus.transfer_ns(TRANSFER_BYTES)
        self.nvm_service_ns = config.nvm_bus.transfer_ns(LINE_SIZE)

    # -- traffic ------------------------------------------------------------

    def dram_bytes(self, stats: CacheStats) -> int:
        return stats.total_cache_transfers * TRANSFER_BYTES

    def nvm_bytes(self, stats: CacheStats) -> int:
        return (stats.nvm_reads + stats.nvm_writes) * LINE_SIZE

    def _utilization(self, total_bytes: float, bandwidth_gbps: float,
                     elapsed_ns: float) -> float:
        peak = bandwidth_gbps * elapsed_ns  # GB/s * ns == bytes
        return min(total_bytes / peak, _MAX_RHO) if peak > 0 else _MAX_RHO

    @staticmethod
    def _queue_ns(service_ns: float, rho: float, knee: int = 1) -> float:
        """Queueing delay vs utilization.

        ``knee=1`` is M/M/1 — right for the NVM channels, which have
        little bank parallelism to absorb bursts. The stacked-DRAM
        channels sit in front of 16 banks each, so short bursts overlap
        and queueing is negligible until utilization approaches the
        knee; ``knee=3`` (rho^3/(1-rho)) captures that while keeping
        the saturation behaviour that punishes parallel lookup.
        """
        return service_ns * (rho ** knee) / (1.0 - rho)

    # -- runtime ------------------------------------------------------------

    def evaluate(
        self,
        stats: CacheStats,
        instructions: float,
        num_cores: int = None,
    ) -> TimingBreakdown:
        """Solve for one core's runtime under rate-mode bandwidth sharing."""
        if instructions <= 0:
            raise SimulationError("instruction count must be positive")
        cores = num_cores if num_cores is not None else self.config.cores.num_cores
        if cores <= 0:
            raise SimulationError("need at least one core")
        core_cfg = self.config.cores

        base_ns = instructions * core_cfg.base_cpi / core_cfg.frequency_ghz
        reads = stats.demand_reads
        dram_total = self.dram_bytes(stats) * cores
        nvm_total = self.nvm_bytes(stats) * cores

        # Only follow-up probes that found the line serialize the read;
        # miss-confirmation probes overlap the speculative NVM fetch
        # (their bus transfers are still in cache_read_transfers).
        extra_per_read = stats.hit_extra_probes / reads if reads else 0.0
        miss_per_read = stats.misses / reads if reads else 0.0
        # Transfers pipeline on the bus, so a read's own 72B unit adds
        # service latency once — but every unit streamed on its behalf
        # (including the extra ways a parallel lookup reads and the
        # miss-confirmation probes) contends in the channel queue. This
        # is what makes parallel lookup bandwidth-bound (Figure 1b).
        transfers_per_read = stats.cache_read_transfers / reads if reads else 0.0
        wb_nvm_latency = self.config.nvm_timing.read_ns

        def runtime(elapsed_ns: float) -> float:
            rho_dram = self._utilization(
                dram_total, self.config.dram_bus.sustainable_bandwidth_gbps, elapsed_ns
            )
            rho_nvm = self._utilization(
                nvm_total, self.config.nvm_bus.sustainable_bandwidth_gbps, elapsed_ns
            )
            q_dram = self._queue_ns(self.dram_service_ns, rho_dram, knee=3)
            q_nvm = self._queue_ns(self.nvm_service_ns, rho_nvm)
            read_latency = (
                self.first_probe_ns
                + self.dram_service_ns
                + transfers_per_read * q_dram
                + extra_per_read * (self.extra_probe_ns + self.dram_service_ns)
                + miss_per_read * (wb_nvm_latency + self.nvm_service_ns + q_nvm)
            )
            stall_ns = reads * read_latency / core_cfg.mlp
            return base_ns + stall_ns

        if reads == 0:
            final = base_ns
        else:
            final = solve_fixed_point(runtime, initial=max(base_ns, 1.0))

        # Recompute the components at the solution for reporting.
        rho_dram = self._utilization(
            dram_total, self.config.dram_bus.sustainable_bandwidth_gbps, final
        )
        rho_nvm = self._utilization(
            nvm_total, self.config.nvm_bus.sustainable_bandwidth_gbps, final
        )
        q_dram = self._queue_ns(self.dram_service_ns, rho_dram, knee=3)
        q_nvm = self._queue_ns(self.nvm_service_ns, rho_nvm)
        if reads:
            read_latency = (
                self.first_probe_ns
                + self.dram_service_ns
                + transfers_per_read * q_dram
                + extra_per_read * (self.extra_probe_ns + self.dram_service_ns)
                + miss_per_read * (wb_nvm_latency + self.nvm_service_ns + q_nvm)
            )
            stall_ns = reads * read_latency / core_cfg.mlp
        else:
            read_latency = 0.0
            stall_ns = 0.0

        return TimingBreakdown(
            runtime_ns=final,
            base_ns=base_ns,
            stall_ns=stall_ns,
            avg_read_latency_ns=read_latency,
            dram_utilization=rho_dram,
            nvm_utilization=rho_nvm,
            dram_queue_ns=q_dram,
            nvm_queue_ns=q_nvm,
        )
