"""Event counters shared by the cache models and the timing model.

The counters deliberately separate *serialized* probe accesses (which
add latency: each dependent DRAM access in a serial/way-predicted
lookup) from *transfers* (which add bandwidth: every 72B tag+data unit
moved on the stacked-DRAM bus), because the paper's Table I costs the
two dimensions independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class CacheStats:
    """Counters accumulated over one simulation run."""

    # demand stream
    demand_reads: int = 0
    writebacks_in: int = 0

    # outcomes
    hits: int = 0
    misses: int = 0

    # way prediction (evaluated on hits only, per the paper's metric)
    predicted_hits: int = 0
    correct_predictions: int = 0

    # serialized DRAM-cache accesses for demand reads
    first_probes: int = 0
    # Follow-up probes (same row buffer), split by outcome: probes that
    # eventually found the line add serialized latency; probes that only
    # confirmed a miss overlap the speculative NVM fetch and cost
    # bandwidth alone (the transfer is still counted).
    hit_extra_probes: int = 0
    miss_extra_probes: int = 0

    # 72B tag+data transfers on the stacked-DRAM bus
    cache_read_transfers: int = 0
    cache_write_transfers: int = 0
    replacement_update_transfers: int = 0
    swap_transfers: int = 0  # CA-cache line swaps

    # fills / evictions
    installs: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    # main memory (NVM) traffic in 64B lines
    nvm_reads: int = 0
    nvm_writes: int = 0

    # writeback handling
    writeback_probe_accesses: int = 0
    writeback_direct: int = 0
    writeback_bypass: int = 0

    extras: Dict[str, int] = field(default_factory=dict)

    # -- derived metrics ----------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def extra_probes(self) -> int:
        """All follow-up probes regardless of outcome."""
        return self.hit_extra_probes + self.miss_extra_probes

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of hits whose first probe found the line."""
        return (
            self.correct_predictions / self.predicted_hits
            if self.predicted_hits
            else 0.0
        )

    @property
    def total_cache_transfers(self) -> int:
        return (
            self.cache_read_transfers
            + self.cache_write_transfers
            + self.replacement_update_transfers
            + self.swap_transfers
        )

    @property
    def probes_per_read(self) -> float:
        """Average serialized DRAM accesses per demand read."""
        if not self.demand_reads:
            return 0.0
        return (self.first_probes + self.extra_probes) / self.demand_reads

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a free-form extra counter."""
        self.extras[name] = self.extras.get(name, 0) + amount

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats block into this one."""
        for f in fields(self):
            if f.name == "extras":
                for key, value in other.extras.items():
                    self.bump(key, value)
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def to_dict(self) -> Dict[str, object]:
        """Raw counters only (no derived metrics); inverse of :meth:`from_dict`."""
        out: Dict[str, object] = {}
        for f in fields(self):
            if f.name == "extras":
                out["extras"] = dict(self.extras)
            else:
                out[f.name] = getattr(self, f.name)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CacheStats":
        """Rebuild a stats block from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CacheStats fields: {sorted(unknown)}")
        kwargs = dict(data)
        extras = kwargs.pop("extras", {})
        stats = cls(**{k: int(v) for k, v in kwargs.items()})
        stats.extras = {str(k): int(v) for k, v in dict(extras).items()}
        return stats

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of raw and derived values (for reports)."""
        out: Dict[str, float] = {}
        for f in fields(self):
            if f.name != "extras":
                out[f.name] = getattr(self, f.name)
        out.update(self.extras)
        out["hit_rate"] = self.hit_rate
        out["prediction_accuracy"] = self.prediction_accuracy
        out["total_cache_transfers"] = self.total_cache_transfers
        out["probes_per_read"] = self.probes_per_read
        return out
