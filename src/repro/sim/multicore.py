"""True multi-core simulation: N cores sharing one DRAM cache.

The experiment harness evaluates rate mode analytically (one core's
trace, bandwidth x16), which is exact when all cores run the same
benchmark. Mix workloads, however, *contend*: cores with different
footprints and rates share cache capacity and bus bandwidth. This
module interleaves per-core traces through one shared cache with
per-core statistics, then solves a shared fixed point:

* all cores see queueing from the *aggregate* traffic;
* each core's runtime follows from its own access mix at that queueing
  level;
* aggregate traffic flows for as long as the longest-running core, so
  utilization is computed against the maximum per-core runtime.

Reported metrics are per-core runtimes and the paper's weighted
speedup (via :mod:`repro.sim.cpu`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.accord import AccordDesign
from repro.errors import SimulationError
from repro.params.system import LINE_SIZE, SystemConfig, TRANSFER_BYTES
from repro.sim.cpu import CorePerformance, weighted_speedup
from repro.sim.stats import CacheStats
from repro.sim.system import build_dram_cache
from repro.sim.timing_model import IntervalTimingModel
from repro.sim.trace import Trace
from repro.utils.fixedpoint import solve_fixed_point


@dataclass
class MultiCoreResult:
    """Outcome of one shared-cache run."""

    per_core_stats: List[CacheStats]
    per_core_runtime_ns: List[float]
    per_core_instructions: List[float]

    @property
    def num_cores(self) -> int:
        return len(self.per_core_stats)

    @property
    def makespan_ns(self) -> float:
        return max(self.per_core_runtime_ns)

    def performances(self) -> List[CorePerformance]:
        return [
            CorePerformance(instr, runtime)
            for instr, runtime in zip(
                self.per_core_instructions, self.per_core_runtime_ns
            )
        ]

    def weighted_speedup_over(self, baseline: "MultiCoreResult") -> float:
        return weighted_speedup(self.performances(), baseline.performances())

    def combined_hit_rate(self) -> float:
        hits = sum(s.hits for s in self.per_core_stats)
        accesses = sum(s.accesses for s in self.per_core_stats)
        return hits / accesses if accesses else 0.0


class MultiCoreSimulator:
    """Interleaves per-core traces through one shared cache design."""

    def __init__(self, config: SystemConfig, design: AccordDesign, seed: int = 1,
                 chunk: int = 64):
        if chunk < 1:
            raise SimulationError("chunk must be >= 1")
        self.config = config
        self.design = design
        self.seed = seed
        self.chunk = chunk
        self.cache = build_dram_cache(design, config, seed=seed)
        self.timing_model = IntervalTimingModel(config)

    # -- functional phase ---------------------------------------------------

    def _interleave(self, traces: Sequence[Trace], warmup_fraction: float
                    ) -> List[CacheStats]:
        cache = self.cache
        cursors = [0] * len(traces)
        lengths = [len(t) for t in traces]
        warm_marks = [int(n * warmup_fraction) for n in lengths]
        stats = [CacheStats() for _ in traces]
        warm_stats = [CacheStats() for _ in traces]
        in_warmup = [True] * len(traces)

        live = set(range(len(traces)))
        while live:
            for core in list(live):
                trace = traces[core]
                cache.stats = warm_stats[core] if in_warmup[core] else stats[core]
                stop = min(cursors[core] + self.chunk, lengths[core])
                addrs = trace.addrs
                writes = trace.writes
                for i in range(cursors[core], stop):
                    if writes[i]:
                        cache.writeback(addrs[i])
                    else:
                        cache.read(addrs[i])
                    # Switch measurement window exactly at the mark.
                    if in_warmup[core] and i + 1 >= warm_marks[core]:
                        in_warmup[core] = False
                        cache.stats = stats[core]
                cursors[core] = stop
                if stop >= lengths[core]:
                    live.discard(core)
        return stats

    # -- timing phase ---------------------------------------------------------

    def _solve_timing(self, stats: List[CacheStats],
                      instructions: List[float]) -> List[float]:
        model = self.timing_model
        core_cfg = self.config.cores
        dram_bytes = sum(s.total_cache_transfers for s in stats) * TRANSFER_BYTES
        nvm_bytes = sum(s.nvm_reads + s.nvm_writes for s in stats) * LINE_SIZE

        def core_runtime(core: int, q_dram: float, q_nvm: float) -> float:
            s = stats[core]
            reads = s.demand_reads
            base = instructions[core] * core_cfg.base_cpi / core_cfg.frequency_ghz
            if not reads:
                return base
            transfers = s.cache_read_transfers / reads
            extra = s.hit_extra_probes / reads
            miss = s.misses / reads
            latency = (
                model.first_probe_ns
                + model.dram_service_ns
                + transfers * q_dram
                + extra * (model.extra_probe_ns + model.dram_service_ns)
                + miss * (self.config.nvm_timing.read_ns
                          + model.nvm_service_ns + q_nvm)
            )
            return base + reads * latency / core_cfg.mlp

        def makespan(elapsed_ns: float) -> float:
            rho_dram = min(
                dram_bytes / (self.config.dram_bus.sustainable_bandwidth_gbps
                              * elapsed_ns), 0.98,
            )
            rho_nvm = min(
                nvm_bytes / (self.config.nvm_bus.sustainable_bandwidth_gbps
                             * elapsed_ns), 0.98,
            )
            q_dram = model.dram_service_ns * rho_dram ** 3 / (1.0 - rho_dram)
            q_nvm = model.nvm_service_ns * rho_nvm / (1.0 - rho_nvm)
            return max(
                core_runtime(core, q_dram, q_nvm) for core in range(len(stats))
            )

        final = solve_fixed_point(makespan, initial=1e4)
        rho_dram = min(
            dram_bytes / (self.config.dram_bus.sustainable_bandwidth_gbps * final),
            0.98,
        )
        rho_nvm = min(
            nvm_bytes / (self.config.nvm_bus.sustainable_bandwidth_gbps * final),
            0.98,
        )
        q_dram = model.dram_service_ns * rho_dram ** 3 / (1.0 - rho_dram)
        q_nvm = model.nvm_service_ns * rho_nvm / (1.0 - rho_nvm)
        return [core_runtime(core, q_dram, q_nvm) for core in range(len(stats))]

    # -- public API -----------------------------------------------------------

    def run(self, traces: Sequence[Trace],
            warmup_fraction: float = 0.25) -> MultiCoreResult:
        """Run per-core traces through the shared cache."""
        if not traces:
            raise SimulationError("need at least one core trace")
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError("warmup fraction must be in [0, 1)")
        stats = self._interleave(traces, warmup_fraction)
        instructions = [
            s.demand_reads * t.instructions_per_access
            for s, t in zip(stats, traces)
        ]
        if any(i <= 0 for i in instructions):
            raise SimulationError("a core retired no post-warmup reads")
        runtimes = self._solve_timing(stats, instructions)
        return MultiCoreResult(
            per_core_stats=stats,
            per_core_runtime_ns=runtimes,
            per_core_instructions=instructions,
        )
