"""Functional-simulator throughput benchmark (``python -m repro bench``).

Measures accesses simulated per wall-clock second for every benchmark
design variant — the hot-loop metric the fast path (scalar tag store,
precomputed address streams, batched :meth:`AccessPath.run_stream`)
optimizes. The 16 variants cover every design kind plus the
higher-associativity ACCORD and SWS configurations, so a regression in
any specialized code path (static candidates, way-predicted lookup, the
CA fallback loop) shows up in its own row.

The JSON report (``BENCH_hotloop.json``) is self-describing::

    {
      "schema": 1,
      "workload": "soplex", "num_accesses": 40000, "seed": 7,
      "scale": 0.0078125, "warmup": 0.3, "repeats": 3,
      "designs": [
        {"design": "direct-1way", "kind": "direct", "ways": 1,
         "accesses_per_sec": ..., "elapsed_sec": ..., "hit_rate": ...},
        ...
      ],
      "aggregate_accesses_per_sec": ...
    }

Per-design ``accesses_per_sec`` takes the best of ``repeats`` timed
runs (minimum wall time — the standard way to suppress scheduler
noise); the aggregate is total accesses over total best-run time.
Wall-clock numbers are machine-relative: compare a report only against
a baseline measured on comparable hardware (CI measures both sides on
the same runner class).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.accord import AccordDesign
from repro.core.protocols import cache_is_shardable
from repro.errors import ReproError
from repro.params.system import scaled_system
from repro.sim.engines import resolve_engine
from repro.sim.runner import TraceFactory
from repro.sim.shard import (
    effective_shard_count,
    run_sharded,
    warn_serial_fallback,
)
from repro.sim.system import Simulator, build_dram_cache

BENCH_SCHEMA_VERSION = 1

DEFAULT_WORKLOAD = "soplex"
DEFAULT_ACCESSES = 150_000
QUICK_ACCESSES = 40_000
DEFAULT_SEED = 7
DEFAULT_SCALE = 1.0 / 128.0
DEFAULT_WARMUP = 0.3
DEFAULT_REPEATS = 3

#: The benchmark's 16 design variants: every kind at its canonical
#: associativity, plus the 4-way ACCORD and 4-hash SWS configurations
#: the paper evaluates. Shared with the fast-path equivalence tests so
#: "benchmarked" and "proven bit-identical" stay the same set.
BENCH_DESIGNS: Tuple[AccordDesign, ...] = (
    AccordDesign(kind="direct", ways=1),
    AccordDesign(kind="parallel", ways=2),
    AccordDesign(kind="serial", ways=2),
    AccordDesign(kind="unbiased", ways=2),
    AccordDesign(kind="pws", ways=2),
    AccordDesign(kind="gws", ways=2),
    AccordDesign(kind="accord", ways=2),
    AccordDesign(kind="accord", ways=4),
    AccordDesign(kind="sws", ways=8, hashes=2),
    AccordDesign(kind="sws", ways=8, hashes=4),
    AccordDesign(kind="dueling", ways=2),
    AccordDesign(kind="mru", ways=2),
    AccordDesign(kind="partial_tag", ways=2),
    AccordDesign(kind="perfect", ways=2),
    AccordDesign(kind="ideal", ways=2),
    AccordDesign(kind="ca", ways=1),
)


def run_bench(
    workload: str = DEFAULT_WORKLOAD,
    num_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    warmup: float = DEFAULT_WARMUP,
    repeats: int = DEFAULT_REPEATS,
    designs: Sequence[AccordDesign] = BENCH_DESIGNS,
    shards: int = 1,
    engine: str = "auto",
) -> Dict[str, Any]:
    """Time every design on one trace; returns the JSON-ready report.

    With ``shards > 1``, each shardable design's run is split into
    set-range shards executed by a worker pool and merged
    (:func:`repro.sim.shard.run_sharded`) — hit rates are bit-identical
    to serial by construction, which the ``--check-hit-rates`` gate
    asserts against a serial report. Serial-only designs (GWS, ACCORD,
    SWS, dueling, CA) keep their exact serial path and record
    ``"shards": 1``. The shared trace is sharded once up front
    (memoized per geometry), so shard planning is excluded from the
    timed region the same way ``split_columns`` precomputation is.

    ``engine`` requests a drive engine (:mod:`repro.sim.engines`);
    designs the requested engine cannot drive exactly fall back down
    the chain with a one-time warning, and each row records the engine
    that actually ran. Engine resolution happens on a probe cache
    outside the timed region.
    """
    if repeats < 1:
        raise ReproError("bench needs at least one repeat")
    factory = TraceFactory(scaled_system(ways=1, scale=scale), num_accesses, seed)
    trace = factory.trace_for(workload)
    rows: List[Dict[str, Any]] = []
    total_accesses = 0
    total_time = 0.0
    engine_totals: Dict[str, List[float]] = {}
    for design in designs:
        config = scaled_system(ways=design.ways, scale=scale)
        probe = build_dram_cache(design, config, seed=seed)
        # Resolve the engine once per design on the probe cache so
        # fallback warnings and plan eligibility checks stay outside
        # the timed region.
        engine_name = resolve_engine(
            probe, requested=engine, design=design
        ).name
        effective = 1
        if shards > 1:
            if cache_is_shardable(probe):
                effective = effective_shard_count(
                    shards, probe.geometry.num_sets
                )
                # Warm the per-geometry shard memo (and split cache)
                # outside the timed region, mirroring split_columns.
                trace.shard(probe.geometry, effective)
            else:
                warn_serial_fallback(design, probe)
        best = None
        hit_rate = 0.0
        for _ in range(repeats):
            if effective > 1:
                start = time.perf_counter()
                result = run_sharded(
                    config, design, trace,
                    warmup=warmup, shards=effective, seed=seed,
                    engine=engine_name,
                )
                elapsed = time.perf_counter() - start
            else:
                simulator = Simulator(config, design, seed=seed)
                start = time.perf_counter()
                result = simulator.run(
                    trace, warmup_fraction=warmup, engine=engine_name
                )
                elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
                hit_rate = result.hit_rate
        rows.append(
            {
                "design": design.display_name,
                "kind": design.kind,
                "ways": design.ways,
                "shards": effective,
                "engine": engine_name,
                "accesses_per_sec": len(trace) / best,
                "elapsed_sec": best,
                "hit_rate": hit_rate,
            }
        )
        total_accesses += len(trace)
        total_time += best
        bucket = engine_totals.setdefault(engine_name, [0, 0.0])
        bucket[0] += len(trace)
        bucket[1] += best
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "workload": workload,
        "num_accesses": num_accesses,
        "seed": seed,
        "scale": scale,
        "warmup": warmup,
        "repeats": repeats,
        "shards": shards,
        "engine": engine,
        "designs": rows,
        "aggregate_accesses_per_sec": total_accesses / total_time,
        # Sub-aggregates keyed by the engine that actually ran, so a
        # regression on one path cannot hide behind gains on another
        # in the single mixed aggregate (compare_to_baseline gates
        # each sub-aggregate when both reports carry them).
        "per_engine_accesses_per_sec": {
            name: accesses / elapsed
            for name, (accesses, elapsed) in sorted(engine_totals.items())
        },
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable table for one :func:`run_bench` report."""
    lines = [
        f"Hot-loop throughput: {report['workload']}, "
        f"{report['num_accesses']} accesses, "
        f"best of {report['repeats']} (seed {report['seed']})",
        "",
        f"  {'design':<20} {'engine':>7} {'acc/s':>12} {'hit rate':>9}",
    ]
    for row in report["designs"]:
        lines.append(
            f"  {row['design']:<20} {row.get('engine', '-'):>7} "
            f"{row['accesses_per_sec']:>12,.0f} "
            f"{row['hit_rate']:>9.3f}"
        )
    lines.append("")
    for name, agg in report.get("per_engine_accesses_per_sec", {}).items():
        lines.append(f"  {name:>9}: {agg:,.0f} accesses/sec")
    lines.append(
        f"  aggregate: {report['aggregate_accesses_per_sec']:,.0f} accesses/sec"
    )
    return "\n".join(lines)


def load_report(path: str) -> Dict[str, Any]:
    """Read a report written by ``python -m repro bench --json``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ReproError(f"cannot read bench report {path}: {exc}") from exc
    if not isinstance(report, dict) or (
        "aggregate_accesses_per_sec" not in report
        and report.get("mode") != "sweep"
    ):
        raise ReproError(f"{path} is not a bench report")
    return report


def save_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare_hit_rates(
    report: Dict[str, Any], baseline: Dict[str, Any]
) -> Optional[str]:
    """None if per-design hit rates match ``baseline`` exactly, else why.

    The determinism gate for sharded execution: a ``--shards N`` report
    must reproduce the serial report's hit rate *byte-identically* per
    design (exact float equality — both sides round-trip through JSON's
    shortest-repr float encoding, so equality survives serialization).
    """
    ours = {row["design"]: row for row in report.get("designs", [])}
    theirs = {row["design"]: row for row in baseline.get("designs", [])}
    if set(ours) != set(theirs):
        missing = sorted(set(ours) ^ set(theirs))
        return f"design sets differ (mismatched: {', '.join(missing)})"
    for name in sorted(ours):
        mine = float(ours[name]["hit_rate"])
        reference = float(theirs[name]["hit_rate"])
        if mine != reference:
            return (
                f"{name}: hit rate {mine!r} != baseline {reference!r} "
                f"(sharded execution must be bit-identical to serial)"
            )
    return None


def run_shard_scaling(
    workload: str = DEFAULT_WORKLOAD,
    num_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    warmup: float = DEFAULT_WARMUP,
    repeats: int = DEFAULT_REPEATS,
    shards: int = 4,
    designs: Sequence[AccordDesign] = BENCH_DESIGNS,
) -> Dict[str, Any]:
    """Measure intra-run shard scaling: serial vs ``--shards N``.

    Runs the full bench twice — shards=1 and shards=N — and reports the
    aggregate speedup plus the machine's core count (wall-clock scaling
    is meaningless without it; a 1-core runner can only show overhead).
    Also records whether the two reports' hit rates were identical,
    which must always be true.
    """
    if shards < 2:
        raise ReproError("shard scaling needs shards >= 2")
    serial = run_bench(
        workload=workload, num_accesses=num_accesses, seed=seed, scale=scale,
        warmup=warmup, repeats=repeats, designs=designs, shards=1,
    )
    sharded = run_bench(
        workload=workload, num_accesses=num_accesses, seed=seed, scale=scale,
        warmup=warmup, repeats=repeats, designs=designs, shards=shards,
    )
    mismatch = compare_hit_rates(sharded, serial)
    if mismatch is not None:
        raise ReproError(f"sharded run diverged from serial: {mismatch}")
    sharded_rows = {
        row["design"]: row for row in sharded["designs"] if row["shards"] > 1
    }
    serial_sharded_time = sum(
        row["elapsed_sec"] for row in serial["designs"]
        if row["design"] in sharded_rows
    )
    sharded_time = sum(row["elapsed_sec"] for row in sharded_rows.values())
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "cores": os.cpu_count() or 1,
        "shards": shards,
        "serial": serial,
        "sharded": sharded,
        "hit_rates_identical": True,
        # Aggregate over ALL designs (serial-only ones dilute this) and
        # over just the designs that actually sharded.
        "aggregate_speedup": (
            sharded["aggregate_accesses_per_sec"]
            / serial["aggregate_accesses_per_sec"]
        ),
        "shardable_speedup": (
            serial_sharded_time / sharded_time if sharded_time else 1.0
        ),
    }


def format_scaling_report(report: Dict[str, Any]) -> str:
    """Human-readable summary for one :func:`run_shard_scaling` report."""
    serial = report["serial"]
    sharded = report["sharded"]
    sharded_rows = {row["design"]: row for row in sharded["designs"]}
    lines = [
        f"Shard scaling: {serial['workload']}, "
        f"{serial['num_accesses']} accesses, "
        f"shards=1 vs shards={report['shards']} "
        f"on {report['cores']} core(s)",
        "",
        f"  {'design':<20} {'serial acc/s':>13} {'sharded acc/s':>14} "
        f"{'shards':>7} {'speedup':>8}",
    ]
    for row in serial["designs"]:
        other = sharded_rows[row["design"]]
        speedup = other["accesses_per_sec"] / row["accesses_per_sec"]
        lines.append(
            f"  {row['design']:<20} {row['accesses_per_sec']:>13,.0f} "
            f"{other['accesses_per_sec']:>14,.0f} {other['shards']:>7d} "
            f"{speedup:>7.2f}x"
        )
    lines.append("")
    lines.append(
        f"  aggregate speedup: {report['aggregate_speedup']:.2f}x "
        f"(shardable designs only: {report['shardable_speedup']:.2f}x); "
        f"hit rates identical: {report['hit_rates_identical']}"
    )
    return "\n".join(lines)


#: Config count of the sweep benchmark's same-trace design matrix.
SWEEP_CONFIGS = 16


def sweep_designs(configs: int = SWEEP_CONFIGS) -> Tuple[AccordDesign, ...]:
    """A PIP grid over 2-way PWS: the sweep benchmark's design matrix.

    Unlike :data:`BENCH_DESIGNS` (deliberately heterogeneous — every
    code path gets its own row), a *sweep* workload is homogeneous: the
    same design family across a parameter grid. All grid points share
    one fused-kernel signature, so the batched path evaluates the whole
    matrix in a single multi-config pass — the case the batching layer
    optimizes, and the one this benchmark sizes.
    """
    if configs < 2:
        raise ReproError("sweep bench needs at least 2 configs")
    designs = []
    for i in range(configs):
        pip = round(0.2 + 0.75 * i / (configs - 1), 6)
        designs.append(
            AccordDesign(
                kind="pws", ways=2, pip=pip, label=f"pws-pip{pip:g}"
            )
        )
    return tuple(designs)


def run_sweep_bench(
    workload: str = DEFAULT_WORKLOAD,
    num_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    warmup: float = DEFAULT_WARMUP,
    repeats: int = DEFAULT_REPEATS,
    configs: int = SWEEP_CONFIGS,
) -> Dict[str, Any]:
    """Time a same-trace config matrix: per-job vs batched execution.

    Runs the :func:`sweep_designs` grid through an in-process
    :class:`~repro.exec.executor.Executor` twice — ``batch=False``
    (one job at a time) and ``batch=True`` (packed batches + the fused
    multi-config kernel) — and reports jobs per wall-clock second for
    both, their ratio, and whether every job's result was bit-identical
    across the two paths (it must be; a divergence raises). Store and
    journal are disabled so the timed region is pure execution. Both
    paths share the process-wide trace/plan memos; the first repeat
    warms them and the best-of-``repeats`` timing discards the
    difference, so the ratio isolates scheduling + kernel fusion.
    """
    from repro.exec.executor import Executor
    from repro.exec.jobs import JobKey

    if repeats < 1:
        raise ReproError("bench needs at least one repeat")
    designs = sweep_designs(configs)
    keys = [
        JobKey(
            design=design, workload=workload, num_accesses=num_accesses,
            warmup=warmup, seed=seed, scale=scale, epoch=None,
        )
        for design in designs
    ]

    def timed(batch: bool):
        executor = Executor(jobs=1, batch=batch)
        best = None
        results = None
        for _ in range(repeats):
            start = time.perf_counter()
            run = executor.run(keys)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
                results = run
        return best, results

    per_job_sec, per_job_results = timed(batch=False)
    batched_sec, batched_results = timed(batch=True)
    for key in keys:
        if (
            batched_results[key].to_dict()
            != per_job_results[key].to_dict()
        ):
            raise ReproError(
                f"batched sweep diverged from per-job execution on "
                f"{key.display} (results must be bit-identical)"
            )
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "mode": "sweep",
        "workload": workload,
        "num_accesses": num_accesses,
        "seed": seed,
        "scale": scale,
        "warmup": warmup,
        "repeats": repeats,
        "configs": len(keys),
        "designs": [design.display_name for design in designs],
        "per_job_sec": per_job_sec,
        "batched_sec": batched_sec,
        "per_job_jobs_per_sec": len(keys) / per_job_sec,
        "batched_jobs_per_sec": len(keys) / batched_sec,
        "speedup": per_job_sec / batched_sec,
        "results_identical": True,
    }


def format_sweep_report(report: Dict[str, Any]) -> str:
    """Human-readable summary for one :func:`run_sweep_bench` report."""
    return "\n".join(
        [
            f"Batched sweep: {report['workload']}, "
            f"{report['configs']} configs x {report['num_accesses']} "
            f"accesses, best of {report['repeats']} "
            f"(seed {report['seed']})",
            "",
            f"  per-job:  {report['per_job_jobs_per_sec']:>8.2f} jobs/sec "
            f"({report['per_job_sec']:.3f}s)",
            f"  batched:  {report['batched_jobs_per_sec']:>8.2f} jobs/sec "
            f"({report['batched_sec']:.3f}s)",
            "",
            f"  speedup: {report['speedup']:.2f}x; results identical: "
            f"{report['results_identical']}",
        ]
    )


def compare_sweep_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float,
) -> Optional[str]:
    """None if the sweep ``report`` holds up against ``baseline``.

    The gate is on the *speedup ratio*, not on absolute jobs/s: the
    ratio is machine-relative on both sides of the division, so it
    transfers across runner classes the way wall-clock numbers do not.
    ``max_regression`` is a fraction of the baseline ratio (0.30 =
    fail when the batched-over-per-job speedup drops more than 30%).
    A report whose batched path fell behind per-job execution
    (speedup < 1) fails regardless of the baseline.
    """
    current = float(report["speedup"])
    if current < 1.0:
        return (
            f"batched sweep is slower than per-job execution "
            f"({current:.2f}x); batching must never lose"
        )
    reference = float(baseline["speedup"])
    floor = reference * (1.0 - max_regression)
    if current < floor:
        return (
            f"batched sweep speedup regressed: {current:.2f}x vs baseline "
            f"{reference:.2f}x (floor {floor:.2f}x at "
            f"{max_regression:.0%} tolerance)"
        )
    return None


def compare_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float,
) -> Optional[str]:
    """None if ``report`` is within tolerance of ``baseline``, else why.

    The gate is on aggregates: per-design numbers on small traces are
    too noisy to gate individually. ``max_regression`` is a fraction
    (0.30 = fail when aggregate throughput drops more than 30%).

    When both reports carry ``per_engine_accesses_per_sec``, every
    engine present in both is gated at the same tolerance — one mixed
    aggregate would let a large vector-path gain mask a stream- or
    replay-path collapse. Engines present on one side only (coverage
    moved between engines) are judged by the total alone.
    """
    current = float(report["aggregate_accesses_per_sec"])
    reference = float(baseline["aggregate_accesses_per_sec"])
    floor = reference * (1.0 - max_regression)
    if current < floor:
        return (
            f"aggregate throughput regressed: {current:,.0f} acc/s vs "
            f"baseline {reference:,.0f} acc/s "
            f"(floor {floor:,.0f} at {max_regression:.0%} tolerance)"
        )
    ours = report.get("per_engine_accesses_per_sec") or {}
    theirs = baseline.get("per_engine_accesses_per_sec") or {}
    for name in sorted(set(ours) & set(theirs)):
        current = float(ours[name])
        reference = float(theirs[name])
        floor = reference * (1.0 - max_regression)
        if current < floor:
            return (
                f"{name}-engine throughput regressed: {current:,.0f} acc/s "
                f"vs baseline {reference:,.0f} acc/s "
                f"(floor {floor:,.0f} at {max_regression:.0%} tolerance)"
            )
    return None
