"""Functional-simulator throughput benchmark (``python -m repro bench``).

Measures accesses simulated per wall-clock second for every benchmark
design variant — the hot-loop metric the fast path (scalar tag store,
precomputed address streams, batched :meth:`AccessPath.run_stream`)
optimizes. The 16 variants cover every design kind plus the
higher-associativity ACCORD and SWS configurations, so a regression in
any specialized code path (static candidates, way-predicted lookup, the
CA fallback loop) shows up in its own row.

The JSON report (``BENCH_hotloop.json``) is self-describing::

    {
      "schema": 1,
      "workload": "soplex", "num_accesses": 40000, "seed": 7,
      "scale": 0.0078125, "warmup": 0.3, "repeats": 3,
      "designs": [
        {"design": "direct-1way", "kind": "direct", "ways": 1,
         "accesses_per_sec": ..., "elapsed_sec": ..., "hit_rate": ...},
        ...
      ],
      "aggregate_accesses_per_sec": ...
    }

Per-design ``accesses_per_sec`` takes the best of ``repeats`` timed
runs (minimum wall time — the standard way to suppress scheduler
noise); the aggregate is total accesses over total best-run time.
Wall-clock numbers are machine-relative: compare a report only against
a baseline measured on comparable hardware (CI measures both sides on
the same runner class).
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.accord import AccordDesign
from repro.errors import ReproError
from repro.params.system import scaled_system
from repro.sim.runner import TraceFactory
from repro.sim.system import Simulator

BENCH_SCHEMA_VERSION = 1

DEFAULT_WORKLOAD = "soplex"
DEFAULT_ACCESSES = 150_000
QUICK_ACCESSES = 40_000
DEFAULT_SEED = 7
DEFAULT_SCALE = 1.0 / 128.0
DEFAULT_WARMUP = 0.3
DEFAULT_REPEATS = 3

#: The benchmark's 16 design variants: every kind at its canonical
#: associativity, plus the 4-way ACCORD and 4-hash SWS configurations
#: the paper evaluates. Shared with the fast-path equivalence tests so
#: "benchmarked" and "proven bit-identical" stay the same set.
BENCH_DESIGNS: Tuple[AccordDesign, ...] = (
    AccordDesign(kind="direct", ways=1),
    AccordDesign(kind="parallel", ways=2),
    AccordDesign(kind="serial", ways=2),
    AccordDesign(kind="unbiased", ways=2),
    AccordDesign(kind="pws", ways=2),
    AccordDesign(kind="gws", ways=2),
    AccordDesign(kind="accord", ways=2),
    AccordDesign(kind="accord", ways=4),
    AccordDesign(kind="sws", ways=8, hashes=2),
    AccordDesign(kind="sws", ways=8, hashes=4),
    AccordDesign(kind="dueling", ways=2),
    AccordDesign(kind="mru", ways=2),
    AccordDesign(kind="partial_tag", ways=2),
    AccordDesign(kind="perfect", ways=2),
    AccordDesign(kind="ideal", ways=2),
    AccordDesign(kind="ca", ways=1),
)


def run_bench(
    workload: str = DEFAULT_WORKLOAD,
    num_accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    warmup: float = DEFAULT_WARMUP,
    repeats: int = DEFAULT_REPEATS,
    designs: Sequence[AccordDesign] = BENCH_DESIGNS,
) -> Dict[str, Any]:
    """Time every design on one trace; returns the JSON-ready report."""
    if repeats < 1:
        raise ReproError("bench needs at least one repeat")
    factory = TraceFactory(scaled_system(ways=1, scale=scale), num_accesses, seed)
    trace = factory.trace_for(workload)
    rows: List[Dict[str, Any]] = []
    total_accesses = 0
    total_time = 0.0
    for design in designs:
        config = scaled_system(ways=design.ways, scale=scale)
        best = None
        hit_rate = 0.0
        for _ in range(repeats):
            simulator = Simulator(config, design, seed=seed)
            start = time.perf_counter()
            result = simulator.run(trace, warmup_fraction=warmup)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
                hit_rate = result.hit_rate
        rows.append(
            {
                "design": design.display_name,
                "kind": design.kind,
                "ways": design.ways,
                "accesses_per_sec": len(trace) / best,
                "elapsed_sec": best,
                "hit_rate": hit_rate,
            }
        )
        total_accesses += len(trace)
        total_time += best
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "workload": workload,
        "num_accesses": num_accesses,
        "seed": seed,
        "scale": scale,
        "warmup": warmup,
        "repeats": repeats,
        "designs": rows,
        "aggregate_accesses_per_sec": total_accesses / total_time,
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable table for one :func:`run_bench` report."""
    lines = [
        f"Hot-loop throughput: {report['workload']}, "
        f"{report['num_accesses']} accesses, "
        f"best of {report['repeats']} (seed {report['seed']})",
        "",
        f"  {'design':<20} {'acc/s':>12} {'hit rate':>9}",
    ]
    for row in report["designs"]:
        lines.append(
            f"  {row['design']:<20} {row['accesses_per_sec']:>12,.0f} "
            f"{row['hit_rate']:>9.3f}"
        )
    lines.append("")
    lines.append(
        f"  aggregate: {report['aggregate_accesses_per_sec']:,.0f} accesses/sec"
    )
    return "\n".join(lines)


def load_report(path: str) -> Dict[str, Any]:
    """Read a report written by ``python -m repro bench --json``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ReproError(f"cannot read bench report {path}: {exc}") from exc
    if not isinstance(report, dict) or "aggregate_accesses_per_sec" not in report:
        raise ReproError(f"{path} is not a bench report")
    return report


def save_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float,
) -> Optional[str]:
    """None if ``report`` is within tolerance of ``baseline``, else why.

    The gate is on the aggregate: per-design numbers on small traces are
    too noisy to gate individually. ``max_regression`` is a fraction
    (0.30 = fail when aggregate throughput drops more than 30%).
    """
    current = float(report["aggregate_accesses_per_sec"])
    reference = float(baseline["aggregate_accesses_per_sec"])
    floor = reference * (1.0 - max_regression)
    if current < floor:
        return (
            f"aggregate throughput regressed: {current:,.0f} acc/s vs "
            f"baseline {reference:,.0f} acc/s "
            f"(floor {floor:,.0f} at {max_regression:.0%} tolerance)"
        )
    return None
