"""Phase-resolved metrics: per-epoch time series from the event stream.

The paper's argument is about *per-access dynamics* — install-way
choices made early in a run determine way-prediction accuracy later —
yet aggregate :class:`~repro.sim.stats.CacheStats` counters collapse the
whole run to one point. :class:`PhaseMetrics` is an access-path observer
(:mod:`repro.cache.events`) that slices the measurement window into
epochs of a configurable number of demand reads and records hit-rate,
prediction-accuracy and NVM-traffic samples per epoch, in the style of
the per-interval traces related DRAM-cache work (Banshee, "To Update or
Not To Update?") evaluates policies on.

The recorded series (:class:`PhaseSeries`) is a plain value object that
round-trips through ``to_dict``/``from_dict`` so the result store can
persist it alongside the run's counters, and renders to tidy CSV via
:mod:`repro.analysis.export`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Tuple

from repro.errors import ConfigError, SimulationError

#: Default epoch length (demand reads per sample) for ``--epoch-metrics``.
DEFAULT_EPOCH = 10_000


@dataclass(frozen=True)
class PhaseSample:
    """Counters accumulated over one epoch of demand reads."""

    index: int  # epoch number, 0-based
    start_access: int  # demand reads completed before this epoch
    accesses: int  # demand reads in this epoch
    hits: int
    predicted_hits: int
    correct_predictions: int
    nvm_reads: int
    nvm_writes: int
    writebacks: int

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of the epoch's hits whose first probe found the line."""
        return (
            self.correct_predictions / self.predicted_hits
            if self.predicted_hits
            else 0.0
        )

    @property
    def nvm_traffic(self) -> int:
        """Total 64B NVM line transfers (reads + writes) in the epoch."""
        return self.nvm_reads + self.nvm_writes


@dataclass(frozen=True)
class PhaseSeries:
    """An immutable per-epoch time series recorded from one run."""

    epoch: int
    samples: Tuple[PhaseSample, ...]

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def series(self, metric: str) -> List[float]:
        """One metric as a list, epoch order (any PhaseSample attribute)."""
        names = {f.name for f in fields(PhaseSample)}
        if metric not in names and not isinstance(
            getattr(PhaseSample, metric, None), property
        ):
            raise SimulationError(f"unknown phase metric {metric!r}")
        return [getattr(sample, metric) for sample in self.samples]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation; inverse of :meth:`from_dict`."""
        return {
            "epoch": self.epoch,
            "samples": [asdict(sample) for sample in self.samples],
        }

    @classmethod
    def merge(cls, series: "List[PhaseSeries]") -> "PhaseSeries":
        """Combine per-epoch series measured over disjoint access subsets.

        The use case is set-sharded runs: each shard records a series
        over its own subset of the measurement window, with samples
        labelled by *global* epoch index; the merged series is the
        elementwise sum per epoch index, with ``start_access`` rebuilt
        cumulatively — exactly the series a serial run over the union
        would have recorded.

        The operation is associative and commutative (integer sums per
        aligned epoch), and an empty series (or empty list entry) is an
        identity. All inputs must agree on the epoch length.
        """
        parts = [s for s in series if s is not None]
        if not parts:
            raise SimulationError("PhaseSeries.merge needs at least one series")
        epochs = {s.epoch for s in parts}
        if len(epochs) > 1:
            raise SimulationError(
                f"cannot merge phase series with different epoch lengths: "
                f"{sorted(epochs)}"
            )
        totals: Dict[int, List[int]] = {}
        for part in parts:
            for sample in part.samples:
                bucket = totals.setdefault(sample.index, [0] * 7)
                bucket[0] += sample.accesses
                bucket[1] += sample.hits
                bucket[2] += sample.predicted_hits
                bucket[3] += sample.correct_predictions
                bucket[4] += sample.nvm_reads
                bucket[5] += sample.nvm_writes
                bucket[6] += sample.writebacks
        merged = []
        start_access = 0
        for index in sorted(totals):
            bucket = totals[index]
            merged.append(
                PhaseSample(
                    index=index,
                    start_access=start_access,
                    accesses=bucket[0],
                    hits=bucket[1],
                    predicted_hits=bucket[2],
                    correct_predictions=bucket[3],
                    nvm_reads=bucket[4],
                    nvm_writes=bucket[5],
                    writebacks=bucket[6],
                )
            )
            start_access += bucket[0]
        return cls(epoch=parts[0].epoch, samples=tuple(merged))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PhaseSeries":
        """Rebuild a series from :meth:`to_dict` output."""
        try:
            known = {f.name for f in fields(PhaseSample)}
            samples = []
            for raw in data["samples"]:
                unknown = set(raw) - known
                if unknown:
                    raise ValueError(
                        f"unknown PhaseSample fields: {sorted(unknown)}"
                    )
                samples.append(PhaseSample(**{k: int(v) for k, v in raw.items()}))
            return cls(epoch=int(data["epoch"]), samples=tuple(samples))
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed PhaseSeries record: {exc}") from exc


class PhaseMetrics:
    """Access-path observer accumulating :class:`PhaseSample` epochs.

    Epoch boundaries are counted in *demand reads*: a new epoch opens
    when the previous one has seen ``epoch`` reads. Writebacks, fills
    and evictions between two reads are attributed to the epoch of the
    enclosing access window. Call :meth:`finalize` (or let the simulator
    do it) to flush the trailing partial epoch; :meth:`result` returns
    the immutable :class:`PhaseSeries`.

    ``sink`` enables *incremental* streaming: it is called with each
    :class:`PhaseSample` the moment its epoch closes (including the
    trailing partial epoch at :meth:`finalize`), so a live consumer —
    the sweep service's NDJSON stream, a progress UI — sees per-epoch
    metrics while the run is still in flight instead of only at the
    end. The samples passed to the sink are exactly those of the final
    :class:`PhaseSeries`, in order.
    """

    def __init__(self, epoch: int = DEFAULT_EPOCH, sink=None):
        if epoch <= 0:
            raise ConfigError(f"epoch must be positive, got {epoch}")
        self.epoch = epoch
        self.sink = sink
        self.samples: List[PhaseSample] = []
        self._start_access = 0
        self._reads = 0
        self._hits = 0
        self._predicted_hits = 0
        self._correct = 0
        self._nvm_reads = 0
        self._nvm_writes = 0
        self._writebacks = 0
        self._finalized = False

    # -- observer interface -------------------------------------------------

    def on_lookup(self, event) -> None:
        if self._reads >= self.epoch:
            self._flush()
        self._reads += 1
        if event.hit:
            self._hits += 1
            if event.predicted_way is not None:
                self._predicted_hits += 1
                if event.prediction_correct:
                    self._correct += 1

    def on_fill(self, event) -> None:
        self._nvm_reads += 1

    def on_evict(self, event) -> None:
        if event.dirty:
            self._nvm_writes += 1

    def on_writeback(self, event) -> None:
        self._writebacks += 1
        if not event.absorbed:
            self._nvm_writes += 1

    # -- lifecycle ----------------------------------------------------------

    def _active(self) -> bool:
        return bool(
            self._reads or self._hits or self._nvm_reads
            or self._nvm_writes or self._writebacks
        )

    def _flush(self) -> None:
        sample = PhaseSample(
            index=len(self.samples),
            start_access=self._start_access,
            accesses=self._reads,
            hits=self._hits,
            predicted_hits=self._predicted_hits,
            correct_predictions=self._correct,
            nvm_reads=self._nvm_reads,
            nvm_writes=self._nvm_writes,
            writebacks=self._writebacks,
        )
        self.samples.append(sample)
        if self.sink is not None:
            self.sink(sample)
        self._start_access += self._reads
        self._reads = 0
        self._hits = 0
        self._predicted_hits = 0
        self._correct = 0
        self._nvm_reads = 0
        self._nvm_writes = 0
        self._writebacks = 0

    def finalize(self) -> None:
        """Flush the trailing partial epoch (idempotent)."""
        if self._finalized:
            return
        if self._active():
            self._flush()
        self._finalized = True

    def result(self) -> PhaseSeries:
        """The recorded series; finalizes first."""
        self.finalize()
        return PhaseSeries(epoch=self.epoch, samples=tuple(self.samples))


__all__ = ["DEFAULT_EPOCH", "PhaseMetrics", "PhaseSample", "PhaseSeries"]
