"""Experiment runner: builds traces once, runs many designs over them.

The same trace object (same seed) is reused for every design so that
hit-rate and speedup comparisons between designs are paired, exactly as
a real simulator replaying one trace would be.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence

from repro.core.accord import AccordDesign
from repro.errors import WorkloadError
from repro.params.system import SystemConfig, scaled_system
from repro.sim.system import RunResult, Simulator
from repro.sim.trace import Trace
from repro.workloads.mixes import build_mix_trace
from repro.workloads.spec import get_workload, is_mix
from repro.workloads.trace_cache import TraceKey, shared_trace_cache

DEFAULT_ACCESSES = 150_000
DEFAULT_WARMUP = 0.3


class TraceFactory:
    """Builds and memoizes workload traces for one system scale.

    ``footprint_scale`` defaults to the config's geometry scale so that
    footprint/capacity ratios match the paper; cache-size sensitivity
    sweeps (Table VIII) pin it to the default-system scale while the
    cache capacity varies.

    Besides the in-process memo, built traces are shared across
    processes and sessions through the content-addressed on-disk cache
    (:mod:`repro.workloads.trace_cache`): a sweep's worker processes
    generate each trace once, ever, instead of once per worker. Disable
    with ``REPRO_TRACE_CACHE=0``.
    """

    def __init__(
        self,
        config: SystemConfig,
        num_accesses: int = DEFAULT_ACCESSES,
        seed: int = 7,
        footprint_scale: Optional[float] = None,
    ):
        self.config = config
        self.num_accesses = num_accesses
        self.seed = seed
        self.footprint_scale = (
            footprint_scale if footprint_scale is not None else config.scale
        )
        self._cache: Dict[str, Trace] = {}

    def trace_for(self, workload: str) -> Trace:
        trace = self._cache.get(workload)
        if trace is None:
            trace = self._build(workload)
            self._cache[workload] = trace
        return trace

    def _build(self, workload: str) -> Trace:
        capacity = self.config.dram_cache.capacity_bytes
        scale = self.footprint_scale
        disk = shared_trace_cache()
        key = None
        if disk is not None:
            key = TraceKey(
                workload=workload,
                capacity_bytes=capacity,
                num_accesses=self.num_accesses,
                seed=self.seed,
                footprint_scale=scale,
            )
            cached = disk.get(key)
            if cached is not None:
                return cached
        if is_mix(workload):
            trace = build_mix_trace(
                workload, capacity, self.num_accesses, seed=self.seed, scale=scale
            )
        else:
            spec = get_workload(workload).scaled(scale)
            from repro.workloads.synthetic import SyntheticWorkload

            generator = SyntheticWorkload(spec, capacity, seed=self.seed)
            trace = generator.generate(self.num_accesses)
        if disk is not None:
            disk.put(key, trace)
        if key is not None:
            # Tag even freshly generated traces with their content
            # address: engine plan memos keyed by cache_token then
            # recognize the same trace across factory instances.
            trace.cache_token = key.digest()
        return trace


def run_design(
    design: AccordDesign,
    workload: str,
    config: Optional[SystemConfig] = None,
    traces: Optional[TraceFactory] = None,
    num_accesses: int = DEFAULT_ACCESSES,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 7,
    epoch: Optional[int] = None,
    engine: str = "auto",
    engine_strict: bool = False,
) -> RunResult:
    """Run one design on one workload; convenience entry point.

    ``epoch`` enables phase-resolved metrics: per-epoch hit-rate /
    prediction-accuracy / NVM-traffic samples on ``RunResult.phases``.
    ``engine`` selects the drive strategy (:mod:`repro.sim.engines`);
    results are engine-invariant.
    """
    config = config or scaled_system(ways=design.ways)
    traces = traces or TraceFactory(config, num_accesses, seed)
    trace = traces.trace_for(workload)
    simulator = Simulator(config, design, seed=seed)
    return simulator.run(
        trace, warmup_fraction=warmup, epoch=epoch,
        engine=engine, engine_strict=engine_strict,
    )


def run_suite(
    design: AccordDesign,
    workloads: Sequence[str],
    config: Optional[SystemConfig] = None,
    traces: Optional[TraceFactory] = None,
    num_accesses: int = DEFAULT_ACCESSES,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 7,
    jobs: int = 1,
    store=None,
    epoch: Optional[int] = None,
    retries: int = 1,
    timeout: Optional[float] = None,
    shards: int = 1,
    engine: str = "auto",
) -> Dict[str, RunResult]:
    """Run one design across a workload suite.

    With ``jobs > 1``, ``shards > 1`` or a
    :class:`repro.exec.ResultStore`, execution routes through the
    parallel executor; that path requires the standard
    :func:`scaled_system` geometry (workers rebuild the config from
    ``(ways, scale)`` alone), so custom configs/trace factories must
    run serially and unmemoized. ``retries`` bounds per-job retry
    attempts on transient failures and dead workers; ``timeout`` is the
    per-job wall-clock watchdog in seconds (parallel path only).
    ``shards`` splits each individual run into set-range shards merged
    bit-identically (:mod:`repro.sim.shard`) — intra-run parallelism,
    orthogonal to the cross-job ``jobs``.
    """
    if not workloads:
        raise WorkloadError("workload suite is empty")
    config = config or scaled_system(ways=design.ways)
    traces = traces or TraceFactory(config, num_accesses, seed)
    if jobs != 1 or shards != 1 or store is not None:
        from repro.errors import ConfigError
        from repro.exec import Executor, JobKey

        if config != scaled_system(ways=design.ways, scale=config.scale):
            raise ConfigError(
                "parallel/memoized run_suite requires a scaled_system() config"
            )
        if traces.seed != seed or traces.num_accesses != num_accesses:
            raise ConfigError(
                "parallel/memoized run_suite requires the trace factory to "
                "match the num_accesses/seed arguments"
            )
        keys = [
            JobKey(
                design=design,
                workload=workload,
                num_accesses=num_accesses,
                warmup=warmup,
                seed=seed,
                scale=config.scale,
                footprint_scale=traces.footprint_scale,
                epoch=epoch,
                engine=engine,
            )
            for workload in workloads
        ]
        resolved = Executor(
            jobs=jobs, store=store, retries=retries, timeout=timeout,
            shards=shards,
        ).run(keys)
        return {key.workload: resolved[key] for key in keys}
    results: Dict[str, RunResult] = {}
    for workload in workloads:
        results[workload] = run_design(
            design, workload, config=config, traces=traces,
            num_accesses=num_accesses, warmup=warmup, seed=seed, epoch=epoch,
            engine=engine,
        )
    return results


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups)."""
    items = list(values)
    if not items:
        raise WorkloadError("geometric mean of an empty sequence")
    if any(v <= 0 for v in items):
        raise WorkloadError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def speedups_vs_baseline(
    results: Dict[str, RunResult], baseline: Dict[str, RunResult]
) -> Dict[str, float]:
    """Per-workload speedups of ``results`` relative to ``baseline``."""
    missing = set(results) - set(baseline)
    if missing:
        raise WorkloadError(f"baseline lacks workloads: {sorted(missing)}")
    return {
        name: result.speedup_over(baseline[name])
        for name, result in results.items()
    }


def mean_hit_rate(results: Dict[str, RunResult]) -> float:
    """Arithmetic-mean hit rate across workloads (paper Tables VI/VII)."""
    if not results:
        raise WorkloadError("no results")
    return sum(r.hit_rate for r in results.values()) / len(results)


def mean_prediction_accuracy(results: Dict[str, RunResult]) -> float:
    """Arithmetic-mean way-prediction accuracy across workloads."""
    if not results:
        raise WorkloadError("no results")
    return sum(r.prediction_accuracy for r in results.values()) / len(results)
