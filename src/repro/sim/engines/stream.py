"""The batched engine: drives :meth:`AccessPath.run_stream` per segment.

The hot-loop default for any cache with an access path: per-access
constant work is hoisted out of the loop and counters accumulate in
locals (see ``run_stream``). Phase-resolved serial runs attach
:class:`~repro.sim.phases.PhaseMetrics` over one ``[warm, n)`` drive
(the observer makes ``run_stream`` fall back to its exact per-access
path, as before this engine existed); shard runs bucket per segment.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.engines.base import Segment
from repro.sim.phases import PhaseMetrics, PhaseSeries
from repro.sim.stats import CacheStats


class StreamEngine:
    """Drive pre-split records through the access path's batch loop."""

    name = "stream"

    def supports(self, cache) -> bool:
        return getattr(cache, "path", None) is not None

    def drive(
        self,
        cache,
        stream,
        warm: int,
        segments: Sequence[Segment],
        epoch: Optional[int],
        *,
        global_epochs: bool = False,
        phase_sink=None,
    ) -> Optional[PhaseSeries]:
        path = cache.path
        run_stream = path.run_stream
        writes = stream.writes
        sets = stream.set_indices
        tags = stream.tags
        addrs = stream.addrs
        run_stream(writes, sets, tags, addrs, 0, warm)
        cache.stats = CacheStats()
        if epoch is None:
            for _, start, stop in segments:
                run_stream(writes, sets, tags, addrs, start, stop)
            return None
        if global_epochs:
            from repro.sim.shard import _EpochBuckets

            buckets = _EpochBuckets()
            cache.add_observer(buckets)
            try:
                for epoch_id, start, stop in segments:
                    buckets.set_epoch(epoch_id)
                    run_stream(writes, sets, tags, addrs, start, stop)
            finally:
                cache.remove_observer(buckets)
            return buckets.result(epoch)
        observer = PhaseMetrics(epoch, sink=phase_sink)
        cache.add_observer(observer)
        try:
            run_stream(writes, sets, tags, addrs, warm, len(addrs))
        finally:
            cache.remove_observer(observer)
        return observer.result()


__all__ = ["StreamEngine"]
