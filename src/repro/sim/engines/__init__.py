"""Pluggable drive engines and the capability-based resolver.

Four engines implement the :class:`~repro.sim.engines.base.Engine`
contract, ordered fastest-first:

* ``vector`` — whole-trace numpy kernel; deterministic set-local
  designs only (every policy declares ``vectorizable``, plus the
  structural checks in :mod:`repro.sim.engines.vector`).
* ``replay`` — vectorized precompute around a fused scalar replay of
  the sparse global-state events; the GWS/ACCORD/dueling stacks and
  the column-associative cache (``replay_vectorizable`` capability
  plus the structural checks in :mod:`repro.sim.engines.replay`).
* ``stream`` — the batched ``run_stream`` hot loop; any cache with an
  access path.
* ``loop`` — the per-address reference loop; every cache.

:func:`resolve_engine` replaces the old scattered ``hasattr`` probes:
``auto`` silently picks the fastest supported engine; an explicitly
requested engine that cannot drive the cache falls down the same chain
with a one-time warning (mirroring the shard driver's serial fallback),
or raises under ``strict``. All engines are bit-identical where they
overlap, so the choice never changes results — which is why
:class:`~repro.exec.jobs.JobKey` excludes the engine from its canonical
identity.
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

from repro.core.protocols import unreplayable_roles, unvectorizable_roles
from repro.errors import SimulationError
from repro.sim.engines.base import Engine, Segment, TraceStream, serial_segments
from repro.verify.breaker import is_tripped
from repro.sim.engines.loop import PerAccessEngine
from repro.sim.engines.replay import SparseReplayEngine
from repro.sim.engines.stream import StreamEngine
from repro.sim.engines.vector import VectorEngine

#: Accepted ``--engine`` values, resolver preference order after "auto".
ENGINE_NAMES: Tuple[str, ...] = ("auto", "vector", "replay", "stream", "loop")

ENGINES = {
    "vector": VectorEngine(),
    "replay": SparseReplayEngine(),
    "stream": StreamEngine(),
    "loop": PerAccessEngine(),
}

#: Fallback chain: an unsupported explicit request degrades in this
#: order until an engine supports the cache (loop always does).
_CHAIN = ("vector", "replay", "stream", "loop")

_ENGINE_FALLBACK_WARNED: set = set()


def get_engine(name: str) -> Engine:
    """The engine registered under ``name`` (not "auto")."""
    try:
        return ENGINES[name]
    except KeyError:
        raise SimulationError(
            f"unknown engine {name!r}; expected one of {ENGINE_NAMES}"
        ) from None


def warn_engine_fallback(design, cache, requested: str, fallback: str) -> None:
    """One-time warning that an explicit engine request was downgraded.

    Inside shard/job pool workers the warning is suppressed entirely:
    warn-once state is per-process, so N workers would each print their
    own copy. The parent resolves (and warns) once when it plans the
    run — see :func:`repro.sim.shard.run_sharded` and
    :func:`repro.exec.jobs.plan_shards`.
    """
    if requested == "vector":
        roles = tuple(unvectorizable_roles(cache)) or ("cache",)
    elif requested == "replay":
        roles = tuple(unreplayable_roles(cache)) or ("cache",)
    else:
        roles = ("cache",)
    if design is not None:
        key = (requested, design.kind, design.ways, design.hashes, roles)
        label = design.label or design.kind
    else:
        key = (requested, type(cache).__name__, roles)
        label = type(cache).__name__
    if key in _ENGINE_FALLBACK_WARNED:
        return
    _ENGINE_FALLBACK_WARNED.add(key)
    from repro.sim.shard import in_worker_process  # deferred: shard imports us

    if in_worker_process():
        return
    warnings.warn(
        f"design {label!r} has non-vectorizable policy state "
        f"({', '.join(roles)}); --engine {requested} ignored, running "
        f"{fallback} (results stay exact)",
        RuntimeWarning,
        stacklevel=3,
    )


def _warn_breaker_fallback(design, cache, requested: str, fallback: str) -> None:
    """One-time warning that a request hit a circuit-broken engine."""
    key = ("breaker", requested, fallback)
    if key in _ENGINE_FALLBACK_WARNED:
        return
    _ENGINE_FALLBACK_WARNED.add(key)
    from repro.sim.shard import in_worker_process  # deferred: shard imports us

    if in_worker_process():
        return
    warnings.warn(
        f"--engine {requested} is circuit-broken after a verification "
        f"mismatch; running {fallback} instead (results stay exact)",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_engine(
    cache,
    requested: str = "auto",
    strict: bool = False,
    design=None,
) -> Engine:
    """Pick the engine that drives ``cache``, honoring the request.

    ``auto`` returns the fastest supported engine, silently. An explicit
    request is honored when supported; otherwise ``strict`` raises
    :class:`SimulationError`, and the default falls down the chain
    (vector → replay → stream → loop) with a one-time
    :func:`warn_engine_fallback` warning.

    Engines demoted by the verification circuit breaker
    (:mod:`repro.verify.breaker`) are skipped everywhere: ``auto``
    silently resolves past them, and an explicit request for a tripped
    engine degrades down the chain with a one-time warning (or raises
    under ``strict``) — the sweep finishes on a trusted engine.
    """
    if requested not in ENGINE_NAMES:
        raise SimulationError(
            f"unknown engine {requested!r}; expected one of {ENGINE_NAMES}"
        )
    if requested == "auto":
        for name in _CHAIN:
            if is_tripped(name):
                continue
            engine = ENGINES[name]
            if engine.supports(cache):
                return engine
        return ENGINES["loop"]
    if is_tripped(requested):
        if strict:
            raise SimulationError(
                f"engine {requested!r} is circuit-broken after a "
                f"verification mismatch (--engine-strict); use --engine "
                f"auto to fall back"
            )
        for name in _CHAIN[_CHAIN.index(requested) + 1:]:
            if is_tripped(name):
                continue
            fallback = ENGINES[name]
            if fallback.supports(cache):
                _warn_breaker_fallback(design, cache, requested, name)
                return fallback
        return ENGINES["loop"]
    engine = ENGINES[requested]
    if engine.supports(cache):
        return engine
    if strict:
        label = design.label or design.kind if design is not None else type(cache).__name__
        raise SimulationError(
            f"engine {requested!r} cannot drive design {label!r} exactly "
            f"(--engine-strict); use --engine auto to fall back"
        )
    for name in _CHAIN[_CHAIN.index(requested) + 1:]:
        if is_tripped(name):
            continue
        fallback = ENGINES[name]
        if fallback.supports(cache):
            warn_engine_fallback(design, cache, requested, name)
            return fallback
    return ENGINES["loop"]


__all__ = [
    "ENGINES",
    "ENGINE_NAMES",
    "Engine",
    "PerAccessEngine",
    "Segment",
    "SparseReplayEngine",
    "StreamEngine",
    "TraceStream",
    "VectorEngine",
    "get_engine",
    "resolve_engine",
    "serial_segments",
    "warn_engine_fallback",
]
