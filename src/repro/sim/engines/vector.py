"""The vector engine: whole-trace simulation as numpy array recurrences.

The functional model's state is strictly set-local for the designs that
declare the ``vectorizable`` capability: every quantity consulted on an
access to set *s* — resident tags, dirty bits, MRU/partial-tag
predictor state, per-set counter-based random streams — depends only on
the *prior accesses to s*. That makes the trace a bundle of independent
per-set recurrences, which this engine evaluates breadth-first:

1. **Plan** (cached per trace × geometry): stable-sort accesses by set,
   compute each access's *rank* (how many earlier accesses touch the
   same set), and group accesses by rank. Within one rank group every
   access touches a distinct set.
2. **Precompute** per-access constants in single vectorized passes:
   tag hashes and preferred ways, SWS candidate matrices, partial-tag
   hashes, per-set RNG stream seeds (:func:`repro.utils.rng.mix64_array`
   and friends are bit-identical array forms of the scalar streams).
3. **Step** over ranks: rank *k* processes the k-th access of every set
   simultaneously as a handful of gather/compare/scatter array ops —
   lookup scan over the candidate ways, flow costs, install-way draws,
   evict/install state updates, writeback absorption. Because the sets
   in one step are distinct, all scatters are conflict-free.
4. **Reduce**: the per-access outcome arrays (in original trace order)
   are sliced into the measurement window and epoch segments to produce
   :class:`~repro.sim.stats.CacheStats` and
   :class:`~repro.sim.phases.PhaseSeries` bit-identical to the
   per-access reference loop (asserted by ``tests/test_engines.py``).

The engine assumes a *freshly built* cache (junk-prefilled dense tag
store, empty DCP, zeroed predictor state): it replays the run against
its own state arrays initialized to those build-time defaults, and
never reads or writes the cache's actual store.
:meth:`repro.sim.system.Simulator.run` upholds the contract by
rebuilding the cache before a repeat run; the shard workers always
build fresh caches. ``supports`` declines anything else: non-dense or
unprefilled stores, registered observers, policy stacks outside the
exact set of vectorizable types (subclasses do not inherit
eligibility, even if they inherit the capability flag).
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.dcp import DcpDirectory
from repro.cache.lookup import ParallelLookup, SerialLookup, WayPredictedLookup
from repro.cache.replacement import RandomReplacement
from repro.cache.storage import JUNK_TAG, TagStore
from repro.core.prediction import (
    MruPredictor,
    PartialTagPredictor,
    PerfectPredictor,
    RandomPredictor,
    StaticPreferredPredictor,
)
from repro.core.pws import ProbabilisticWaySteering
from repro.core.steering import (
    DirectMappedSteering,
    UnbiasedSteering,
    _HASH_MULT,
    ways_bits,
)
from repro.core.sws import SkewedWaySteering, _TAG_SCAN_GROUPS
from repro.errors import SimulationError
from repro.sim.engines.base import Segment
from repro.sim.phases import PhaseSample, PhaseSeries
from repro.sim.stats import CacheStats
from repro.utils.bitops import mask
from repro.utils.rng import mix64_array, set_stream_seeds

_U64 = np.uint64


class _Plan:
    """Classification of one cache into kernel flavors + RNG bases."""

    __slots__ = (
        "flow", "steer", "pred", "dcp_exact", "ways", "num_sets",
        "hashes", "pip", "ptag_bits", "ptag_mask",
        "repl_base", "steer_base", "pred_base",
    )


def _build_plan(cache) -> Optional[_Plan]:
    """Classify ``cache`` for the kernel; None when it cannot run exactly.

    Dispatch is on *exact* types: a subclass may override any method,
    so inheriting a vectorizable policy (or its capability flag) does
    not make the subclass's behavior one the kernel reproduces.
    """
    path = getattr(cache, "path", None)
    if path is None or path.observers:
        return None
    geometry = cache.geometry
    store = cache.__dict__.get("store")
    if store is None:
        from repro.cache.dram_cache import DramCache
        from repro.cache.storage import _DENSE_LIMIT_LINES

        if type(cache) is DramCache and "geometry" in cache.__dict__:
            # Deferred store (lazy_tag_stores): it materializes as a
            # fresh TagStore, so validate the contract from the
            # geometry without forcing the multi-MB allocation.
            if not cache._prefill or geometry.num_lines > _DENSE_LIMIT_LINES:
                return None
        else:
            store = getattr(cache, "store", None)
    if store is not None:
        if type(store) is not TagStore or not store.dense:
            return None
        if store.valid_lines != geometry.num_lines:
            return None  # fresh-cache contract: junk-prefilled store
    plan = _Plan()
    plan.ways = geometry.ways
    plan.num_sets = geometry.num_sets

    lookup_type = type(cache.lookup)
    if lookup_type is ParallelLookup:
        plan.flow = "parallel"
    elif lookup_type is SerialLookup:
        plan.flow = "serial"
    elif lookup_type is WayPredictedLookup:
        plan.flow = "predicted"
    else:
        from repro.core.accord import _IdealizedLookup

        if lookup_type is not _IdealizedLookup:
            return None
        plan.flow = "ideal"

    steering = cache.steering
    steering_type = type(steering)
    plan.hashes = 0
    plan.pip = 1.0
    plan.steer_base = 0
    if steering_type is DirectMappedSteering:
        plan.steer = "direct"
    elif steering_type is UnbiasedSteering:
        plan.steer = "all"
    elif steering_type is ProbabilisticWaySteering:
        plan.steer = "pws"
        plan.pip = steering.pip
        plan.steer_base = steering._rng._base
    elif steering_type is SkewedWaySteering:
        plan.steer = "sws"
        plan.hashes = steering.hashes
        plan.pip = steering.pip
        plan.steer_base = steering._pws._rng._base
    else:
        return None

    predictor = cache.predictor
    plan.pred_base = 0
    plan.ptag_bits = 0
    plan.ptag_mask = 0
    if predictor is None:
        plan.pred = None
    else:
        predictor_type = type(predictor)
        if predictor_type is StaticPreferredPredictor:
            plan.pred = "static"
        elif predictor_type is RandomPredictor:
            plan.pred = "random"
            plan.pred_base = predictor._rng._base
        elif predictor_type is MruPredictor:
            plan.pred = "mru"
        elif predictor_type is PartialTagPredictor:
            plan.pred = "ptag"
            plan.ptag_bits = predictor.bits
            plan.ptag_mask = predictor._mask
        elif predictor_type is PerfectPredictor:
            plan.pred = "perfect"
        else:
            return None
    # A predictor attached to a non-predicted flow still learns from
    # accesses; the kernel only models predictor state under the
    # predicted flow, so decline the (never built in-repo) combination.
    if (plan.flow == "predicted") != (plan.pred is not None):
        return None

    if type(cache.replacement) is not RandomReplacement:
        return None
    plan.repl_base = cache.replacement._rng._base

    dcp = cache.dcp
    if dcp is None:
        plan.dcp_exact = False
    elif type(dcp) is DcpDirectory:
        if len(dcp) != 0:
            return None  # fresh-cache contract: nothing learned yet
        plan.dcp_exact = True
    else:
        return None
    return plan


# -- trace-order plan (sort by set, group by rank) ---------------------------

#: id(trace) -> (weakref, {(offset_bits, index_bits): (sets, tags,
#: writes, steps)}). Keyed by id with a weakref eviction callback
#: (Trace is unhashable); holds the sorted step structure that costs an
#: argsort to build and is shared by every design and repeat run over
#: the same trace.
_TRACE_PLANS: dict = {}

#: cache_token -> per-trace plan dict, for traces that carry a content
#: identity (loaded from the trace cache or attached from a shared
#: memory segment): distinct Trace objects with the same token are
#: byte-identical by construction, so their plans are interchangeable.
#: Bounded LRU — entries pin the column arrays.
_TOKEN_PLANS: "OrderedDict[str, dict]" = OrderedDict()
_TOKEN_PLAN_LIMIT = 8

#: Process-local count of sorted step-structure builds (one per trace ×
#: geometry that missed every memo). The plan-reuse tests assert a
#: same-trace sweep pays this exactly once per worker.
_PLAN_BUILDS = 0


def plan_build_count() -> int:
    """Cumulative step-plan builds in this process (monotonic)."""
    return _PLAN_BUILDS


def _plans_for(trace) -> dict:
    token = getattr(trace, "cache_token", None)
    if token is not None:
        per_trace = _TOKEN_PLANS.get(token)
        if per_trace is None:
            per_trace = {}
            _TOKEN_PLANS[token] = per_trace
            while len(_TOKEN_PLANS) > _TOKEN_PLAN_LIMIT:
                _TOKEN_PLANS.popitem(last=False)
        else:
            _TOKEN_PLANS.move_to_end(token)
        return per_trace
    tid = id(trace)
    record = _TRACE_PLANS.get(tid)
    if record is not None and record[0]() is trace:
        return record[1]
    per_trace = {}

    def _evict(_ref, tid=tid):
        _TRACE_PLANS.pop(tid, None)

    _TRACE_PLANS[tid] = (weakref.ref(trace, _evict), per_trace)
    return per_trace


def _sort_steps(
    sets: np.ndarray, writes: np.ndarray
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Group access indices by within-set rank; split reads/writebacks.

    Returns one ``(read_rows, writeback_rows)`` pair per rank. All rows
    of one rank touch pairwise-distinct sets, so a step's state updates
    never collide; processing ranks in order preserves each set's own
    access order, which is the only order the set-local recurrences
    depend on.
    """
    n = len(sets)
    if n == 0:
        return []
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_sets[1:] != sorted_sets[:-1]
    group_starts = np.flatnonzero(new_group)
    group_lengths = np.diff(np.append(group_starts, n))
    ranks_sorted = np.arange(n, dtype=np.int64) - np.repeat(
        group_starts, group_lengths
    )
    rank = np.empty(n, dtype=np.int64)
    rank[order] = ranks_sorted
    rank_order = np.argsort(rank, kind="stable")
    counts = np.bincount(rank)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    steps = []
    for k in range(len(counts)):
        rows = rank_order[offsets[k]:offsets[k + 1]]
        is_wb = writes[rows] != 0
        steps.append((rows[~is_wb], rows[is_wb]))
    return steps


def _stream_arrays(stream, geometry):
    """(sets, tags, writes, steps) for a stream, cached per trace."""
    global _PLAN_BUILDS
    trace = getattr(stream, "trace", None)
    if trace is None:
        sets = np.asarray(stream.set_indices, dtype=np.int64)
        tags = np.asarray(stream.tags, dtype=np.int64)
        writes = np.asarray(stream.writes, dtype=np.uint8)
        _PLAN_BUILDS += 1
        return sets, tags, writes, _sort_steps(sets, writes)
    key = (geometry.offset_bits, geometry.index_bits)
    per_trace = _plans_for(trace)
    entry = per_trace.get(key)
    if entry is None:
        lines = trace.numpy_addrs() >> geometry.offset_bits
        sets = lines & ((1 << geometry.index_bits) - 1)
        tags = lines >> geometry.index_bits
        writes = trace.numpy_writes()
        _PLAN_BUILDS += 1
        entry = (sets, tags, writes, _sort_steps(sets, writes))
        per_trace[key] = entry
    return entry


# -- vectorized policy functions ---------------------------------------------


def _tag_hash_array(tags: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.core.steering.tag_hash` (uint64 out)."""
    t = tags.astype(_U64, copy=False)
    return ((t + _U64(1)) * _U64(_HASH_MULT)) >> _U64(32)


def _skewed_matrix(
    hashed: np.ndarray, pref: np.ndarray, ways: int, hashes: int
) -> np.ndarray:
    """Vectorized :func:`repro.core.sws.skewed_candidates` per access.

    Column 0 is the preferred way; further columns collect distinct
    alternates from successive tag-hash bit groups, then the scalar
    code's deterministic fill sequence. Row *i* equals
    ``skewed_candidates(tags[i], ways, hashes)``.
    """
    n = len(hashed)
    bits = ways_bits(ways)
    group_mask = mask(bits)
    cand_matrix = np.zeros((n, hashes), dtype=np.int64)
    cand_matrix[:, 0] = pref
    filled = np.ones(n, dtype=np.int64)
    for group in range(1, _TAG_SCAN_GROUPS + 1):
        if bool((filled >= hashes).all()):
            return cand_matrix
        cand = ((hashed >> _U64(group * bits)) & _U64(group_mask)).astype(
            np.int64
        )
        member = np.zeros(n, dtype=bool)
        for j in range(hashes):
            member |= (j < filled) & (cand_matrix[:, j] == cand)
        take = np.flatnonzero(~member & (filled < hashes))
        if len(take):
            cand_matrix[take, filled[take]] = cand[take]
            filled[take] += 1
    # Deterministic fill for degenerate tags (mirrors the scalar loop:
    # probe starts at pref ^ mask and walks (probe + 1) % ways).
    probe = (pref ^ group_mask).astype(np.int64)
    for _ in range(ways + hashes):
        if bool((filled >= hashes).all()):
            return cand_matrix
        member = np.zeros(n, dtype=bool)
        for j in range(hashes):
            member |= (j < filled) & (cand_matrix[:, j] == probe)
        take = np.flatnonzero(~member & (filled < hashes))
        if len(take):
            cand_matrix[take, filled[take]] = probe[take]
            filled[take] += 1
        probe = (probe + 1) % ways
    raise SimulationError("skewed candidate fill did not converge")


# -- the kernel --------------------------------------------------------------


class _Outcome:
    """Per-access result columns, in original stream order."""

    __slots__ = (
        "hit", "serialized", "transfers", "correct", "victim_dirty",
        "wb_absorbed", "wb_probes",
    )

    def __init__(self, n: int):
        self.hit = np.zeros(n, dtype=bool)
        self.serialized = np.zeros(n, dtype=np.int64)
        self.transfers = np.zeros(n, dtype=np.int64)
        self.correct = np.zeros(n, dtype=bool)
        self.victim_dirty = np.zeros(n, dtype=bool)
        self.wb_absorbed = np.zeros(n, dtype=bool)
        self.wb_probes = np.zeros(n, dtype=np.int64)


def _simulate(plan: _Plan, sets, tags, writes, steps) -> _Outcome:
    """Run the per-set recurrences over the whole stream."""
    n = len(sets)
    ways = plan.ways
    flow = plan.flow
    steer = plan.steer
    pred = plan.pred
    out = _Outcome(n)
    if n == 0:
        return out

    # Candidate geometry: m candidate ways per access. ``cand_matrix``
    # is materialized only when candidates vary by tag; for "all"
    # steering, candidate j is simply way j.
    if steer == "sws":
        m = plan.hashes
    elif steer == "direct":
        m = 1
    else:
        m = ways

    slot0 = sets * ways

    need_pref = (
        steer in ("pws", "sws")
        or (steer == "direct" and ways > 1)
        or pred in ("static", "perfect", "ptag")
    )
    pref = None
    if need_pref:
        pref = (_tag_hash_array(tags) & _U64(ways - 1)).astype(np.int64)

    cand_matrix = None
    if steer == "sws":
        cand_matrix = _skewed_matrix(_tag_hash_array(tags), pref, ways, plan.hashes)
    elif steer == "direct":
        cand0 = pref if ways > 1 else np.zeros(n, dtype=np.int64)
        cand_matrix = cand0[:, None]

    wanted = None
    if pred == "ptag":
        wanted = (
            (mix64_array(tags.astype(_U64)) & _U64(plan.ptag_mask))
            | _U64(1 << plan.ptag_bits)
        ).astype(np.int64)

    # Per-set counter-based RNG streams: per-access seeds precomputed,
    # per-set draw counters advanced as the recurrence consumes draws.
    repl_seeds = repl_count = None
    if steer == "all":
        repl_seeds = set_stream_seeds(plan.repl_base, sets)
        repl_count = np.zeros(plan.num_sets, dtype=np.int64)
    steer_seeds = steer_count = None
    if steer in ("pws", "sws") and m > 1:
        steer_seeds = set_stream_seeds(plan.steer_base, sets)
        steer_count = np.zeros(plan.num_sets, dtype=np.int64)
    pred_seeds = pred_count = None
    if pred == "random":
        pred_seeds = set_stream_seeds(plan.pred_base, sets)
        pred_count = np.zeros(plan.num_sets, dtype=np.int64)

    # Cache state, initialized to the freshly built defaults.
    tags_state = np.full(plan.num_sets * ways, JUNK_TAG, dtype=np.int64)
    dirty = np.zeros(plan.num_sets * ways, dtype=np.uint8)
    mru = np.zeros(plan.num_sets, dtype=np.int64) if pred == "mru" else None
    ptags = (
        np.zeros(plan.num_sets * ways, dtype=np.int64) if pred == "ptag" else None
    )

    def candidate_col(j, rows, base):
        """(way, slot) arrays of candidate position j for these rows."""
        if cand_matrix is not None:
            way = cand_matrix[rows, j]
            return way, base + way
        return j, base + j

    def scan(rows, row_tags, base):
        """First candidate position/way holding the tag (probe order)."""
        found = np.zeros(len(rows), dtype=bool)
        way_pos = np.zeros(len(rows), dtype=np.int64)
        way_phys = np.zeros(len(rows), dtype=np.int64)
        for j in range(m):
            way_j, slot_j = candidate_col(j, rows, base)
            match = ~found & (tags_state[slot_j] == row_tags)
            if match.any():
                way_pos[match] = j
                way_phys[match] = (
                    way_j[match] if isinstance(way_j, np.ndarray) else way_j
                )
                found |= match
        return found, way_pos, way_phys

    def draw(seeds, counts, rows, row_sets):
        """Next per-set stream value for each row (sets are distinct)."""
        u = mix64_array(seeds[rows] + counts[row_sets].astype(_U64))
        counts[row_sets] += 1
        return u

    two_pow_64 = float(2.0 ** 64)
    pip = plan.pip

    def step_reads(rows):
        row_sets = sets[rows]
        row_tags = tags[rows]
        base = slot0[rows]
        found, way_pos, way_phys = scan(rows, row_tags, base)
        # -- flow costs ----------------------------------------------------
        if flow == "parallel":
            serialized = np.ones(len(rows), dtype=np.int64)
            transfers = np.full(len(rows), m, dtype=np.int64)
        elif flow == "ideal":
            serialized = np.ones(len(rows), dtype=np.int64)
            transfers = serialized
        elif flow == "serial":
            serialized = np.where(found, way_pos + 1, m)
            transfers = serialized
        else:  # predicted
            if pred == "static":
                predicted = pref[rows]
            elif pred == "random":
                predicted = (
                    draw(pred_seeds, pred_count, rows, row_sets) % _U64(ways)
                ).astype(np.int64)
            elif pred == "mru":
                predicted = mru[row_sets]
            elif pred == "perfect":
                predicted = np.where(found, way_phys, pref[rows])
            else:  # ptag: first way (over ALL ways) whose partial tag matches
                predicted = pref[rows].copy()
                ptag_found = np.zeros(len(rows), dtype=bool)
                row_wanted = wanted[rows]
                for way_j in range(ways):
                    match = ~ptag_found & (ptags[base + way_j] == row_wanted)
                    if match.any():
                        predicted[match] = way_j
                        ptag_found |= match
            if cand_matrix is not None:
                # Clamp to candidates[0] when the predicted way is not a
                # legal residence for this tag, as the lookup flow does.
                in_cand = np.zeros(len(rows), dtype=bool)
                pos_pred = np.zeros(len(rows), dtype=np.int64)
                for j in range(m):
                    way_j, _ = candidate_col(j, rows, base)
                    match = ~in_cand & (way_j == predicted)
                    if match.any():
                        pos_pred[match] = j
                        in_cand |= match
                predicted = np.where(in_cand, predicted, cand_matrix[rows, 0])
                pos_pred = np.where(in_cand, pos_pred, 0)
            else:
                pos_pred = predicted  # candidate j is way j
            hit_on_pred = found & (way_phys == predicted)
            serialized = np.where(
                hit_on_pred,
                1,
                np.where(
                    found,
                    np.where(pos_pred < way_pos, way_pos + 1, way_pos + 2),
                    m,
                ),
            )
            transfers = serialized
            out.correct[rows] = hit_on_pred
        out.hit[rows] = found
        out.serialized[rows] = serialized
        out.transfers[rows] = transfers
        # -- hit-side state ------------------------------------------------
        if pred == "mru" and found.any():
            mru[row_sets[found]] = way_phys[found]
        # -- miss fill -----------------------------------------------------
        miss = ~found
        if not miss.any():
            return
        miss_rows = rows[miss]
        miss_sets = row_sets[miss]
        miss_base = base[miss]
        miss_tags = row_tags[miss]
        if steer == "direct":
            install = cand_matrix[miss_rows, 0]
        elif steer == "all":
            u = draw(repl_seeds, repl_count, miss_rows, miss_sets)
            install = (u % _U64(ways)).astype(np.int64)
        else:  # pws / sws: the PIP coin over the candidate set
            miss_pref = pref[miss_rows]
            if m == 1:
                install = miss_pref
            else:
                u1 = draw(steer_seeds, steer_count, miss_rows, miss_sets)
                spill = ~((u1.astype(np.float64) / two_pow_64) < pip)
                install = miss_pref.copy()
                if spill.any():
                    spill_rows = miss_rows[spill]
                    u2 = draw(
                        steer_seeds, steer_count, spill_rows, miss_sets[spill]
                    )
                    if steer == "pws":
                        alt = (u2 % _U64(ways - 1)).astype(np.int64)
                        spill_pref = miss_pref[spill]
                        install[spill] = alt + (alt >= spill_pref)
                    else:
                        alt = (u2 % _U64(m - 1)).astype(np.int64)
                        install[spill] = cand_matrix[spill_rows, 1 + alt]
        slot = miss_base + install
        out.victim_dirty[miss_rows] = dirty[slot] != 0
        tags_state[slot] = miss_tags
        dirty[slot] = 0
        if pred == "mru":
            mru[miss_sets] = install
        elif pred == "ptag":
            # on_evict zeroes the slot, on_install overwrites it.
            ptags[slot] = wanted[miss_rows]

    def step_writebacks(rows):
        row_tags = tags[rows]
        base = slot0[rows]
        found, way_pos, way_phys = scan(rows, row_tags, base)
        if not plan.dcp_exact:
            # No way information: probe the candidate ways in order.
            out.wb_probes[rows] = np.where(found, way_pos + 1, m)
        out.wb_absorbed[rows] = found
        if found.any():
            dirty[base[found] + way_phys[found]] = 1

    for read_rows, wb_rows in steps:
        if len(read_rows):
            step_reads(read_rows)
        if len(wb_rows):
            step_writebacks(wb_rows)
    return out


# -- reductions --------------------------------------------------------------


def _window_stats(
    plan: _Plan, writes, out: _Outcome, start: int, stop: int
) -> CacheStats:
    """Fold outcome columns over ``[start, stop)`` into CacheStats."""
    stats = CacheStats()
    is_read = writes[start:stop] == 0
    hit = out.hit[start:stop]
    serialized = out.serialized[start:stop]
    read_hit = is_read & hit
    read_miss = is_read & ~hit
    demand = int(is_read.sum())
    hits = int(read_hit.sum())
    misses = demand - hits
    wb_total = len(is_read) - demand
    absorbed = int(out.wb_absorbed[start:stop].sum())
    wb_probes = int(out.wb_probes[start:stop].sum())
    dirty_evictions = int(out.victim_dirty[start:stop].sum())
    stats.demand_reads = demand
    stats.first_probes = demand
    stats.hits = hits
    stats.misses = misses
    stats.hit_extra_probes = int(((serialized - 1) * read_hit).sum())
    stats.miss_extra_probes = int(((serialized - 1) * read_miss).sum())
    stats.cache_read_transfers = (
        int((out.transfers[start:stop] * is_read).sum()) + wb_probes
    )
    if plan.flow == "predicted":
        stats.predicted_hits = hits
        stats.correct_predictions = int(out.correct[start:stop].sum())
    stats.installs = misses
    stats.evictions = misses  # prefilled: every fill displaces a line
    stats.nvm_reads = misses
    stats.dirty_evictions = dirty_evictions
    stats.writebacks_in = wb_total
    stats.writeback_direct = absorbed
    stats.writeback_bypass = wb_total - absorbed
    stats.writeback_probe_accesses = wb_probes
    stats.cache_write_transfers = misses + absorbed
    stats.nvm_writes = dirty_evictions + (wb_total - absorbed)
    return stats


def _phase_series(
    plan: _Plan,
    writes,
    out: _Outcome,
    segments: Sequence[Segment],
    epoch: int,
    global_epochs: bool,
    phase_sink,
) -> PhaseSeries:
    """Fold outcome columns per epoch segment into a PhaseSeries.

    Serial mode emits :class:`PhaseMetrics`-compatible samples
    (contiguous indices, cumulative ``start_access``, sink streaming in
    order); shard mode emits the merge-ready bucket form
    (``start_access=0``, global epoch indices).
    """
    samples = []
    start_access = 0
    for epoch_id, start, stop in segments:
        is_read = writes[start:stop] == 0
        hit = out.hit[start:stop]
        accesses = int(is_read.sum())
        hits = int((is_read & hit).sum())
        misses = accesses - hits
        wb_total = len(is_read) - accesses
        absorbed = int(out.wb_absorbed[start:stop].sum())
        dirty_evictions = int(out.victim_dirty[start:stop].sum())
        sample = PhaseSample(
            index=int(epoch_id),
            start_access=0 if global_epochs else start_access,
            accesses=accesses,
            hits=hits,
            predicted_hits=hits if plan.flow == "predicted" else 0,
            correct_predictions=(
                int(out.correct[start:stop].sum())
                if plan.flow == "predicted"
                else 0
            ),
            nvm_reads=misses,
            nvm_writes=dirty_evictions + (wb_total - absorbed),
            writebacks=wb_total,
        )
        samples.append(sample)
        start_access += accesses
        if phase_sink is not None and not global_epochs:
            phase_sink(sample)
    return PhaseSeries(epoch=epoch, samples=tuple(samples))


class VectorEngine:
    """Whole-trace numpy kernel for deterministic set-local designs."""

    name = "vector"

    def supports(self, cache) -> bool:
        return _build_plan(cache) is not None

    def drive(
        self,
        cache,
        stream,
        warm: int,
        segments: Sequence[Segment],
        epoch: Optional[int],
        *,
        global_epochs: bool = False,
        phase_sink=None,
    ) -> Optional[PhaseSeries]:
        plan = _build_plan(cache)
        if plan is None:
            raise SimulationError(
                "vector engine cannot drive this cache exactly; use the "
                "resolver (repro.sim.engines.resolve_engine) to fall back"
            )
        sets, tags, writes, steps = _stream_arrays(stream, cache.geometry)
        out = _simulate(plan, sets, tags, writes, steps)
        cache.stats = _window_stats(plan, writes, out, warm, len(sets))
        if epoch is None:
            return None
        return _phase_series(
            plan, writes, out, segments, epoch, global_epochs, phase_sink
        )


__all__ = ["VectorEngine"]
