"""The reference engine: one ``cache.read``/``cache.writeback`` per record.

Slowest and most general: it needs nothing from the cache beyond the
two public access methods, so it drives every model including the
column-associative baseline (whose access flow crosses sets and has no
:class:`~repro.cache.access_path.AccessPath`). It also exercises
``geometry.split`` per access, which is exactly what the equivalence
suite wants from a reference: no precomputation shared with the faster
engines.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.engines.base import Segment
from repro.sim.phases import PhaseMetrics, PhaseSeries
from repro.sim.stats import CacheStats


class PerAccessEngine:
    """Drive each record through the per-address entry points."""

    name = "loop"

    def supports(self, cache) -> bool:
        return True

    def drive(
        self,
        cache,
        stream,
        warm: int,
        segments: Sequence[Segment],
        epoch: Optional[int],
        *,
        global_epochs: bool = False,
        phase_sink=None,
    ) -> Optional[PhaseSeries]:
        writes = stream.writes
        addrs = stream.addrs
        read = cache.read
        writeback = cache.writeback
        for w, a in zip(writes[:warm], addrs[:warm]):
            if w:
                writeback(a)
            else:
                read(a)
        cache.stats = CacheStats()
        # Caches without an observable access path (the CA baseline)
        # cannot be phase-resolved; they report phases=None.
        add_observer = getattr(cache, "add_observer", None)
        if epoch is None or add_observer is None:
            for _, start, stop in segments:
                for w, a in zip(writes[start:stop], addrs[start:stop]):
                    if w:
                        writeback(a)
                    else:
                        read(a)
            return None
        if global_epochs:
            from repro.sim.shard import _EpochBuckets

            observer = _EpochBuckets()
        else:
            observer = PhaseMetrics(epoch, sink=phase_sink)
        add_observer(observer)
        try:
            if global_epochs:
                for epoch_id, start, stop in segments:
                    observer.set_epoch(epoch_id)
                    for w, a in zip(writes[start:stop], addrs[start:stop]):
                        if w:
                            writeback(a)
                        else:
                            read(a)
            else:
                n = len(addrs)
                for w, a in zip(writes[warm:n], addrs[warm:n]):
                    if w:
                        writeback(a)
                    else:
                        read(a)
        finally:
            cache.remove_observer(observer)
        if global_epochs:
            return observer.result(epoch)
        return observer.result()


__all__ = ["PerAccessEngine"]
