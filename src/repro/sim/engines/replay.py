"""The sparse-replay engine: vectorized pre/post passes around a fused
scalar replay of the global-state designs.

The vector engine (:mod:`repro.sim.engines.vector`) requires strictly
set-local state. The paper's headline designs break that: GWS's RIT/RLT
are *global* LRU tables keyed by 4KB region, set-dueling's PSEL is one
global saturating counter, and the column-associative cache's alternate
location lives in a different set. Those designs were stuck on the
~300k acc/s stream loop.

The key structural fact this engine exploits is that the global state
is touched *sparsely and cheaply*: per access it is a couple of dict
operations (the RIT/RLT emulation below) or an integer compare (PSEL),
while everything *around* those touches — address decomposition, tag
hashing, preferred ways, SWS candidate matrices, per-set RNG stream
seeds — is a pure per-access function. So the engine splits the work:

1. **Precompute** (vectorized): sets, tags, regions, preferred ways,
   candidate matrices and per-set splitmix64 stream seeds for the whole
   trace in a handful of numpy passes, then materialize them as plain
   Python lists for the replay loop.
2. **Replay** (fused scalar kernel): one pass over the precomputed
   columns carrying only the *sparse* state — resident tags, dirty
   bits, the RIT/RLT as plain insertion-ordered dicts, per-set draw
   counters, PSEL. Each access appends a single small *outcome code*.
3. **Reduce** (vectorized): decode the code column into the vector
   engine's :class:`~repro.sim.engines.vector._Outcome` arrays and
   reuse its ``_window_stats`` / ``_phase_series`` reductions, so the
   CacheStats and PhaseSeries construction is shared, bit for bit.

Because every expensive per-access quantity is hoisted out of the loop
and the loop body itself is branch-light, the replay runs ~4-9x faster
than the stream loop while remaining bit-identical to the per-address
reference loop (asserted by ``tests/test_engines.py`` for every design
and by the randomized property tests).

The outcome code per access is:

* reads — ``k`` in ``1..m`` for a hit whose lookup serialized ``k``
  probes (``k == 1`` iff the prediction was correct, because the
  predicted way is always probed first); ``-1`` for a miss over a clean
  victim, ``-2`` over a dirty one (prefilled stores make every fill an
  eviction);
* writebacks — ``100 + probes`` when absorbed, ``200 + probes`` when
  bypassed (``probes`` is 0 under an exact DCP, which answers without
  touching the ways).

Like the vector engine, this engine assumes a freshly built cache
(junk-prefilled dense store, empty region tables, midpoint PSEL, empty
DCP) and replays against its own state, never the cache's. ``supports``
declines anything else, including policy subclasses — dispatch is on
exact types, since a subclass may override any method.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cache.ca_cache import ColumnAssociativeCache
from repro.cache.dcp import DcpDirectory
from repro.cache.lookup import WayPredictedLookup
from repro.cache.replacement import RandomReplacement
from repro.cache.storage import JUNK_TAG, TagStore
from repro.core.dueling import DuelingPwsSteering
from repro.core.gws import GangedWayPredictor, GangedWaySteering
from repro.core.prediction import RandomPredictor, StaticPreferredPredictor
from repro.core.protocols import cache_is_replay_vectorizable
from repro.core.pws import ProbabilisticWaySteering
from repro.core.steering import UnbiasedSteering
from repro.core.sws import SkewedWaySteering
from repro.errors import SimulationError
from repro.sim.engines.base import Segment
from repro.sim.engines.vector import (
    _Outcome,
    _Plan,
    _phase_series,
    _skewed_matrix,
    _stream_arrays,
    _tag_hash_array,
    _window_stats,
)
from repro.sim.phases import PhaseSeries
from repro.sim.stats import CacheStats
from repro.utils.rng import set_stream_seeds

_U64 = np.uint64

# splitmix64 constants, inlined in the replay loops (one function call
# per draw would double the kernel time).
_M64 = (1 << 64) - 1
_C1 = 0x9E3779B97F4A7C15
_C2 = 0xBF58476D1CE4E5B9
_C3 = 0x94D049BB133111EB
_TWO64 = float(1 << 64)


class _ReplayPlan:
    """Classification of one cache into replay-kernel flavors."""

    __slots__ = (
        "family",       # "gws" (GWS-wrapped DramCache) | "ca"
        "ways", "num_sets", "m", "hashes",
        "steer",        # fallback install: unbiased | pws | sws | dueling
        "pred",         # fallback predict: static | random
        "pip", "steer_base", "repl_base", "pred_base",
        "pip_low", "pip_high", "low_base", "high_base", "psel_max",
        "rit_entries", "rlt_entries", "steer_region", "pred_region",
        "dcp_exact",
    )


def _build_replay_plan(cache) -> Optional[_ReplayPlan]:
    """Classify ``cache`` for the replay kernels; None when ineligible.

    Mirrors the vector engine's ``_build_plan`` discipline: exact-type
    dispatch plus fresh-state checks (prefilled store, empty RIT/RLT,
    midpoint PSEL, empty DCP), so the kernel's replayed-from-defaults
    state provably matches the cache it never touches.
    """
    if type(cache) is ColumnAssociativeCache:
        if cache._lines or cache._dirty:
            return None  # fresh-cache contract
        plan = _ReplayPlan()
        plan.family = "ca"
        plan.ways = 1
        plan.num_sets = cache.geometry.num_sets
        return plan

    path = getattr(cache, "path", None)
    if path is None or path.observers:
        return None
    store = getattr(cache, "store", None)
    if type(store) is not TagStore or not store.dense:
        return None
    geometry = cache.geometry
    if store.valid_lines != geometry.num_lines:
        return None  # fresh-cache contract: junk-prefilled store
    if type(cache.lookup) is not WayPredictedLookup:
        return None
    if type(cache.replacement) is not RandomReplacement:
        return None

    steering = cache.steering
    if type(steering) is not GangedWaySteering or len(steering.rit) != 0:
        return None
    predictor = cache.predictor
    if type(predictor) is not GangedWayPredictor or len(predictor.rlt) != 0:
        return None

    plan = _ReplayPlan()
    plan.family = "gws"
    plan.ways = geometry.ways
    plan.num_sets = geometry.num_sets
    plan.rit_entries = steering.rit.entries
    plan.rlt_entries = predictor.rlt.entries
    plan.steer_region = steering.region_size
    plan.pred_region = predictor.region_size
    plan.repl_base = cache.replacement._rng._base
    plan.hashes = 0
    plan.m = plan.ways

    fallback = steering.fallback
    fallback_type = type(fallback)
    if fallback_type is UnbiasedSteering:
        plan.steer = "unbiased"
    elif fallback_type is ProbabilisticWaySteering:
        plan.steer = "pws"
        plan.pip = fallback.pip
        plan.steer_base = fallback._rng._base
    elif fallback_type is SkewedWaySteering:
        plan.steer = "sws"
        plan.hashes = fallback.hashes
        plan.m = fallback.hashes
        plan.pip = fallback.pip
        plan.steer_base = fallback._pws._rng._base
    elif fallback_type is DuelingPwsSteering:
        if fallback.psel != fallback.psel_max // 2:
            return None  # fresh-cache contract: PSEL at midpoint
        plan.steer = "dueling"
        plan.psel_max = fallback.psel_max
        plan.pip_low = fallback._low.pip
        plan.pip_high = fallback._high.pip
        plan.low_base = fallback._low._rng._base
        plan.high_base = fallback._high._rng._base
    else:
        return None

    pred_fallback = predictor.fallback
    pred_type = type(pred_fallback)
    if pred_type is StaticPreferredPredictor:
        plan.pred = "static"
    elif pred_type is RandomPredictor:
        plan.pred = "random"
        plan.pred_base = pred_fallback._rng._base
    else:
        return None

    dcp = cache.dcp
    if dcp is None:
        plan.dcp_exact = False
    elif type(dcp) is DcpDirectory:
        if len(dcp) != 0:
            return None  # fresh-cache contract
        plan.dcp_exact = True
    else:
        return None
    return plan


# -- the GWS-family replay kernels -------------------------------------------
#
# Both kernels reproduce, in order, exactly what the access path does:
#
#   read:  predict via RLT (lookup refreshes recency) else fallback;
#          probe predicted first, then remaining candidates; on a hit
#          record the hit way in the RLT. On a miss: GWS install choice
#          (RIT lookup; fallback coin/draw + RIT record on RIT miss),
#          evict (always a displacement: junk prefill), install, then
#          the on_install hooks re-record RIT and RLT.
#   wb:    exact DCP answers membership with zero probes; without a DCP
#          the candidate ways are probed in order.
#
# The RecentRegionTable (OrderedDict LRU) is emulated with a plain dict
# relying on insertion order: move_to_end == del+reinsert, popitem(
# last=False) == del first key. Plain dicts are measurably faster than
# OrderedDict in this loop.


def _lists(*arrays):
    return [a.tolist() for a in arrays]


def _replay_two_way(plan, sets_a, tags_a, writes_a, addrs):
    """Fast path: ways == 2 with all-ways candidates (gws / ACCORD 2-way
    / dueling). The other way is always ``predicted ^ 1``, so probe
    scans and spill picks collapse to XORs."""
    pref_a = (_tag_hash_array(tags_a) & _U64(1)).astype(np.int64)
    sregion_a = addrs // np.int64(plan.steer_region)
    base_a = sets_a * np.int64(2)
    steer = plan.steer
    pred = plan.pred

    zero_a = np.zeros(len(sets_a), dtype=_U64)
    if steer == "dueling":
        s1_a = set_stream_seeds(plan.low_base, sets_a)
        s2_a = set_stream_seeds(plan.high_base, sets_a)
    elif steer == "pws":
        s1_a = set_stream_seeds(plan.steer_base, sets_a)
        s2_a = zero_a
    else:  # unbiased: the replacement policy's stream picks the victim
        s1_a = set_stream_seeds(plan.repl_base, sets_a)
        s2_a = zero_a
    if pred == "random":
        p_a = set_stream_seeds(plan.pred_base, sets_a)
    else:
        p_a = zero_a
    if plan.pred_region == plan.steer_region:
        pregion_l = None
    else:
        pregion_l = (addrs // np.int64(plan.pred_region)).tolist()

    writes_l, sets_l, tags_l, regions_l, pref_l, base_l, s1_l, s2_l, p_l = _lists(
        writes_a, sets_a, tags_a, sregion_a, pref_a, base_a, s1_a, s2_a, p_a
    )
    if pregion_l is None:
        pregion_l = regions_l

    num_sets = plan.num_sets
    tags_state = [JUNK_TAG] * (num_sets * 2)
    dirty = bytearray(num_sets * 2)
    rit: dict = {}
    rlt: dict = {}
    rit_get = rit.get
    rlt_get = rlt.get
    rit_entries = plan.rit_entries
    rlt_entries = plan.rlt_entries
    cnt1 = [0] * num_sets     # low/pws/replacement stream counters
    cnt2 = [0] * num_sets     # dueling high-instance stream counters
    pcnt = [0] * num_sets     # random-predictor stream counters
    psel = (plan.psel_max // 2) if steer == "dueling" else 0
    psel_max = plan.psel_max if steer == "dueling" else 0
    psel_mid = psel_max // 2
    pip = plan.pip if steer in ("pws",) else 0.0
    pip_low = plan.pip_low if steer == "dueling" else 0.0
    pip_high = plan.pip_high if steer == "dueling" else 0.0
    dcp_exact = plan.dcp_exact
    dueling = steer == "dueling"
    unbiased = steer == "unbiased"
    pred_random = pred == "random"

    codes = []
    code_append = codes.append

    for w, s, t, rg, prg, pf, base, sd1, sd2, psd in zip(
        writes_l, sets_l, tags_l, regions_l, pregion_l, pref_l, base_l,
        s1_l, s2_l, p_l,
    ):
        if w:
            # Exact DCP answers membership with zero probes; without a
            # DCP the ways are probed in candidate order (0 then 1).
            if tags_state[base] == t:
                dirty[base] = 1
                code_append(100 if dcp_exact else 101)
            elif tags_state[base + 1] == t:
                dirty[base + 1] = 1
                code_append(100 if dcp_exact else 102)
            else:
                code_append(200 if dcp_exact else 202)
            continue
        # -- read: predict (RLT lookup refreshes recency) -------------------
        pw = rlt_get(prg)
        if pw is None:
            if pred_random:
                c = pcnt[s]
                pcnt[s] = c + 1
                z = (psd + c + _C1) & _M64
                z = ((z ^ (z >> 30)) * _C2) & _M64
                z = ((z ^ (z >> 27)) * _C3) & _M64
                predicted = (z ^ (z >> 31)) & 1
            else:
                predicted = pf
        else:
            del rlt[prg]
            rlt[prg] = pw
            predicted = pw
        slot = base + predicted
        if tags_state[slot] == t:
            code_append(1)
            if prg in rlt:
                del rlt[prg]
            rlt[prg] = predicted
            if len(rlt) > rlt_entries:
                del rlt[next(iter(rlt))]
            continue
        other = predicted ^ 1
        if tags_state[base + other] == t:
            code_append(2)
            if prg in rlt:
                del rlt[prg]
            rlt[prg] = other
            if len(rlt) > rlt_entries:
                del rlt[next(iter(rlt))]
            continue
        # -- miss: GWS install choice ----------------------------------------
        g = rit_get(rg)
        if g is not None:
            del rit[rg]
            way = g
        else:
            c = cnt1[s]
            z = (sd1 + c + _C1) & _M64
            z = ((z ^ (z >> 30)) * _C2) & _M64
            z = ((z ^ (z >> 27)) * _C3) & _M64
            z ^= z >> 31
            if unbiased:
                cnt1[s] = c + 1
                way = z & 1
            elif dueling:
                # observe_miss: leader sets vote before the instance pick.
                if not s & 31:
                    if (s >> 5) & 1:
                        low = False  # high leader
                        if psel < psel_max:
                            psel += 1
                    else:
                        low = True  # low leader
                        if psel > 0:
                            psel -= 1
                else:
                    low = psel > psel_mid
                if low:
                    cnt1[s] = c + 1
                    if z / _TWO64 < pip_low:
                        way = pf
                    else:
                        c2 = cnt1[s]
                        cnt1[s] = c2 + 1
                        way = pf ^ 1
                else:
                    c2 = cnt2[s]
                    z = (sd2 + c2 + _C1) & _M64
                    z = ((z ^ (z >> 30)) * _C2) & _M64
                    z = ((z ^ (z >> 27)) * _C3) & _M64
                    z ^= z >> 31
                    cnt2[s] = c2 + 1
                    if z / _TWO64 < pip_high:
                        way = pf
                    else:
                        cnt2[s] = c2 + 2
                        way = pf ^ 1
            else:  # pws
                if z / _TWO64 < pip:
                    way = pf
                    cnt1[s] = c + 1
                else:
                    way = pf ^ 1
                    cnt1[s] = c + 2
        # fallback path records the RIT; the ganged path's entry is
        # refreshed identically by on_install below, so one record
        # covers both (del+reinsert == move_to_end + update).
        slot = base + way
        code_append(-2 if dirty[slot] else -1)
        tags_state[slot] = t
        dirty[slot] = 0
        if rg in rit:
            del rit[rg]
        rit[rg] = way
        if len(rit) > rit_entries:
            del rit[next(iter(rit))]
        if prg in rlt:
            del rlt[prg]
        rlt[prg] = way
        if len(rlt) > rlt_entries:
            del rlt[next(iter(rlt))]
    return codes


def _replay_generic(plan, sets_a, tags_a, writes_a, addrs):
    """General kernel: any way count, identity or SWS candidate sets,
    all fallback modes. Used for ACCORD 4-way, SWS(N,k), and the
    randomized property-test configurations."""
    ways = plan.ways
    hashed = _tag_hash_array(tags_a)
    pref_a = (hashed & _U64(ways - 1)).astype(np.int64)
    sregion_a = addrs // np.int64(plan.steer_region)
    base_a = sets_a * np.int64(ways)
    steer = plan.steer
    pred = plan.pred
    m = plan.m

    if steer == "sws":
        cand_rows = _skewed_matrix(hashed, pref_a, ways, plan.hashes).tolist()
    else:
        cand_rows = None

    zero_a = np.zeros(len(sets_a), dtype=_U64)
    if steer == "dueling":
        s1_a = set_stream_seeds(plan.low_base, sets_a)
        s2_a = set_stream_seeds(plan.high_base, sets_a)
    elif steer in ("pws", "sws"):
        s1_a = set_stream_seeds(plan.steer_base, sets_a)
        s2_a = zero_a
    else:  # unbiased
        s1_a = set_stream_seeds(plan.repl_base, sets_a)
        s2_a = zero_a
    p_a = set_stream_seeds(plan.pred_base, sets_a) if pred == "random" else zero_a
    if plan.pred_region == plan.steer_region:
        pregion_l = None
    else:
        pregion_l = (addrs // np.int64(plan.pred_region)).tolist()

    writes_l, sets_l, tags_l, regions_l, pref_l, base_l, s1_l, s2_l, p_l = _lists(
        writes_a, sets_a, tags_a, sregion_a, pref_a, base_a, s1_a, s2_a, p_a
    )
    if pregion_l is None:
        pregion_l = regions_l
    if cand_rows is None:
        cand_rows = [None] * len(writes_l)
    all_ways = tuple(range(ways))

    num_sets = plan.num_sets
    tags_state = [JUNK_TAG] * (num_sets * ways)
    dirty = bytearray(num_sets * ways)
    rit: dict = {}
    rlt: dict = {}
    rit_get = rit.get
    rlt_get = rlt.get
    rit_entries = plan.rit_entries
    rlt_entries = plan.rlt_entries
    cnt1 = [0] * num_sets
    cnt2 = [0] * num_sets
    pcnt = [0] * num_sets
    psel = (plan.psel_max // 2) if steer == "dueling" else 0
    psel_max = plan.psel_max if steer == "dueling" else 0
    psel_mid = psel_max // 2
    pip = plan.pip if steer in ("pws", "sws") else 0.0
    pip_low = plan.pip_low if steer == "dueling" else 0.0
    pip_high = plan.pip_high if steer == "dueling" else 0.0
    dcp_exact = plan.dcp_exact
    dueling = steer == "dueling"
    unbiased = steer == "unbiased"
    pred_random = pred == "random"

    codes = []
    code_append = codes.append

    for w, s, t, rg, prg, pf, base, sd1, sd2, psd, row in zip(
        writes_l, sets_l, tags_l, regions_l, pregion_l, pref_l, base_l,
        s1_l, s2_l, p_l, cand_rows,
    ):
        candidates = all_ways if row is None else row
        if w:
            # writeback: exact DCP answers with zero probes; otherwise
            # the candidate ways are probed in order.
            if dcp_exact:
                for way in candidates:
                    if tags_state[base + way] == t:
                        dirty[base + way] = 1
                        code_append(100)
                        break
                else:
                    code_append(200)
            else:
                probes = 0
                for way in candidates:
                    probes += 1
                    if tags_state[base + way] == t:
                        dirty[base + way] = 1
                        code_append(100 + probes)
                        break
                else:
                    code_append(200 + probes)
            continue
        # -- read: predict (RLT lookup refreshes recency) -------------------
        pw = rlt_get(prg)
        if pw is None:
            if pred_random:
                c = pcnt[s]
                pcnt[s] = c + 1
                z = (psd + c + _C1) & _M64
                z = ((z ^ (z >> 30)) * _C2) & _M64
                z = ((z ^ (z >> 27)) * _C3) & _M64
                predicted = ((z ^ (z >> 31)) & _M64) % ways
            else:
                predicted = pf
        else:
            del rlt[prg]
            rlt[prg] = pw
            predicted = pw
        if row is not None and predicted not in row:
            # The lookup flow clamps an illegal prediction to the first
            # legal candidate.
            predicted = row[0]
        if tags_state[base + predicted] == t:
            code_append(1)
            if prg in rlt:
                del rlt[prg]
            rlt[prg] = predicted
            if len(rlt) > rlt_entries:
                del rlt[next(iter(rlt))]
            continue
        probes = 1
        hit_way = -1
        for way in candidates:
            if way == predicted:
                continue
            probes += 1
            if tags_state[base + way] == t:
                hit_way = way
                break
        if hit_way >= 0:
            code_append(probes)
            if prg in rlt:
                del rlt[prg]
            rlt[prg] = hit_way
            if len(rlt) > rlt_entries:
                del rlt[next(iter(rlt))]
            continue
        # -- miss: GWS install choice ----------------------------------------
        g = rit_get(rg)
        if g is not None and (row is None or g in row):
            del rit[rg]
            way = g
        else:
            if g is not None:
                # RIT hit outside the candidate set: recency was still
                # refreshed by the lookup; the fallback decides and its
                # record overwrites the stale way.
                del rit[rg]
                rit[rg] = g
            c = cnt1[s]
            z = (sd1 + c + _C1) & _M64
            z = ((z ^ (z >> 30)) * _C2) & _M64
            z = ((z ^ (z >> 27)) * _C3) & _M64
            z ^= z >> 31
            if unbiased:
                cnt1[s] = c + 1
                way = candidates[z % len(candidates)]
            elif dueling:
                if not s & 31:
                    if (s >> 5) & 1:
                        low = False
                        if psel < psel_max:
                            psel += 1
                    else:
                        low = True
                        if psel > 0:
                            psel -= 1
                else:
                    low = psel > psel_mid
                if low:
                    cnt1[s] = c + 1
                    if z / _TWO64 < pip_low:
                        way = pf
                    else:
                        c2 = cnt1[s]
                        cnt1[s] = c2 + 1
                        z = (sd1 + c2 + _C1) & _M64
                        z = ((z ^ (z >> 30)) * _C2) & _M64
                        z = ((z ^ (z >> 27)) * _C3) & _M64
                        z ^= z >> 31
                        alt = z % (ways - 1)
                        way = alt + (alt >= pf)
                else:
                    c2 = cnt2[s]
                    z = (sd2 + c2 + _C1) & _M64
                    z = ((z ^ (z >> 30)) * _C2) & _M64
                    z = ((z ^ (z >> 27)) * _C3) & _M64
                    z ^= z >> 31
                    cnt2[s] = c2 + 1
                    if z / _TWO64 < pip_high:
                        way = pf
                    else:
                        c3 = cnt2[s]
                        cnt2[s] = c3 + 1
                        z = (sd2 + c3 + _C1) & _M64
                        z = ((z ^ (z >> 30)) * _C2) & _M64
                        z = ((z ^ (z >> 27)) * _C3) & _M64
                        z ^= z >> 31
                        alt = z % (ways - 1)
                        way = alt + (alt >= pf)
            else:  # pws / sws: the PIP coin over the candidate set
                if m == 1 or z / _TWO64 < pip:
                    cnt1[s] = c + 1 if m > 1 else c
                    way = pf
                else:
                    c2 = c + 1
                    cnt1[s] = c2 + 1
                    z = (sd1 + c2 + _C1) & _M64
                    z = ((z ^ (z >> 30)) * _C2) & _M64
                    z = ((z ^ (z >> 27)) * _C3) & _M64
                    z ^= z >> 31
                    if row is None:
                        alt = z % (ways - 1)
                        way = alt + (alt >= pf)
                    else:
                        way = row[1 + z % (m - 1)]
        slot = base + way
        code_append(-2 if dirty[slot] else -1)
        tags_state[slot] = t
        dirty[slot] = 0
        if rg in rit:
            del rit[rg]
        rit[rg] = way
        if len(rit) > rit_entries:
            del rit[next(iter(rit))]
        if prg in rlt:
            del rlt[prg]
        rlt[prg] = way
        if len(rlt) > rlt_entries:
            del rlt[next(iter(rlt))]
    return codes


def _decode(plan, n, codes) -> _Outcome:
    """Decode the replay's code column into vector-engine outcome arrays."""
    code_arr = np.array(codes, dtype=np.int64)
    out = _Outcome(n)
    is_hit = (code_arr >= 1) & (code_arr < 100)
    out.hit = is_hit
    out.serialized = np.where(is_hit, code_arr, plan.m)
    out.transfers = out.serialized
    out.correct = is_hit & (code_arr == 1)
    out.victim_dirty = code_arr == -2
    is_wb = code_arr >= 100
    out.wb_absorbed = is_wb & (code_arr < 200)
    out.wb_probes = np.where(is_wb, code_arr % 100, 0)
    return out


# -- the column-associative replay -------------------------------------------


def _replay_ca(cache, stream, warm) -> CacheStats:
    """Fused scalar replay of :class:`ColumnAssociativeCache`.

    Local list/bytearray state instead of dict/set, precomputed index
    columns, and counters accumulated only in the measured window; the
    flow mirrors ``read``/``_fill``/``writeback`` line for line. The CA
    model has no observer hook, so (like the loop engine) the run is
    never phase-resolved and a plain stats fold suffices.
    """
    geometry = cache.geometry
    num_sets = geometry.num_sets
    rehash_bit = 1 << (geometry.index_bits - 1)
    trace = getattr(stream, "trace", None)
    if trace is not None:
        addrs = trace.numpy_addrs()
        writes_a = trace.numpy_writes()
    else:
        addrs = np.asarray(stream.addrs, dtype=np.int64)
        writes_a = np.asarray(stream.writes, dtype=np.uint8)
    lines_a = addrs >> np.int64(geometry.offset_bits)
    firsts_a = lines_a & np.int64(num_sets - 1)

    writes_l = writes_a.tolist()
    lines_l = lines_a.tolist()
    firsts_l = firsts_a.tolist()

    lines = [-1] * num_sets
    dirty = bytearray(num_sets)

    # warmup: state only, no counters
    for w, line, first in zip(
        writes_l[:warm], lines_l[:warm], firsts_l[:warm]
    ):
        second = first ^ rehash_bit
        if w:
            if lines[first] == line:
                dirty[first] = 1
            elif lines[second] == line:
                dirty[second] = 1
            continue
        if lines[first] == line:
            continue
        if lines[second] == line:
            lines[first], lines[second] = lines[second], lines[first]
            dirty[first], dirty[second] = dirty[second], dirty[first]
            continue
        displaced = lines[first]
        if displaced != -1:
            lines[second] = displaced
            dirty[second] = dirty[first]
        lines[first] = line
        dirty[first] = 0

    # measured window
    demand = hits = correct = hit_extra = miss_extra = 0
    swaps = installs = evictions = dirty_ev = nvm_w = 0
    wbs = wb_direct = wb_bypass = 0
    for w, line, first in zip(
        writes_l[warm:], lines_l[warm:], firsts_l[warm:]
    ):
        second = first ^ rehash_bit
        if w:
            wbs += 1
            if lines[first] == line:
                dirty[first] = 1
                wb_direct += 1
            elif lines[second] == line:
                dirty[second] = 1
                wb_direct += 1
            else:
                wb_bypass += 1
                nvm_w += 1
            continue
        demand += 1
        if lines[first] == line:
            hits += 1
            correct += 1
            continue
        if lines[second] == line:
            hits += 1
            hit_extra += 1
            lines[first], lines[second] = lines[second], lines[first]
            dirty[first], dirty[second] = dirty[second], dirty[first]
            swaps += 2
            continue
        miss_extra += 1
        displaced = lines[first]
        if displaced != -1:
            if lines[second] != -1:
                evictions += 1
                if dirty[second]:
                    dirty_ev += 1
                    nvm_w += 1
            lines[second] = displaced
            dirty[second] = dirty[first]
            swaps += 1
        lines[first] = line
        dirty[first] = 0
        installs += 1

    misses = demand - hits
    stats = CacheStats()
    stats.demand_reads = demand
    stats.first_probes = demand
    stats.hits = hits
    stats.misses = misses
    stats.predicted_hits = hits
    stats.correct_predictions = correct
    stats.hit_extra_probes = hit_extra
    stats.miss_extra_probes = miss_extra
    # Every read costs 1 transfer at the preferred index plus 1 more
    # unless it hit there (rehash probe on second-try hits and misses).
    stats.cache_read_transfers = 2 * demand - correct
    stats.swap_transfers = swaps
    stats.installs = installs
    stats.evictions = evictions
    stats.dirty_evictions = dirty_ev
    stats.nvm_reads = misses
    stats.writebacks_in = wbs
    stats.writeback_direct = wb_direct
    stats.writeback_bypass = wb_bypass
    stats.cache_write_transfers = installs + wb_direct
    stats.nvm_writes = nvm_w
    return stats


class SparseReplayEngine:
    """Vectorized pre/post passes around a fused scalar global-state
    replay; covers the designs the vector engine must decline."""

    name = "replay"

    def supports(self, cache) -> bool:
        return (
            cache_is_replay_vectorizable(cache)
            and _build_replay_plan(cache) is not None
        )

    def drive(
        self,
        cache,
        stream,
        warm: int,
        segments: Sequence[Segment],
        epoch: Optional[int],
        *,
        global_epochs: bool = False,
        phase_sink=None,
    ) -> Optional[PhaseSeries]:
        plan = _build_replay_plan(cache)
        if plan is None:
            raise SimulationError(
                "replay engine cannot drive this cache exactly; use the "
                "resolver (repro.sim.engines.resolve_engine) to fall back"
            )
        if plan.family == "ca":
            cache.stats = _replay_ca(cache, stream, warm)
            return None  # the CA model is never phase-resolved
        sets_a, tags_a, writes_a, _steps = _stream_arrays(
            stream, cache.geometry
        )
        trace = getattr(stream, "trace", None)
        if trace is not None:
            addrs = trace.numpy_addrs()
        else:
            addrs = np.asarray(stream.addrs, dtype=np.int64)
        if plan.ways == 2 and plan.steer != "sws":
            codes = _replay_two_way(plan, sets_a, tags_a, writes_a, addrs)
        else:
            codes = _replay_generic(plan, sets_a, tags_a, writes_a, addrs)
        out = _decode(plan, len(sets_a), codes)
        shim = _Plan()
        shim.flow = "predicted"  # all GWS-family designs way-predict
        cache.stats = _window_stats(shim, writes_a, out, warm, len(sets_a))
        if epoch is None:
            return None
        return _phase_series(
            shim, writes_a, out, segments, epoch, global_epochs, phase_sink
        )


__all__ = ["SparseReplayEngine"]
