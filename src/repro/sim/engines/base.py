"""Engine protocol and shared drive-plan helpers.

An *engine* is one strategy for driving a prepared access stream
through a cache: the reference per-address loop, the batched
``run_stream`` loop, or the whole-trace vectorized kernel. All engines
implement the same two-method contract and are bit-identical where they
overlap (asserted by ``tests/test_engines.py``); they differ only in
speed and in which caches they support.

The drive contract
------------------

``drive(cache, stream, warm, segments, epoch, ...)`` owns the *whole*
run: it warms the cache over ``[0, warm)``, resets ``cache.stats`` at
the warm boundary, drives the measured region described by
``segments``, and returns the phase series (or None). ``stream`` is any
object with ``writes`` / ``set_indices`` / ``tags`` / ``addrs``
parallel sequences — a :class:`~repro.sim.trace.TraceShard` qualifies
directly, and :class:`TraceStream` adapts a whole
:class:`~repro.sim.trace.Trace`.

``segments`` is the measurement plan: ``(epoch_id, start, stop)``
triples covering the post-warm records in order (epoch_id None when the
run is not phase-resolved). ``global_epochs`` distinguishes the two
phase-accounting modes:

* False (a serial whole-trace run): epoch ids are local and contiguous
  from 0; samples carry cumulative ``start_access`` and are delivered
  to ``phase_sink`` as they close, matching
  :class:`~repro.sim.phases.PhaseMetrics`.
* True (one shard of a set-sharded run): epoch ids are *global*; the
  engine emits bucket-style samples (``start_access=0``) that
  :meth:`~repro.sim.phases.PhaseSeries.merge` sums across shards,
  matching the shard driver's ``_EpochBuckets`` observer.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.sim.phases import PhaseSeries
from repro.sim.trace import Trace

#: One measured region: (epoch_id or None, start, stop) in stream-local
#: record coordinates.
Segment = Tuple[Optional[int], int, int]


@runtime_checkable
class Engine(Protocol):
    """One way of driving an access stream through a cache."""

    #: Registry name (``--engine`` value).
    name: str

    def supports(self, cache) -> bool:
        """True when this engine can drive ``cache`` exactly."""
        ...

    def drive(
        self,
        cache,
        stream,
        warm: int,
        segments: Sequence[Segment],
        epoch: Optional[int],
        *,
        global_epochs: bool = False,
        phase_sink=None,
    ) -> Optional[PhaseSeries]:
        """Warm, reset stats, run the measured segments; return phases."""
        ...


class TraceStream:
    """Adapts a whole :class:`Trace` to the engine stream interface.

    Every column is resolved lazily: the split columns so engines that
    never touch them (the per-address loop driving a cache without an
    access path) do not pay for the per-geometry decomposition, and the
    ``writes``/``addrs`` lists so array engines driving an array-backed
    trace (mmap'd cache entry or shared-memory segment) never force the
    per-element list materialization.
    """

    __slots__ = ("trace", "geometry", "_columns")

    def __init__(self, trace: Trace, geometry):
        self.trace = trace
        self.geometry = geometry
        self._columns = None

    @property
    def writes(self):
        return self.trace.writes

    @property
    def addrs(self):
        return self.trace.addrs

    def _split(self):
        columns = self._columns
        if columns is None:
            columns = self.trace.split_columns(self.geometry)
            self._columns = columns
        return columns

    @property
    def set_indices(self):
        return self._split().set_indices

    @property
    def tags(self):
        return self._split().tags


def serial_segments(
    trace: Trace, warm: int, epoch: Optional[int]
) -> List[Segment]:
    """Measurement plan for a serial whole-trace run.

    The whole-trace counterpart of :func:`repro.sim.shard.shard_segments`
    (same epoch-id attribution: a read at post-warmup read ordinal ``r``
    belongs to epoch ``r // epoch``, a writeback after ``R`` window
    reads to ``max(R - 1, 0) // epoch``), with record positions being
    simply ``[warm, len(trace))``. Because the full read sequence is
    present, the resulting epoch ids are contiguous from 0.
    """
    n = len(trace)
    if epoch is None:
        return [(None, warm, n)]
    if warm >= n:
        return []
    prefix = trace.read_prefix()
    window_reads = prefix[warm:n] - prefix[warm]
    is_write = trace.numpy_writes()[warm:n]
    epoch_ids = np.where(
        is_write == 0,
        window_reads // epoch,
        np.maximum(window_reads - 1, 0) // epoch,
    )
    boundaries = np.flatnonzero(np.diff(epoch_ids)) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [len(epoch_ids)]))
    return [
        (int(epoch_ids[s]), warm + int(s), warm + int(e))
        for s, e in zip(starts, stops)
    ]


__all__ = ["Engine", "Segment", "TraceStream", "serial_segments"]
