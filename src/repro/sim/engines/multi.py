"""Fused multi-config kernel: K same-trace configs in one vector pass.

A parameter sweep evaluates many configs over one trace, and for the
vectorizable designs most of the kernel's work is *config-independent*:
the sorted step plan, the tag hashes and preferred ways, the SWS
candidate matrix, and — dominating the runtime — the per-rank Python
loop dispatching a handful of numpy ops over small row groups. This
module extends the vector kernel (:mod:`repro.sim.engines.vector`) with
a leading **config axis**: K configs whose kernel plans share a
:func:`plan_signature` evaluate together, sharing every per-access
precompute and gather while keeping per-config state (resident tags,
dirty bits, predictor state, RNG streams) as an extra array dimension.
One pass over the rank groups then costs roughly one config's dispatch
overhead for K configs' worth of work.

What may differ inside one fused group is exactly the per-config data
the kernel parameterizes per row of the config axis: the PIP spill
probability, the counter-based RNG stream bases (functions of the
config seed), and the partial-tag layout. Everything that shapes the
*control flow* — lookup flow, steering family, predictor kind, way
count, set count, hash count, DCP exactness — is part of the signature
and therefore shared.

Outcomes are decoded back into K independent per-config
:class:`~repro.sim.engines.vector._Outcome` row views and folded by the
single-config reductions (``_window_stats`` / ``_phase_series``)
verbatim, so each member's :class:`~repro.sim.stats.CacheStats` and
:class:`~repro.sim.phases.PhaseSeries` are bit-identical to K separate
:class:`~repro.sim.engines.vector.VectorEngine` runs (asserted by
``tests/test_multi.py``). Designs the vector kernel declines fall back
to sequential per-config drives in :func:`repro.exec.batching.run_batch`
— still sharing the trace bytes and the step plan, just not the pass.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.storage import JUNK_TAG
from repro.errors import SimulationError
from repro.sim.engines.base import Segment
from repro.sim.engines.vector import (
    _Outcome,
    _Plan,
    _build_plan,
    _phase_series,
    _simulate,
    _skewed_matrix,
    _stream_arrays,
    _tag_hash_array,
    _window_stats,
    _U64,
)
from repro.sim.phases import PhaseSeries
from repro.sim.stats import CacheStats
from repro.utils.rng import mix64_array, set_stream_seeds

#: Process-local count of fused kernel passes (each covering K >= 2
#: configs); exposed for the batching tests and ``profile`` output.
_FUSED_PASSES = 0
_FUSED_CONFIGS = 0

#: Compact-set remaps memoized per stream-array identity. The ``sets``
#: array itself comes from the per-trace plan memo
#: (:func:`repro.sim.engines.vector._stream_arrays`), so its object
#: identity is stable across the fused passes of one sweep; the entry
#: keeps a reference so an ``id`` reuse can never alias a dead array.
_COMPACT_MEMO: "OrderedDict[int, Tuple]" = OrderedDict()
_COMPACT_MEMO_LIMIT = 8


def _compact_map(sets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``np.unique(sets, return_inverse=True)``, memoized by identity."""
    key = id(sets)
    entry = _COMPACT_MEMO.get(key)
    if entry is not None and entry[0] is sets:
        _COMPACT_MEMO.move_to_end(key)
        return entry[1], entry[2]
    touched, compact = np.unique(sets, return_inverse=True)
    _COMPACT_MEMO[key] = (sets, touched, compact)
    while len(_COMPACT_MEMO) > _COMPACT_MEMO_LIMIT:
        _COMPACT_MEMO.popitem(last=False)
    return touched, compact


def fused_pass_count() -> Tuple[int, int]:
    """(fused kernel passes, configs covered by them) in this process."""
    return _FUSED_PASSES, _FUSED_CONFIGS


def fusion_plan(cache) -> Optional[_Plan]:
    """The cache's vector-kernel plan, or None when not vectorizable."""
    return _build_plan(cache)


def plan_signature(plan: _Plan) -> Tuple:
    """Control-flow identity of a kernel plan.

    Two plans with equal signatures take identical branches through the
    kernel on every access, so they can share one fused pass; the
    remaining plan fields (``pip``, the RNG bases, the partial-tag
    layout) become per-config axis data.
    """
    return (
        plan.flow, plan.steer, plan.pred, plan.ways, plan.num_sets,
        plan.hashes, plan.dcp_exact,
    )


class FusedRun:
    """One member of a fused drive: its plan plus its measurement plan."""

    __slots__ = ("plan", "warm", "segments", "epoch")

    def __init__(
        self,
        plan: _Plan,
        warm: int,
        segments: Sequence[Segment],
        epoch: Optional[int],
    ):
        self.plan = plan
        self.warm = warm
        self.segments = segments
        self.epoch = epoch


def _simulate_fused(
    plans: Sequence[_Plan], sets, tags, writes, steps
) -> List[_Outcome]:
    """K same-signature recurrences in one pass; per-config outcomes.

    Structured exactly like :func:`repro.sim.engines.vector._simulate`
    with a leading config axis: shared quantities stay 1-D ``(rows,)``
    and broadcast, per-config quantities are 2-D ``(K, ...)``, and the
    divergent scatters (miss fills, writeback absorption) go through
    ``np.nonzero`` pair lists into flattened per-config state. Draw
    counter advancement is masked — a config consumes a stream value
    only where the scalar model would — so every config's RNG sequence
    is bit-identical to its solo run.

    State is allocated over the trace's *touched* sets only: set
    indices are remapped to compact ids (``np.unique``) so the K-fold
    resident/dirty/counter arrays scale with the trace footprint rather
    than the geometry (a short trace touches a few tens of thousands of
    a scaled geometry's hundreds of thousands of sets). Untouched sets
    hold junk tags and zero counters in the scalar model and are never
    read, so dropping them changes nothing; the per-access RNG stream
    seeds are still derived from the *original* set indices, keeping
    every draw bit-identical.
    """
    K = len(plans)
    p0 = plans[0]
    for p in plans[1:]:
        if plan_signature(p) != plan_signature(p0):
            raise SimulationError(
                "fused kernel requires plans with identical signatures"
            )
    n = len(sets)
    ways = p0.ways
    flow = p0.flow
    steer = p0.steer
    pred = p0.pred

    # Config-last layout: every per-access quantity is ``(rows, K)`` and
    # every state array is ``(slots, K)``, so all gathers and scatters
    # indexed by a row list touch contiguous K-wide strips (one memcpy
    # per row) instead of K strided columns. Outcomes are accumulated
    # ``(n, K)`` — probe counts as int16, large enough for any value up
    # to ``ways + 2`` — and transposed/widened once at decode time, so
    # each decoded row matches a solo run's int64 outcome exactly.
    # ``transfers`` equals ``serialized`` for every flow except
    # parallel; decode shares the array rather than accumulating both.
    hit = np.zeros((n, K), dtype=bool)
    serialized_out = np.zeros((n, K), dtype=np.int16)
    transfers_out = (
        np.zeros((n, K), dtype=np.int16) if flow == "parallel" else None
    )
    correct = np.zeros((n, K), dtype=bool)
    victim_dirty = np.zeros((n, K), dtype=bool)
    wb_absorbed = np.zeros((n, K), dtype=bool)
    wb_probes = np.zeros((n, K), dtype=np.int16)

    def decode() -> List[_Outcome]:
        serializedT = np.ascontiguousarray(serialized_out.T).astype(np.int64)
        if transfers_out is None:
            transfersT = serializedT
        else:
            transfersT = np.ascontiguousarray(
                transfers_out.T
            ).astype(np.int64)
        probesT = np.ascontiguousarray(wb_probes.T).astype(np.int64)
        hitT = np.ascontiguousarray(hit.T)
        correctT = np.ascontiguousarray(correct.T)
        victimT = np.ascontiguousarray(victim_dirty.T)
        absorbedT = np.ascontiguousarray(wb_absorbed.T)
        outs = []
        for k in range(K):
            out = _Outcome.__new__(_Outcome)
            out.hit = hitT[k]
            out.serialized = serializedT[k]
            out.transfers = transfersT[k]
            out.correct = correctT[k]
            out.victim_dirty = victimT[k]
            out.wb_absorbed = absorbedT[k]
            out.wb_probes = probesT[k]
            outs.append(out)
        return outs

    if n == 0:
        return decode()

    if steer == "sws":
        m = p0.hashes
    elif steer == "direct":
        m = 1
    else:
        m = ways

    # Compact-set remap: per-config state covers touched sets only.
    # RNG seeds below keep using the original ``sets`` indices.
    touched, compact = _compact_map(sets)
    num_slots = len(touched)
    slot0 = compact * ways

    need_pref = (
        steer in ("pws", "sws")
        or (steer == "direct" and ways > 1)
        or pred in ("static", "perfect", "ptag")
    )
    pref = None
    if need_pref:
        pref = (_tag_hash_array(tags) & _U64(ways - 1)).astype(np.int64)

    cand_matrix = None
    if steer == "sws":
        cand_matrix = _skewed_matrix(
            _tag_hash_array(tags), pref, ways, p0.hashes
        )
    elif steer == "direct":
        cand0 = pref if ways > 1 else np.zeros(n, dtype=np.int64)
        cand_matrix = cand0[:, None]

    wanted = None
    if pred == "ptag":
        # The partial-tag layout is per-config data (bits are not part
        # of the signature), so the wanted-tag matrix gets a config axis.
        hashed_tags = mix64_array(tags.astype(_U64))
        wanted = np.stack(
            [
                (
                    (hashed_tags & _U64(p.ptag_mask))
                    | _U64(1 << p.ptag_bits)
                ).astype(np.int64)
                for p in plans
            ],
            axis=1,
        )

    def config_seeds(attr: str) -> np.ndarray:
        """Per-set stream seeds: ``(n,)`` when every config shares the
        stream base (the common sweep case — bases derive from the run
        seed, not the swept parameter), ``(n, K)`` otherwise."""
        bases = [getattr(p, attr) for p in plans]
        memo = {}
        for b in bases:
            if b not in memo:
                memo[b] = set_stream_seeds(b, sets)
        if len(memo) == 1:
            return memo[bases[0]]
        return np.stack([memo[b] for b in bases], axis=1)

    def seed_rows(seeds, rows):
        """Seed block broadcastable against ``(len(rows), K)``."""
        return seeds[rows][:, None] if seeds.ndim == 1 else seeds[rows]

    def seed_pairs(seeds, prows, kk):
        """Seeds for a ``(row, config)`` pair list."""
        return seeds[prows] if seeds.ndim == 1 else seeds[prows, kk]

    # Draw counters live in the seeds' uint64 domain so the per-draw
    # ``seed + count`` additions need no widening casts.
    repl_seeds = repl_count = None
    if steer == "all":
        repl_seeds = config_seeds("repl_base")
        repl_count = np.zeros((num_slots, K), dtype=_U64)
    steer_seeds = steer_count = None
    if steer in ("pws", "sws") and m > 1:
        steer_seeds = config_seeds("steer_base")
        steer_count = np.zeros((num_slots, K), dtype=_U64)
    pred_seeds = pred_count = None
    if pred == "random":
        pred_seeds = config_seeds("pred_base")
        pred_count = np.zeros((num_slots, K), dtype=_U64)

    tags_state = np.full((num_slots * ways, K), JUNK_TAG, dtype=np.int64)
    dirty = np.zeros((num_slots * ways, K), dtype=np.uint8)
    mru = np.zeros((num_slots, K), dtype=np.int64) if pred == "mru" else None
    ptags = (
        np.zeros((num_slots * ways, K), dtype=np.int64)
        if pred == "ptag"
        else None
    )
    # Flat views for the pair-list scatters (C-contiguous by construction;
    # element (slot, k) lives at flat index slot * K + k).
    tags_flat = tags_state.reshape(-1)
    dirty_flat = dirty.reshape(-1)
    ptags_flat = ptags.reshape(-1) if ptags is not None else None

    way_range = np.arange(m, dtype=np.int64)

    def scan(rows, row_tags, base):
        """First candidate position/way holding the tag, per config.

        One block gather pulls all m candidate slots of every row —
        ``(rows, m, K)`` — and ``argmax`` over the candidate axis finds
        the first match (a tag resides in at most one way of a set, so
        "first" and "only" coincide). ``way_pos``/``way_phys`` are
        meaningless where ``found`` is False; every consumer masks.
        ``m == 2`` (the common associativity) takes a flat path: two
        2-D gathers and a select beat the 3-D gather + argmax.
        """
        if m == 2:
            wide = row_tags[:, None]
            if cand_matrix is None:
                eq0 = tags_state[base] == wide
                eq1 = tags_state[base + 1] == wide
                way_phys = way_pos = np.where(eq0, 0, 1)
            else:
                c0 = cand_matrix[rows, 0]
                c1 = cand_matrix[rows, 1]
                eq0 = tags_state[base + c0] == wide
                eq1 = tags_state[base + c1] == wide
                way_pos = np.where(eq0, 0, 1)
                way_phys = np.where(eq0, c0[:, None], c1[:, None])
            return eq0 | eq1, way_pos, way_phys
        if cand_matrix is not None:
            cand_rows = cand_matrix[rows]
            block = tags_state[base[:, None] + cand_rows]
        else:
            cand_rows = None
            block = tags_state[base[:, None] + way_range]
        eq = block == row_tags[:, None, None]
        found = eq.any(axis=1)
        way_pos = eq.argmax(axis=1)
        if cand_rows is None:
            way_phys = way_pos
        else:
            way_phys = cand_rows[
                np.arange(len(rows))[:, None], way_pos
            ]
        return found, way_pos, way_phys

    two_pow_64 = float(2.0 ** 64)
    pip_arr = np.array([p.pip for p in plans], dtype=np.float64)

    def step_reads(rows):
        shape = (len(rows), K)
        row_sets = compact[rows]
        row_tags = tags[rows]
        base = slot0[rows]
        found, way_pos, way_phys = scan(rows, row_tags, base)
        # -- flow costs ----------------------------------------------------
        if flow == "parallel":
            serialized = np.ones(shape, dtype=np.int16)
            transfers = np.full(shape, m, dtype=np.int16)
        elif flow == "ideal":
            serialized = np.ones(shape, dtype=np.int16)
            transfers = serialized
        elif flow == "serial":
            serialized = np.where(found, way_pos + 1, m)
            transfers = serialized
        else:  # predicted
            if pred == "static":
                predicted = np.broadcast_to(pref[rows][:, None], shape)
            elif pred == "random":
                u = mix64_array(
                    seed_rows(pred_seeds, rows) + pred_count[row_sets]
                )
                pred_count[row_sets] += 1
                predicted = (u % _U64(ways)).astype(np.int64)
            elif pred == "mru":
                predicted = mru[row_sets]
            elif pred == "perfect":
                predicted = np.where(found, way_phys, pref[rows][:, None])
            else:  # ptag: first way whose partial tag matches, per config
                pblock = ptags[base[:, None] + np.arange(ways)]
                peq = pblock == wanted[rows][:, None, :]
                predicted = np.where(
                    peq.any(axis=1),
                    peq.argmax(axis=1),
                    pref[rows][:, None],
                )
            if cand_matrix is not None:
                # Clamp to the candidate set: position of the predicted
                # way among the candidates, else candidate 0.
                ceq = cand_matrix[rows][:, :, None] == predicted[:, None, :]
                in_cand = ceq.any(axis=1)
                pos_pred = ceq.argmax(axis=1)
                predicted = np.where(
                    in_cand, predicted, cand_matrix[rows, 0][:, None]
                )
            else:
                pos_pred = predicted  # candidate j is way j
            hit_on_pred = found & (way_phys == predicted)
            serialized = np.where(
                hit_on_pred,
                1,
                np.where(
                    found,
                    np.where(pos_pred < way_pos, way_pos + 1, way_pos + 2),
                    m,
                ),
            )
            transfers = serialized
            correct[rows] = hit_on_pred
        hit[rows] = found
        serialized_out[rows] = serialized
        if transfers_out is not None:
            transfers_out[rows] = transfers
        # -- hit-side state ------------------------------------------------
        if pred == "mru" and found.any():
            rr, kk = np.nonzero(found)
            mru[row_sets[rr], kk] = way_phys[rr, kk]
        # -- miss fill (pair space: one entry per missing (row, config)) ---
        rr, kk = np.nonzero(~found)
        if not len(rr):
            return
        miss_rows = rows[rr]
        base_p = base[rr]
        if steer == "direct":
            install_p = cand_matrix[miss_rows, 0]
        elif steer == "all":
            sets_p = row_sets[rr]
            u = mix64_array(
                seed_pairs(repl_seeds, miss_rows, kk) + repl_count[sets_p, kk]
            )
            repl_count[sets_p, kk] += 1
            install_p = (u % _U64(ways)).astype(np.int64)
        else:  # pws / sws: the PIP coin over the candidate set
            pref_p = pref[miss_rows]
            if m == 1:
                install_p = pref_p
            else:
                # Sequential draws of one stream: u1 at counter c, u2 at
                # c + 1; a config's counter advances once per miss and
                # once more per spill, exactly as the scalar streams.
                # Only miss pairs consume draws, so only they compute.
                sets_p = row_sets[rr]
                seeds_p = seed_pairs(steer_seeds, miss_rows, kk)
                counter = steer_count[sets_p, kk]
                u1 = mix64_array(seeds_p + counter)
                spill = ~(
                    (u1.astype(np.float64) / two_pow_64) < pip_arr[kk]
                )
                u2 = mix64_array(seeds_p + counter + _U64(1))
                steer_count[sets_p, kk] += spill + _U64(1)
                if steer == "pws":
                    alt = (u2 % _U64(ways - 1)).astype(np.int64)
                    install_p = np.where(
                        spill, alt + (alt >= pref_p), pref_p
                    )
                else:
                    alt = (u2 % _U64(m - 1)).astype(np.int64)
                    alt_way = cand_matrix[miss_rows, 1 + alt]
                    install_p = np.where(spill, alt_way, pref_p)
        slots = (base_p + install_p) * K + kk
        victim_dirty[miss_rows, kk] = dirty_flat[slots] != 0
        tags_flat[slots] = tags[miss_rows]
        dirty_flat[slots] = 0
        if pred == "mru":
            mru[row_sets[rr], kk] = install_p
        elif pred == "ptag":
            # on_evict zeroes the slot, on_install overwrites it.
            ptags_flat[slots] = wanted[miss_rows, kk]

    def step_writebacks(rows):
        row_tags = tags[rows]
        base = slot0[rows]
        found, way_pos, way_phys = scan(rows, row_tags, base)
        if not p0.dcp_exact:
            # No way information: probe the candidate ways in order.
            wb_probes[rows] = np.where(found, way_pos + 1, m)
        wb_absorbed[rows] = found
        rr, kk = np.nonzero(found)
        if len(rr):
            dirty_flat[(base[rr] + way_phys[rr, kk]) * K + kk] = 1

    for read_rows, wb_rows in steps:
        if len(read_rows):
            step_reads(read_rows)
        if len(wb_rows):
            step_writebacks(wb_rows)
    return decode()


def drive_fused(
    runs: Sequence[FusedRun], stream, geometry
) -> List[Tuple[CacheStats, Optional[PhaseSeries]]]:
    """Drive K same-signature runs over one stream in one fused pass.

    Returns ``(stats, phases)`` per run, in order, each bit-identical
    to a solo :class:`~repro.sim.engines.vector.VectorEngine` drive of
    that run's cache: the shared stream arrays come from the same
    per-trace memo, and each decoded outcome goes through the
    single-config reductions unchanged. ``K == 1`` is accepted (it
    degenerates to a solo drive through the 2-D code path) but callers
    should prefer the plain engine there.
    """
    global _FUSED_PASSES, _FUSED_CONFIGS
    if not runs:
        return []
    plans = [run.plan for run in runs]
    sets, tags, writes, steps = _stream_arrays(stream, geometry)
    if len(runs) == 1:
        outs = [_simulate(plans[0], sets, tags, writes, steps)]
    else:
        outs = _simulate_fused(plans, sets, tags, writes, steps)
        _FUSED_PASSES += 1
        _FUSED_CONFIGS += len(runs)
    results = []
    for run, out in zip(runs, outs):
        stats = _window_stats(run.plan, writes, out, run.warm, len(sets))
        phases = None
        if run.epoch is not None:
            phases = _phase_series(
                run.plan, writes, out, run.segments, run.epoch, False, None
            )
        results.append((stats, phases))
    return results


__all__ = [
    "FusedRun",
    "drive_fused",
    "fused_pass_count",
    "fusion_plan",
    "plan_signature",
]
