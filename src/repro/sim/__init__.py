"""Simulation engines: stats, traces, timing models, system glue.

Attribute access is lazy (PEP 562): ``repro.sim.system`` pulls in the
cache and core packages, while low-level modules like
``repro.sim.stats`` are imported *by* those packages — eager re-exports
here would create an import cycle.
"""

from repro.sim.phases import PhaseMetrics, PhaseSample, PhaseSeries
from repro.sim.stats import CacheStats
from repro.sim.trace import Trace, TraceRecord, trace_from_arrays

__all__ = [
    "CacheStats",
    "PhaseMetrics",
    "PhaseSample",
    "PhaseSeries",
    "Trace",
    "TraceRecord",
    "trace_from_arrays",
    "IntervalTimingModel",
    "TimingBreakdown",
    "DesignSpec",
    "RunResult",
    "Simulator",
    "build_dram_cache",
    "run_design",
    "run_suite",
    "geometric_mean",
    "TraceFactory",
    "DetailedEngine",
    "ScheduledEngine",
    "MultiCoreSimulator",
    "profile_trace",
    "TraceProfile",
    "CacheCheckpoint",
]

_LAZY = {
    "IntervalTimingModel": ("repro.sim.timing_model", "IntervalTimingModel"),
    "TimingBreakdown": ("repro.sim.timing_model", "TimingBreakdown"),
    "DesignSpec": ("repro.sim.system", "DesignSpec"),
    "RunResult": ("repro.sim.system", "RunResult"),
    "Simulator": ("repro.sim.system", "Simulator"),
    "build_dram_cache": ("repro.sim.system", "build_dram_cache"),
    "run_design": ("repro.sim.runner", "run_design"),
    "run_suite": ("repro.sim.runner", "run_suite"),
    "geometric_mean": ("repro.sim.runner", "geometric_mean"),
    "TraceFactory": ("repro.sim.runner", "TraceFactory"),
    "DetailedEngine": ("repro.sim.detailed", "DetailedEngine"),
    "ScheduledEngine": ("repro.sim.scheduled", "ScheduledEngine"),
    "MultiCoreSimulator": ("repro.sim.multicore", "MultiCoreSimulator"),
    "profile_trace": ("repro.sim.profile", "profile_trace"),
    "TraceProfile": ("repro.sim.profile", "TraceProfile"),
    "CacheCheckpoint": ("repro.sim.checkpoint", "CacheCheckpoint"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
