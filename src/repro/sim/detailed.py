"""Cycle-level detailed memory-system engine.

Replays a trace against the banked HBM device and NVM device models
(:mod:`repro.mem`), honouring row-buffer state, per-bank occupancy and
per-channel bus serialization. Orders of magnitude slower than the
interval model, so it is used for validation (tests assert that the
interval model's latency components bracket the detailed engine's
averages) and for row-buffer-sensitive micro-studies, not for the full
sweeps.

The engine processes requests in order with a simple MLP window: up to
``window`` requests may overlap; the completion time of a request is
the max of its issue time and its device response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.dram_cache import DramCache
from repro.errors import SimulationError
from repro.mem.bank import RefreshController
from repro.mem.dram import DramDevice
from repro.mem.nvm import NvmDevice
from repro.params.system import SystemConfig
from repro.sim.trace import Trace


@dataclass
class DetailedResult:
    """Aggregate timing from a detailed replay."""

    total_ns: float
    demand_reads: int
    total_read_latency_ns: float
    dram_row_hit_rate: float
    nvm_reads: int
    nvm_writes: int

    @property
    def avg_read_latency_ns(self) -> float:
        if not self.demand_reads:
            return 0.0
        return self.total_read_latency_ns / self.demand_reads


class DetailedEngine:
    """Cycle-level replay of a trace through a functional DRAM cache."""

    def __init__(self, config: SystemConfig, cache: DramCache, window: int = 8,
                 refresh: Optional[RefreshController] = None):
        if window < 1:
            raise SimulationError("MLP window must be >= 1")
        self.config = config
        self.cache = cache
        self.window = window
        self.dram = DramDevice(config.dram_timing, config.dram_bus)
        self.nvm = NvmDevice(config.nvm_timing, config.nvm_bus)
        self.refresh = refresh

    def replay(self, trace: Trace, issue_interval_ns: Optional[float] = None) -> DetailedResult:
        """Replay every request, tracking per-request completion times.

        ``issue_interval_ns`` is the core-side arrival spacing; by
        default it is derived from the trace's instruction density and
        the configured base CPI.
        """
        core = self.config.cores
        if issue_interval_ns is None:
            issue_interval_ns = (
                trace.instructions_per_access * core.base_cpi / core.frequency_ghz
            )
        now = 0.0
        # Completion times of the last `window` requests (MLP limiter).
        outstanding = []
        reads = 0
        total_read_latency = 0.0

        for addr, is_write in zip(trace.addrs, trace.writes):
            now += issue_interval_ns
            if len(outstanding) >= self.window:
                oldest = outstanding.pop(0)
                now = max(now, oldest)
            done = self._service(addr, bool(is_write), now)
            outstanding.append(done)
            if not is_write:
                reads += 1
                total_read_latency += done - now

        finish = max([now] + outstanding)
        return DetailedResult(
            total_ns=finish,
            demand_reads=reads,
            total_read_latency_ns=total_read_latency,
            dram_row_hit_rate=self.dram.row_hit_rate(),
            nvm_reads=self.nvm.reads,
            nvm_writes=self.nvm.writes,
        )

    def _service(self, addr: int, is_write: bool, now: float) -> float:
        """Run one request through the functional cache + timing devices."""
        geometry = self.cache.geometry
        set_index = geometry.set_index(addr)
        if self.refresh is not None:
            for channel in self.dram.channels:
                self.refresh.apply(channel.banks, now)

        if is_write:
            absorbed = self.cache.writeback(addr)
            if absorbed:
                response = self.dram.access_set(set_index, 1, now)
                return response.ready_ns
            response = self.nvm.write_line(addr, now)
            return response.ready_ns

        outcome = self.cache.read(addr)
        # Serialized probes: each dependent access re-touches the set's
        # row (the first may miss the row, follow-ups hit it).
        ready = now
        for _ in range(outcome.serialized_accesses):
            response = self.dram.access_set(set_index, 1, ready)
            ready = response.ready_ns
        if outcome.nvm_read:
            response = self.nvm.read_line(addr, ready)
            ready = response.ready_ns
            # Fill write to the cache happens off the critical path; we
            # still occupy the DRAM bus for it.
            self.dram.access_set(set_index, 1, ready)
        return ready
