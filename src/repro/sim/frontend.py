"""CPU front-end: raw load/store streams through the SRAM hierarchy.

The experiment harness drives the DRAM cache with L3-miss-level traces
directly (fast). This module models the step the paper's simulator
performs before that: a core issuing *raw* loads and stores that filter
through L1/L2/L3 (:mod:`repro.cache.sram`), with only L3 misses and L3
dirty evictions reaching the DRAM cache.

Its headline use is reproducing the paper's Section II-D observation:
temporal locality visible at L1 is *filtered out* by the SRAM levels,
which is why MRU way prediction works for L1 but collapses at the
DRAM cache. `repro.experiments.ablations` exposes this as the
``mru-filtering`` study and `tests/test_frontend.py` asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.errors import SimulationError, WorkloadError
from repro.params.system import LINE_SIZE
from repro.sim.trace import Trace
from repro.utils.rng import XorShift64, mix64


@dataclass(frozen=True)
class FrontendSpec:
    """Raw-access-stream parameters for one synthetic core.

    Models the locality structure the SRAM hierarchy feeds on:
    ``burst_lines`` consecutive lines per object visit (L1/L2 spatial
    hits), ``revisit_prob`` immediate revisits of the last few objects
    (the temporal locality L1 absorbs), a working set of
    ``hot_objects`` out of ``total_objects``.
    """

    total_objects: int = 16_000
    hot_objects: int = 500
    hot_fraction: float = 0.85
    burst_lines: int = 8
    words_per_line: int = 4  # word-granular touches per line (L1 reuse)
    revisit_prob: float = 0.55
    revisit_window: int = 8
    write_frac: float = 0.25
    object_span_lines: int = 64  # objects are page-sized by default

    def __post_init__(self):
        if self.hot_objects > self.total_objects:
            raise WorkloadError("hot set larger than the object space")
        if not 0 <= self.hot_fraction <= 1:
            raise WorkloadError("hot_fraction out of range")
        if self.burst_lines < 1 or self.burst_lines > self.object_span_lines:
            raise WorkloadError("burst_lines out of range")
        if self.words_per_line < 1 or self.words_per_line > LINE_SIZE // 8:
            raise WorkloadError("words_per_line out of range")
        if self.revisit_window < 1:
            raise WorkloadError("revisit_window must be positive")


class RawAccessGenerator:
    """Produces the raw (pre-L1) access stream of one core."""

    def __init__(self, spec: FrontendSpec, seed: int = 1):
        self.spec = spec
        self._rng = XorShift64(seed)
        self._salt = mix64(seed ^ 0xF00D)
        self._recent = []

    def _pick_object(self) -> int:
        rng = self._rng
        spec = self.spec
        if self._recent and rng.next_bool(spec.revisit_prob):
            return self._recent[rng.next_below(len(self._recent))]
        if rng.next_bool(spec.hot_fraction):
            obj = rng.next_below(spec.hot_objects)
        else:
            obj = rng.next_below(spec.total_objects)
        # Scatter object ids over the address space.
        obj = mix64(obj ^ self._salt) % spec.total_objects
        self._recent.append(obj)
        if len(self._recent) > spec.revisit_window:
            self._recent.pop(0)
        return obj

    def accesses(self, count: int):
        """Yield ``count`` (addr, is_write) raw accesses."""
        if count < 1:
            raise WorkloadError("count must be positive")
        spec = self.spec
        rng = self._rng
        emitted = 0
        while emitted < count:
            obj = self._pick_object()
            base = obj * spec.object_span_lines * LINE_SIZE
            start = rng.next_below(spec.object_span_lines - spec.burst_lines + 1)
            for i in range(spec.burst_lines):
                line_base = base + (start + i) * LINE_SIZE
                # Several word-granular touches per line: the reuse an
                # L1 feeds on and the L3 filters out.
                for word in range(spec.words_per_line):
                    is_write = rng.next_bool(spec.write_frac)
                    yield line_base + word * 8, is_write
                    emitted += 1
                    if emitted >= count:
                        return


@dataclass
class FrontendResult:
    """What reached each level of the hierarchy."""

    raw_accesses: int
    l1_hit_rate: float
    l2_hit_rate: float
    l3_hit_rate: float
    dram_cache_reads: int
    dram_cache_trace: Trace

    @property
    def filter_rate(self) -> float:
        """Fraction of raw accesses absorbed before the DRAM cache."""
        if not self.raw_accesses:
            return 0.0
        return 1.0 - self.dram_cache_reads / self.raw_accesses


class _RecordingSink:
    """Stands in for the DRAM cache below L3: records the miss stream."""

    def __init__(self):
        self.addrs = []
        self.writes = bytearray()

    def read(self, addr: int):
        self.addrs.append(addr)
        self.writes.append(0)

    def writeback(self, addr: int):
        self.addrs.append(addr)
        self.writes.append(1)
        return True


def run_frontend(
    spec: FrontendSpec,
    raw_accesses: int,
    seed: int = 1,
    l1: Optional[CacheGeometry] = None,
    l2: Optional[CacheGeometry] = None,
    l3: Optional[CacheGeometry] = None,
    instructions_per_access: float = 3.0,
) -> FrontendResult:
    """Filter a raw stream through L1/L2/L3; return the L4-bound trace.

    ``instructions_per_access`` is instructions per *raw* memory access
    (roughly 1/3 of instructions touch memory); the resulting trace's
    instruction weight is rescaled to the filtered stream so CPI math
    stays consistent.
    """
    if raw_accesses < 1:
        raise SimulationError("need at least one access")
    sink = _RecordingSink()
    hierarchy = CacheHierarchy(sink, l1_geometry=l1, l2_geometry=l2,
                               l3_geometry=l3)
    generator = RawAccessGenerator(spec, seed=seed)
    for addr, is_write in generator.accesses(raw_accesses):
        hierarchy.access(addr, is_write)

    stats = hierarchy.stats
    l1_rate = hierarchy.l1.hit_rate()
    l2_rate = hierarchy.l2.hit_rate()
    l3_rate = hierarchy.l3.hit_rate()
    reads = sum(1 for w in sink.writes if not w)
    ipa = (
        instructions_per_access * raw_accesses / max(reads, 1)
    )
    trace = Trace("frontend", sink.addrs, sink.writes, ipa)
    return FrontendResult(
        raw_accesses=stats.cpu_accesses,
        l1_hit_rate=l1_rate,
        l2_hit_rate=l2_rate,
        l3_hit_rate=l3_rate,
        dram_cache_reads=reads,
        dram_cache_trace=trace,
    )


def mru_accuracy_at_level(trace_like: Tuple, geometry: CacheGeometry,
                          seed: int = 1) -> float:
    """Measure MRU way-prediction accuracy over an access stream.

    ``trace_like`` is an iterable of (addr, is_write); writes are
    ignored. Used to compare MRU's accuracy on the raw stream (L1-like
    locality) vs the L3-filtered stream (DRAM-cache reality).
    """
    from repro.cache.dram_cache import DramCache
    from repro.cache.lookup import WayPredictedLookup
    from repro.cache.replacement import RandomReplacement
    from repro.core.prediction import MruPredictor
    from repro.core.steering import UnbiasedSteering

    cache = DramCache(
        geometry,
        lookup=WayPredictedLookup(),
        steering=UnbiasedSteering(geometry),
        predictor=MruPredictor(geometry),
        replacement=RandomReplacement(XorShift64(seed)),
    )
    for addr, is_write in trace_like:
        if not is_write:
            cache.read(addr)
    return cache.stats.prediction_accuracy
