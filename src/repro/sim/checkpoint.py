"""Cache-state checkpointing.

Long warmups dominate experiment runtime when sweeping many designs
over one workload. A checkpoint captures the *functional* state of a
DRAM cache after warmup — tag store contents, dirty bits and the DCP
directory — so later runs can resume from it instead of replaying the
warmup trace. Policy tables (RIT/RLT, PSEL) are intentionally not
captured: they re-warm within a few thousand accesses and belong to the
design under test, not the workload state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List

from repro.cache.dram_cache import DramCache
from repro.errors import SimulationError

_FORMAT = "repro-cache-checkpoint-v1"


@dataclass
class CacheCheckpoint:
    """Snapshot of a cache's resident lines."""

    capacity_bytes: int
    ways: int
    line_size: int
    # Parallel lists: (set, way, tag, dirty) for every valid non-junk line.
    entries: List[List[int]]

    @classmethod
    def capture(cls, cache: DramCache) -> "CacheCheckpoint":
        """Snapshot every valid, non-junk line of the cache."""
        from repro.cache.storage import JUNK_TAG

        geometry = cache.geometry
        store = cache.store
        entries: List[List[int]] = []
        for set_index in range(geometry.num_sets):
            for way in range(geometry.ways):
                tag = store.tag_at(set_index, way)
                if tag < 0 or tag == JUNK_TAG:
                    continue
                dirty = 1 if store.is_dirty(set_index, way) else 0
                entries.append([set_index, way, tag, dirty])
        return cls(
            capacity_bytes=geometry.capacity_bytes,
            ways=geometry.ways,
            line_size=geometry.line_size,
            entries=entries,
        )

    def restore(self, cache: DramCache) -> int:
        """Load the snapshot into a compatible cache; returns line count.

        The target must share the geometry. The DCP directory is
        rebuilt so writebacks remain consistent.
        """
        geometry = cache.geometry
        if (geometry.capacity_bytes, geometry.ways, geometry.line_size) != (
            self.capacity_bytes, self.ways, self.line_size,
        ):
            raise SimulationError(
                "checkpoint geometry does not match the target cache"
            )
        for set_index, way, tag, dirty in self.entries:
            cache.store.install(set_index, way, tag, dirty=bool(dirty))
            if cache.dcp is not None:
                addr = geometry.addr_of(set_index, tag)
                cache.dcp.insert(geometry.line_addr(addr), way)
        return len(self.entries)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        payload = {
            "format": _FORMAT,
            "capacity_bytes": self.capacity_bytes,
            "ways": self.ways,
            "line_size": self.line_size,
            "entries": self.entries,
        }
        with open(path, "w", encoding="ascii") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path: str) -> "CacheCheckpoint":
        with open(path, "r", encoding="ascii") as handle:
            payload: Dict = json.load(handle)
        if payload.get("format") != _FORMAT:
            raise SimulationError(f"{path}: not a cache checkpoint")
        return cls(
            capacity_bytes=payload["capacity_bytes"],
            ways=payload["ways"],
            line_size=payload["line_size"],
            entries=[list(map(int, entry)) for entry in payload["entries"]],
        )
