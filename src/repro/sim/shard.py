"""Set-sharded intra-run parallelism with a deterministic merge.

One full-length simulation normally occupies a single core. For most
designs, though, every piece of cache state consulted for set *s* —
tag-store row, per-set replacement metadata, per-set random streams,
the exact DCP entries of lines mapping to *s* — depends only on the
accesses to set *s*. Such a run decomposes exactly: partition the trace
into set-range shards (:meth:`repro.sim.trace.Trace.shard`), run each
shard against its own cache instance in a worker process, and sum the
:class:`~repro.sim.stats.CacheStats` counters and per-epoch
:class:`~repro.sim.phases.PhaseSeries` buckets. The merged result is
*bit-identical* to the serial run — the equivalence suite in
``tests/test_shard.py`` asserts it per design.

Which designs qualify is declared, not guessed: every policy role
carries the ``shardable`` capability
(:func:`repro.core.protocols.cache_is_shardable`). GWS's global RIT/RLT
region tables, set-dueling's PSEL counter, the finite DCP directory's
LRU capacity bound, and the column-associative cache's cross-set
alternate location all declare ``False``, and those designs fall back
to the exact serial path with a one-time warning — never sharded
silently wrong.

Phase-resolved runs stay exact too: epoch boundaries are counted in
*global* post-warmup demand reads, so each shard precomputes its
records' global epoch ids from the trace's read-prefix array and drives
one :meth:`run_stream` segment per epoch with a bucket observer
attached; the merge sums buckets per global epoch index.

Nested-parallelism guard: a worker process (detected via the
``daemon`` flag or the ``REPRO_POOL_WORKER`` environment marker set by
pool initializers) never spawns a grandchild pool — :func:`run_sharded`
runs inline/serial there instead.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.accord import AccordDesign
from repro.core.protocols import cache_is_shardable, unshardable_roles
from repro.errors import SimulationError
from repro.params.system import SystemConfig
from repro.sim.engines import get_engine, resolve_engine
from repro.sim.phases import PhaseSample, PhaseSeries
from repro.sim.stats import CacheStats
from repro.sim.system import RunResult, Simulator, build_dram_cache
from repro.sim.timing_model import IntervalTimingModel
from repro.sim.trace import Trace, TraceShard

#: Environment marker set in every pool worker (executor jobs and shard
#: workers alike) so library code can refuse to nest process pools.
WORKER_ENV = "REPRO_POOL_WORKER"


def in_worker_process() -> bool:
    """True when running inside a worker process.

    Detects both daemonic children (``multiprocessing.Pool`` style) and
    non-daemonic ``ProcessPoolExecutor`` workers, which advertise
    themselves through the :data:`WORKER_ENV` marker set by
    :func:`mark_worker_process` at pool start. Used as the nested-pool
    guard: shard fan-out inside a worker runs inline instead of
    spawning grandchildren.
    """
    if os.environ.get(WORKER_ENV) == "1":
        return True
    return bool(getattr(multiprocessing.current_process(), "daemon", False))


def mark_worker_process() -> None:
    """Pool initializer: brand this process as a worker (see above)."""
    os.environ[WORKER_ENV] = "1"


def effective_shard_count(shards: int, num_sets: int) -> int:
    """Shards actually usable: >= 1, at most one per set."""
    return max(1, min(shards, num_sets))


# -- shard outcome -----------------------------------------------------------


@dataclass
class ShardOutcome:
    """What one shard measured: counters plus optional phase buckets.

    ``phases`` samples are indexed by *global* epoch id (their
    ``start_access`` is meaningless until merge rebuilds it).
    ``instructions_per_access`` rides along so the merge can evaluate
    the timing model without the trace in hand.
    """

    stats: CacheStats
    phases: Optional[PhaseSeries]
    workload: str
    instructions_per_access: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (journal shard records); inverse of from_dict."""
        return {
            "stats": self.stats.to_dict(),
            "phases": self.phases.to_dict() if self.phases is not None else None,
            "workload": self.workload,
            "instructions_per_access": self.instructions_per_access,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardOutcome":
        try:
            phases = data.get("phases")
            return cls(
                stats=CacheStats.from_dict(data["stats"]),
                phases=PhaseSeries.from_dict(phases) if phases is not None else None,
                workload=str(data["workload"]),
                instructions_per_access=float(data["instructions_per_access"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed ShardOutcome record: {exc}") from exc


class _EpochBuckets:
    """Access-path observer binning events into explicit global epochs.

    Unlike :class:`~repro.sim.phases.PhaseMetrics` it does not count
    epochs itself — the shard driver switches the active bucket at
    precomputed segment boundaries (a shard sees only a subset of the
    reads that define the global boundaries). The per-event accounting
    is identical to PhaseMetrics, so summed buckets reproduce the
    serial observer's samples exactly.
    """

    __slots__ = ("buckets", "_cur")

    def __init__(self):
        # epoch id -> [accesses, hits, predicted, correct, nvm_r, nvm_w, wbs]
        self.buckets: Dict[int, List[int]] = {}
        self._cur: List[int] = [0] * 7

    def set_epoch(self, index: int) -> None:
        cur = self.buckets.get(index)
        if cur is None:
            cur = [0] * 7
            self.buckets[index] = cur
        self._cur = cur

    def on_lookup(self, event) -> None:
        cur = self._cur
        cur[0] += 1
        if event.hit:
            cur[1] += 1
            if event.predicted_way is not None:
                cur[2] += 1
                if event.prediction_correct:
                    cur[3] += 1

    def on_fill(self, event) -> None:
        self._cur[4] += 1

    def on_evict(self, event) -> None:
        if event.dirty:
            self._cur[5] += 1

    def on_writeback(self, event) -> None:
        cur = self._cur
        cur[6] += 1
        if not event.absorbed:
            cur[5] += 1

    def result(self, epoch: int) -> PhaseSeries:
        samples = tuple(
            PhaseSample(
                index=index,
                start_access=0,  # rebuilt by PhaseSeries.merge
                accesses=b[0],
                hits=b[1],
                predicted_hits=b[2],
                correct_predictions=b[3],
                nvm_reads=b[4],
                nvm_writes=b[5],
                writebacks=b[6],
            )
            for index, b in sorted(self.buckets.items())
        )
        return PhaseSeries(epoch=epoch, samples=samples)


# -- shard planning ----------------------------------------------------------


def shard_segments(
    trace: Trace, shard: TraceShard, warm: int, epoch: Optional[int]
) -> Tuple[int, List[Tuple[Optional[int], int, int]]]:
    """Measurement plan for one shard: warm split + epoch segments.

    Returns ``(local_warm, segments)`` where each segment is
    ``(epoch_id, start, stop)`` in shard-local coordinates covering the
    shard's post-warmup records in order. Without phase metrics there
    is a single ``(None, local_warm, len(shard))`` segment.

    Epoch ids are *global*: a read whose post-warmup global read
    ordinal is ``r`` belongs to epoch ``r // epoch``; a writeback seen
    after ``R`` window reads belongs to ``(R - 1) // epoch`` (clamped
    at 0) — mirroring PhaseMetrics' flush-on-next-read attribution.
    Both are non-decreasing along the trace, so a shard's subsequence
    splits into contiguous runs.
    """
    local_warm = shard.warm_index(warm)
    total = len(shard)
    if epoch is None:
        return local_warm, [(None, local_warm, total)]
    positions = shard.positions[local_warm:]
    if len(positions) == 0:
        return local_warm, []
    prefix = trace.read_prefix()
    window_reads = prefix[positions] - prefix[warm]
    is_write = trace.numpy_writes()[positions]
    epoch_ids = np.where(
        is_write == 0,
        window_reads // epoch,
        np.maximum(window_reads - 1, 0) // epoch,
    )
    boundaries = np.flatnonzero(np.diff(epoch_ids)) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [len(epoch_ids)]))
    return local_warm, [
        (int(epoch_ids[s]), local_warm + int(s), local_warm + int(e))
        for s, e in zip(starts, stops)
    ]


# -- shard execution ---------------------------------------------------------


def drive_shard(
    cache,
    shard: TraceShard,
    local_warm: int,
    segments: Sequence[Tuple[Optional[int], int, int]],
    epoch: Optional[int],
    workload: str,
    instructions_per_access: float,
    engine: str = "stream",
) -> ShardOutcome:
    """Run one shard's records through a fresh cache; measure post-warmup.

    Mirrors :meth:`Simulator.run` exactly: warmup drives the shard's
    records, stats reset at the warm boundary, then the measured
    segments run with global-epoch bucket accounting when
    phase-resolved. The drive is delegated to a concrete engine
    (``engine`` must not be "auto" here — :func:`run_sharded` resolves
    once in the parent so all shards agree and warnings fire once).
    """
    eng = get_engine(engine)
    phases = eng.drive(
        cache, shard, local_warm, segments, epoch, global_epochs=True
    )
    return ShardOutcome(
        stats=cache.stats,
        phases=phases,
        workload=workload,
        instructions_per_access=instructions_per_access,
    )


def run_shard(
    config: SystemConfig,
    design: AccordDesign,
    trace: Trace,
    shard_index: int,
    n_shards: int,
    warmup: float = 0.25,
    epoch: Optional[int] = None,
    seed: int = 1,
    engine: str = "stream",
) -> ShardOutcome:
    """Build a cache and run one shard of ``trace`` (worker entry point).

    The cache is full-sized (all sets); the shard only ever touches its
    own set range, so per-set state matches the serial run's.
    """
    if not 0.0 <= warmup < 1.0:
        raise SimulationError("warmup fraction must be in [0, 1)")
    cache = build_dram_cache(design, config, seed=seed)
    shard = trace.shard_slice(cache.geometry, n_shards, shard_index)
    warm = int(len(trace) * warmup)
    local_warm, segments = shard_segments(trace, shard, warm, epoch)
    return drive_shard(
        cache, shard, local_warm, segments, epoch,
        trace.name, trace.instructions_per_access, engine=engine,
    )


# -- merging -----------------------------------------------------------------


def merge_outcomes(
    design: AccordDesign,
    config: SystemConfig,
    outcomes: Sequence[ShardOutcome],
    epoch: Optional[int] = None,
) -> RunResult:
    """Combine shard outcomes into the serial-equivalent RunResult.

    ``CacheStats.merge`` is an elementwise integer sum — associative,
    commutative, identity-preserving (property-tested) — so the merged
    counters equal the serial run's, and the timing model evaluated on
    them reproduces the serial timing bit for bit.
    """
    if not outcomes:
        raise SimulationError("no shard outcomes to merge")
    stats = CacheStats()
    for outcome in outcomes:
        stats.merge(outcome.stats)
    phases = None
    if epoch is not None:
        phases = PhaseSeries.merge(
            [o.phases for o in outcomes if o.phases is not None]
        )
    ipa = outcomes[0].instructions_per_access
    instructions = stats.demand_reads * ipa
    if instructions <= 0:
        raise SimulationError(
            f"trace {outcomes[0].workload!r} produced no post-warmup "
            f"demand reads"
        )
    timing = IntervalTimingModel(config).evaluate(stats, instructions)
    return RunResult(
        design=design,
        workload=outcomes[0].workload,
        stats=stats,
        timing=timing,
        instructions=instructions,
        phases=phases,
    )


# -- one-shot parallel driver ------------------------------------------------

_FALLBACK_WARNED: set = set()


def warn_serial_fallback(design: AccordDesign, cache) -> None:
    """One-time-per-design warning that sharding fell back to serial.

    Suppressed inside pool workers (warn-once state is per-process);
    the parent warns when it plans, see
    :func:`repro.exec.jobs.plan_shards`.
    """
    roles = tuple(unshardable_roles(cache))
    key = (design.kind, design.ways, design.hashes, roles)
    if key in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(key)
    if in_worker_process():
        return
    label = design.label or design.kind
    warnings.warn(
        f"design {label!r} has global policy state "
        f"({', '.join(roles)}); --shards ignored, running serial "
        f"(results stay exact)",
        RuntimeWarning,
        stacklevel=3,
    )


def _run_shard_payload(payload) -> ShardOutcome:
    """Module-level worker fn for :func:`run_sharded`'s process pool."""
    (config, design, seed, shard, local_warm, segments, epoch,
     workload, ipa, engine) = payload
    cache = build_dram_cache(design, config, seed=seed)
    if not isinstance(shard, TraceShard):
        # Zero-copy payload: (TraceRef, n_shards, index). Attach to the
        # parent's shared-memory segment (memoized per worker) and carve
        # this worker's shard locally instead of unpickling the
        # materialized per-record columns.
        from repro.exec.batching import attach_trace

        ref, n_shards, index = shard
        trace = attach_trace(ref)
        if trace is None:
            raise SimulationError(
                f"shared trace segment {ref.shm_name!r} vanished "
                f"before shard {index} attached"
            )
        shard = trace.shard_slice(cache.geometry, n_shards, index)
    return drive_shard(
        cache, shard, local_warm, segments, epoch, workload, ipa,
        engine=engine,
    )


def run_sharded(
    config: SystemConfig,
    design: AccordDesign,
    trace: Trace,
    warmup: float = 0.25,
    epoch: Optional[int] = None,
    shards: int = 2,
    seed: int = 1,
    inline: bool = False,
    engine: str = "auto",
    engine_strict: bool = False,
) -> RunResult:
    """Run one (design, trace) pair split across shard workers.

    Bit-identical to ``Simulator(config, design, seed).run(trace,
    warmup, epoch)`` for shardable designs; non-shardable designs (and
    calls from inside a worker process — the nested-pool guard) take
    that exact serial path instead. ``inline=True`` keeps the shard
    loop in-process (deterministic single-process execution of the same
    decomposition; used by tests and the Executor's flattened tasks).

    ``engine`` composes with sharding: the request is resolved once
    here, on a probe cache in the parent (so an unsupported explicit
    request warns or raises exactly once, not per worker), and the
    resolved concrete engine drives every shard — and the serial
    fallback path, which forwards the same resolution to
    :meth:`Simulator.run`.
    """
    if not 0.0 <= warmup < 1.0:
        raise SimulationError("warmup fraction must be in [0, 1)")
    cache = build_dram_cache(design, config, seed=seed)
    engine_name = resolve_engine(
        cache, requested=engine, strict=engine_strict, design=design
    ).name
    n_shards = effective_shard_count(shards, cache.geometry.num_sets)
    if n_shards > 1 and not cache_is_shardable(cache):
        warn_serial_fallback(design, cache)
        n_shards = 1
    if n_shards > 1 and not inline and in_worker_process():
        # Nested-pool hazard: a pool worker must not spawn grandchildren.
        inline = True
    if n_shards <= 1:
        return Simulator(config, design, seed=seed).run(
            trace, warmup_fraction=warmup, epoch=epoch, engine=engine_name
        )
    warm = int(len(trace) * warmup)
    shard_slices = trace.shard(cache.geometry, n_shards)
    plans = [shard_segments(trace, shard, warm, epoch) for shard in shard_slices]
    if inline:
        outcomes = [
            run_shard(
                config, design, trace, i, n_shards, warmup, epoch, seed,
                engine=engine_name,
            )
            for i in range(n_shards)
        ]
    else:
        shm = ref = None
        if len(trace) > 0:
            token = trace.cache_token
            if token is None:
                # No content address from the trace cache: derive one so
                # worker-side attach memos and plan memos still key
                # correctly. One pass over the columns, paid once per
                # sharded run.
                token = hashlib.sha256(
                    trace.numpy_addrs().tobytes()
                    + trace.numpy_writes().tobytes()
                ).hexdigest()
            try:
                from repro.exec.batching import publish_trace

                shm, ref = publish_trace(trace, token)
            except OSError:
                shm = ref = None  # no shared memory: ship columns
        try:
            if ref is not None:
                # Zero-copy: every worker attaches to one segment and
                # carves its own shard; nothing per-record crosses the
                # pickle boundary.
                payloads = [
                    (config, design, seed, (ref, n_shards, index),
                     local_warm, segments, epoch, trace.name,
                     trace.instructions_per_access, engine_name)
                    for index, (local_warm, segments) in enumerate(plans)
                ]
            else:
                payloads = [
                    (config, design, seed, shard, local_warm, segments,
                     epoch, trace.name, trace.instructions_per_access,
                     engine_name)
                    for shard, (local_warm, segments)
                    in zip(shard_slices, plans)
                ]
            workers = min(n_shards, os.cpu_count() or 1)
            with ProcessPoolExecutor(
                max_workers=workers, initializer=mark_worker_process
            ) as pool:
                outcomes = list(pool.map(_run_shard_payload, payloads))
        finally:
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
    return merge_outcomes(design, config, outcomes, epoch=epoch)


__all__ = [
    "ShardOutcome",
    "WORKER_ENV",
    "drive_shard",
    "effective_shard_count",
    "in_worker_process",
    "mark_worker_process",
    "merge_outcomes",
    "run_shard",
    "run_sharded",
    "shard_segments",
    "warn_serial_fallback",
]
