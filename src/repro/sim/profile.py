"""Trace profiling: measure the properties workload calibration targets.

Given a trace, compute the observable characteristics the synthetic
generators are supposed to reproduce — footprint, write fraction,
spatial run lengths (what GWS exploits), region working-set behaviour,
and an approximate reuse-distance profile (what determines hit-rate at
a given capacity). Used by calibration tests to close the loop between
:class:`repro.workloads.spec.WorkloadSpec` knobs and generated traces,
and available to users profiling their own traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import TraceError
from repro.params.system import LINE_SIZE, PAGE_SIZE
from repro.sim.trace import Trace


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of one trace."""

    accesses: int
    reads: int
    writes: int
    footprint_lines: int
    footprint_pages: int
    write_fraction: float
    mean_run_length: float
    max_run_length: int
    region_reuse_fraction: float  # accesses to a recently-seen 4KB region
    reuse_histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_lines * LINE_SIZE

    def summary(self) -> str:
        lines = [
            f"accesses          {self.accesses}",
            f"reads/writes      {self.reads}/{self.writes} "
            f"(write fraction {self.write_fraction:.3f})",
            f"footprint         {self.footprint_lines} lines / "
            f"{self.footprint_pages} pages ({self.footprint_bytes / 2**20:.1f} MB)",
            f"mean run length   {self.mean_run_length:.2f} lines "
            f"(max {self.max_run_length})",
            f"region reuse      {self.region_reuse_fraction:.3f}",
        ]
        if self.reuse_histogram:
            lines.append("reuse distances   " + "  ".join(
                f"{bucket}:{count}" for bucket, count in self.reuse_histogram.items()
            ))
        return "\n".join(lines)


# Reuse-distance buckets (in distinct lines touched since last use).
_BUCKETS = [
    (256, "<256"),
    (4 * 1024, "<4K"),
    (64 * 1024, "<64K"),
    (1024 * 1024, "<1M"),
]
_COLD = "cold"
_TAIL = ">=1M"


def _bucket_of(distance: int) -> str:
    for limit, label in _BUCKETS:
        if distance < limit:
            return label
    return _TAIL


class ReuseDistanceEstimator:
    """Approximate LRU stack distances via access timestamps.

    Exact stack distance is O(n log n) with a balanced tree; for
    profiling purposes we approximate the number of *distinct* lines
    between uses by the number of accesses between uses capped by the
    current footprint — an overestimate that still separates the
    hot/warm/cold populations the generators are tuned against.
    """

    def __init__(self):
        self._last_use: Dict[int, int] = {}
        self._clock = 0
        self.histogram: Dict[str, int] = {label: 0 for _, label in _BUCKETS}
        self.histogram[_TAIL] = 0
        self.histogram[_COLD] = 0

    def touch(self, line: int) -> None:
        previous = self._last_use.get(line)
        if previous is None:
            self.histogram[_COLD] += 1
        else:
            gap = self._clock - previous
            distance = min(gap, len(self._last_use))
            self.histogram[_bucket_of(distance)] += 1
        self._last_use[line] = self._clock
        self._clock += 1


def profile_trace(
    trace: Trace,
    region_window: int = 64,
    reuse_distances: bool = True,
) -> TraceProfile:
    """Profile a trace; ``region_window`` mirrors the RLT size."""
    if len(trace) == 0:
        raise TraceError("cannot profile an empty trace")

    reads = 0
    writes = 0
    lines = set()
    pages = set()

    run_length = 0
    run_lengths: List[int] = []
    previous_line: Optional[int] = None

    recent_regions: List[int] = []
    region_positions: Dict[int, int] = {}
    region_hits = 0
    region_lookups = 0

    estimator = ReuseDistanceEstimator() if reuse_distances else None

    for addr, is_write in zip(trace.addrs, trace.writes):
        line = addr // LINE_SIZE
        if is_write:
            writes += 1
            continue
        reads += 1
        lines.add(line)
        pages.add(addr // PAGE_SIZE)

        if previous_line is not None and line == previous_line + 1:
            run_length += 1
        else:
            if run_length:
                run_lengths.append(run_length)
            run_length = 1
        previous_line = line

        region = addr // PAGE_SIZE
        region_lookups += 1
        if region in region_positions:
            region_hits += 1
            recent_regions.remove(region)
            recent_regions.append(region)
        else:
            recent_regions.append(region)
            if len(recent_regions) > region_window:
                evicted = recent_regions.pop(0)
                del region_positions[evicted]
        region_positions[region] = 1

        if estimator is not None:
            estimator.touch(line)

    if run_length:
        run_lengths.append(run_length)

    mean_run = sum(run_lengths) / len(run_lengths) if run_lengths else 0.0
    return TraceProfile(
        accesses=len(trace),
        reads=reads,
        writes=writes,
        footprint_lines=len(lines),
        footprint_pages=len(pages),
        write_fraction=writes / max(reads, 1),
        mean_run_length=mean_run,
        max_run_length=max(run_lengths) if run_lengths else 0,
        region_reuse_fraction=region_hits / max(region_lookups, 1),
        reuse_histogram=dict(estimator.histogram) if estimator else {},
    )
