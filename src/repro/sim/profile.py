"""Trace profiling: measure the properties workload calibration targets.

Given a trace, compute the observable characteristics the synthetic
generators are supposed to reproduce — footprint, write fraction,
spatial run lengths (what GWS exploits), region working-set behaviour,
and an approximate reuse-distance profile (what determines hit-rate at
a given capacity). Used by calibration tests to close the loop between
:class:`repro.workloads.spec.WorkloadSpec` knobs and generated traces,
and available to users profiling their own traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import TraceError
from repro.params.system import LINE_SIZE, PAGE_SIZE
from repro.sim.trace import Trace


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of one trace."""

    accesses: int
    reads: int
    writes: int
    footprint_lines: int
    footprint_pages: int
    write_fraction: float
    mean_run_length: float
    max_run_length: int
    region_reuse_fraction: float  # accesses to a recently-seen 4KB region
    reuse_histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_lines * LINE_SIZE

    def summary(self) -> str:
        lines = [
            f"accesses          {self.accesses}",
            f"reads/writes      {self.reads}/{self.writes} "
            f"(write fraction {self.write_fraction:.3f})",
            f"footprint         {self.footprint_lines} lines / "
            f"{self.footprint_pages} pages ({self.footprint_bytes / 2**20:.1f} MB)",
            f"mean run length   {self.mean_run_length:.2f} lines "
            f"(max {self.max_run_length})",
            f"region reuse      {self.region_reuse_fraction:.3f}",
        ]
        if self.reuse_histogram:
            lines.append("reuse distances   " + "  ".join(
                f"{bucket}:{count}" for bucket, count in self.reuse_histogram.items()
            ))
        return "\n".join(lines)


# Reuse-distance buckets (in distinct lines touched since last use).
_BUCKETS = [
    (256, "<256"),
    (4 * 1024, "<4K"),
    (64 * 1024, "<64K"),
    (1024 * 1024, "<1M"),
]
_COLD = "cold"
_TAIL = ">=1M"


def _bucket_of(distance: int) -> str:
    for limit, label in _BUCKETS:
        if distance < limit:
            return label
    return _TAIL


class ReuseDistanceEstimator:
    """Approximate LRU stack distances via access timestamps.

    Exact stack distance is O(n log n) with a balanced tree; for
    profiling purposes we approximate the number of *distinct* lines
    between uses by the number of accesses between uses capped by the
    current footprint — an overestimate that still separates the
    hot/warm/cold populations the generators are tuned against.
    """

    def __init__(self):
        self._last_use: Dict[int, int] = {}
        self._clock = 0
        self.histogram: Dict[str, int] = {label: 0 for _, label in _BUCKETS}
        self.histogram[_TAIL] = 0
        self.histogram[_COLD] = 0

    def touch(self, line: int) -> None:
        previous = self._last_use.get(line)
        if previous is None:
            self.histogram[_COLD] += 1
        else:
            gap = self._clock - previous
            distance = min(gap, len(self._last_use))
            self.histogram[_bucket_of(distance)] += 1
        self._last_use[line] = self._clock
        self._clock += 1


def profile_trace(
    trace: Trace,
    region_window: int = 64,
    reuse_distances: bool = True,
) -> TraceProfile:
    """Profile a trace; ``region_window`` mirrors the RLT size."""
    if len(trace) == 0:
        raise TraceError("cannot profile an empty trace")

    reads = 0
    writes = 0
    lines = set()
    pages = set()

    run_length = 0
    run_lengths: List[int] = []
    previous_line: Optional[int] = None

    recent_regions: List[int] = []
    region_positions: Dict[int, int] = {}
    region_hits = 0
    region_lookups = 0

    estimator = ReuseDistanceEstimator() if reuse_distances else None

    for addr, is_write in zip(trace.addrs, trace.writes):
        line = addr // LINE_SIZE
        if is_write:
            writes += 1
            continue
        reads += 1
        lines.add(line)
        pages.add(addr // PAGE_SIZE)

        if previous_line is not None and line == previous_line + 1:
            run_length += 1
        else:
            if run_length:
                run_lengths.append(run_length)
            run_length = 1
        previous_line = line

        region = addr // PAGE_SIZE
        region_lookups += 1
        if region in region_positions:
            region_hits += 1
            recent_regions.remove(region)
            recent_regions.append(region)
        else:
            recent_regions.append(region)
            if len(recent_regions) > region_window:
                evicted = recent_regions.pop(0)
                del region_positions[evicted]
        region_positions[region] = 1

        if estimator is not None:
            estimator.touch(line)

    if run_length:
        run_lengths.append(run_length)

    mean_run = sum(run_lengths) / len(run_lengths) if run_lengths else 0.0
    return TraceProfile(
        accesses=len(trace),
        reads=reads,
        writes=writes,
        footprint_lines=len(lines),
        footprint_pages=len(pages),
        write_fraction=writes / max(reads, 1),
        mean_run_length=mean_run,
        max_run_length=max(run_lengths) if run_lengths else 0,
        region_reuse_fraction=region_hits / max(region_lookups, 1),
        reuse_histogram=dict(estimator.histogram) if estimator else {},
    )


@dataclass(frozen=True)
class ShardProfile:
    """Per-shard attribution of one set-sharded run (``--shards``)."""

    index: int
    records: int
    sets: int
    elapsed_sec: float


def profile_shards(
    trace: Trace,
    n_shards: int,
    scale: float = 1.0 / 128.0,
    seed: int = 7,
    warmup: float = 0.3,
    engine: str = "stream",
) -> List[ShardProfile]:
    """Time each shard of a sharded run to expose load imbalance.

    Runs every shard inline (one process, timed individually) against
    the baseline 2-way PWS design — a shardable design whose access
    path exercises steering, prediction and replacement — so the
    per-shard wall times reflect what each worker of ``--shards N``
    would spend. The bottleneck shard bounds the parallel speedup:
    ideal is ``total / max``, not ``n_shards``.

    ``engine`` selects the drive engine each shard is timed under
    (default ``stream``, the shard workers' historical hot loop;
    ``auto`` resolves to the fastest supported engine, ``vector``
    attributes the numpy kernel's per-shard time instead).
    """
    import time

    from repro.core.accord import AccordDesign
    from repro.params.system import scaled_system
    from repro.sim.engines import resolve_engine
    from repro.sim.shard import run_shard
    from repro.sim.system import build_dram_cache

    if n_shards < 1:
        raise TraceError(f"shard count must be >= 1, got {n_shards}")
    design = AccordDesign(kind="pws", ways=2)
    config = scaled_system(ways=design.ways, scale=scale)
    cache = build_dram_cache(design, config, seed=seed)
    geometry = cache.geometry
    engine_name = resolve_engine(cache, requested=engine, design=design).name
    shards = trace.shard(geometry, n_shards)
    profiles = []
    for shard in shards:
        start = time.perf_counter()
        run_shard(
            config, design, trace, shard.index, len(shards),
            warmup=warmup, seed=seed, engine=engine_name,
        )
        elapsed = time.perf_counter() - start
        profiles.append(
            ShardProfile(
                index=shard.index,
                records=len(shard),
                sets=len(set(shard.set_indices)),
                elapsed_sec=elapsed,
            )
        )
    return profiles


def shard_summary(profiles: List[ShardProfile]) -> str:
    """Render :func:`profile_shards` output as an attribution table."""
    if not profiles:
        return "no shards"
    total_records = sum(p.records for p in profiles) or 1
    total_time = sum(p.elapsed_sec for p in profiles)
    lines = [
        f"{'shard':>5} {'records':>9} {'rec %':>6} {'sets':>6} "
        f"{'time (s)':>9} {'time %':>7}"
    ]
    for p in profiles:
        lines.append(
            f"{p.index:>5d} {p.records:>9d} "
            f"{100.0 * p.records / total_records:>5.1f}% {p.sets:>6d} "
            f"{p.elapsed_sec:>9.3f} "
            f"{100.0 * p.elapsed_sec / total_time if total_time else 0.0:>6.1f}%"
        )
    slowest = max(p.elapsed_sec for p in profiles)
    ideal = total_time / slowest if slowest else 1.0
    lines.append(
        f"bottleneck shard {max(profiles, key=lambda p: p.elapsed_sec).index}: "
        f"parallel speedup bound {ideal:.2f}x over serial "
        f"(perfect balance would give {len(profiles)}x)"
    )
    return "\n".join(lines)
