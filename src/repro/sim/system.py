"""System-level simulator: trace -> cache -> timing.

:class:`Simulator` drives one cache design with one trace (with a
warmup region excluded from statistics) and evaluates the interval
timing model on the measured counters. Designs are named by
:class:`repro.core.accord.AccordDesign` (re-exported here as
``DesignSpec`` for the public API).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Optional

from repro.cache.geometry import CacheGeometry
from repro.core.accord import AccordDesign, make_design
from repro.errors import SimulationError
from repro.params.system import SystemConfig
from repro.sim.engines import TraceStream, resolve_engine, serial_segments
from repro.sim.phases import PhaseSeries
from repro.sim.stats import CacheStats
from repro.sim.timing_model import IntervalTimingModel, TimingBreakdown
from repro.sim.trace import Trace
from repro.verify.digest import result_digest

DesignSpec = AccordDesign  # public alias


def build_dram_cache(design: AccordDesign, config: SystemConfig, seed: int = 1):
    """Instantiate the cache object for a design under a system config."""
    geometry = CacheGeometry(
        config.dram_cache.capacity_bytes, design.ways, config.dram_cache.line_size
    )
    return make_design(design, geometry, seed=seed)


@dataclass
class RunResult:
    """Everything measured from one (design, workload) run."""

    design: AccordDesign
    workload: str
    stats: CacheStats
    timing: TimingBreakdown
    instructions: float
    # Per-epoch time series, present when the run was phase-resolved
    # (``epoch=...`` / ``--epoch-metrics``); None otherwise.
    phases: Optional[PhaseSeries] = field(default=None)

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate

    @property
    def prediction_accuracy(self) -> float:
        return self.stats.prediction_accuracy

    @property
    def runtime_ns(self) -> float:
        return self.timing.runtime_ns

    def speedup_over(self, baseline: "RunResult") -> float:
        """Weighted-speedup proxy: baseline runtime / this runtime."""
        if self.workload != baseline.workload:
            raise SimulationError(
                f"comparing different workloads: {self.workload} vs {baseline.workload}"
            )
        return baseline.runtime_ns / self.runtime_ns

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation; inverse of :meth:`from_dict`.

        Besides the raw fields, the top level carries the derived
        ``hit_rate`` / ``prediction_accuracy`` / ``runtime_ns`` values so
        exported records are self-describing, plus a ``payload_digest``
        (:func:`repro.verify.digest.result_digest`) that the store and
        ``repro audit`` verify on read; :meth:`from_dict` ignores them
        (they are recomputed from the counters).
        """
        return {
            "design": asdict(self.design),
            "workload": self.workload,
            "stats": self.stats.to_dict(),
            "timing": asdict(self.timing),
            "instructions": self.instructions,
            "phases": self.phases.to_dict() if self.phases is not None else None,
            "hit_rate": self.hit_rate,
            "prediction_accuracy": self.prediction_accuracy,
            "runtime_ns": self.runtime_ns,
            "payload_digest": result_digest(self),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            timing_data = dict(data["timing"])
            known = {f.name for f in fields(TimingBreakdown)}
            unknown = set(timing_data) - known
            if unknown:
                raise SimulationError(
                    f"unknown TimingBreakdown fields: {sorted(unknown)}"
                )
            phases_data = data.get("phases")
            return cls(
                design=AccordDesign(**data["design"]),
                workload=str(data["workload"]),
                stats=CacheStats.from_dict(data["stats"]),
                timing=TimingBreakdown(**timing_data),
                instructions=float(data["instructions"]),
                phases=(
                    PhaseSeries.from_dict(phases_data)
                    if phases_data is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed RunResult record: {exc}") from exc


class Simulator:
    """Runs one design against traces under one system configuration."""

    def __init__(self, config: SystemConfig, design: AccordDesign, seed: int = 1):
        self.config = config
        self.design = design
        self.seed = seed
        self.cache = build_dram_cache(design, config, seed=seed)
        self.timing_model = IntervalTimingModel(config)
        self._driven = False

    def run(
        self,
        trace: Trace,
        warmup_fraction: float = 0.25,
        epoch: Optional[int] = None,
        fast_path: bool = True,
        phase_sink=None,
        engine: str = "auto",
        engine_strict: bool = False,
    ) -> RunResult:
        """Simulate a trace; statistics cover only the post-warmup part.

        With ``epoch`` set, per-epoch time series are recorded over the
        measurement window (warmup is excluded), returned as
        :attr:`RunResult.phases`. Caches without an event-emitting
        access path (the CA-cache baseline) ignore the request and
        report ``phases=None``. ``phase_sink`` receives each
        :class:`PhaseSample` live as its epoch closes (incremental
        streaming for in-process consumers such as the sweep service).

        The drive itself is delegated to an engine
        (:mod:`repro.sim.engines`): ``engine="auto"`` picks the fastest
        one supporting the cache — the whole-trace vector kernel for
        deterministic set-local designs, the batched ``run_stream`` loop
        otherwise, the per-address reference loop as the floor. An
        explicit request that cannot drive the cache falls back with a
        one-time warning, or raises under ``engine_strict``. All engines
        are bit-identical (asserted by the equivalence tests), so the
        choice never changes results. ``fast_path=False`` forces the
        reference loop (kept for those tests and benchmarks).
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError("warmup fraction must be in [0, 1)")
        if not fast_path:
            engine = "loop"
        if self._driven:
            # Engines own warmup from a freshly built cache (the vector
            # kernel replays build-time state); a second run() must not
            # see the first run's residue.
            self.cache = build_dram_cache(self.design, self.config, seed=self.seed)
        self._driven = True
        cache = self.cache
        n = len(trace)
        warm = int(n * warmup_fraction)
        eng = resolve_engine(
            cache, requested=engine, strict=engine_strict, design=self.design
        )
        stream = TraceStream(trace, cache.geometry)
        segments = serial_segments(trace, warm, epoch)
        phases = eng.drive(
            cache, stream, warm, segments, epoch, phase_sink=phase_sink
        )

        stats = cache.stats
        instructions = stats.demand_reads * trace.instructions_per_access
        if instructions <= 0:
            raise SimulationError(
                f"trace {trace.name!r} produced no post-warmup demand reads"
            )
        timing = self.timing_model.evaluate(stats, instructions)
        return RunResult(
            design=self.design,
            workload=trace.name,
            stats=stats,
            timing=timing,
            instructions=instructions,
            phases=phases,
        )
