"""System-level simulator: trace -> cache -> timing.

:class:`Simulator` drives one cache design with one trace (with a
warmup region excluded from statistics) and evaluates the interval
timing model on the measured counters. Designs are named by
:class:`repro.core.accord.AccordDesign` (re-exported here as
``DesignSpec`` for the public API).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Optional

from repro.cache.geometry import CacheGeometry
from repro.core.accord import AccordDesign, make_design
from repro.errors import SimulationError
from repro.params.system import SystemConfig
from repro.sim.phases import PhaseMetrics, PhaseSeries
from repro.sim.stats import CacheStats
from repro.sim.timing_model import IntervalTimingModel, TimingBreakdown
from repro.sim.trace import Trace

DesignSpec = AccordDesign  # public alias


def build_dram_cache(design: AccordDesign, config: SystemConfig, seed: int = 1):
    """Instantiate the cache object for a design under a system config."""
    geometry = CacheGeometry(
        config.dram_cache.capacity_bytes, design.ways, config.dram_cache.line_size
    )
    return make_design(design, geometry, seed=seed)


@dataclass
class RunResult:
    """Everything measured from one (design, workload) run."""

    design: AccordDesign
    workload: str
    stats: CacheStats
    timing: TimingBreakdown
    instructions: float
    # Per-epoch time series, present when the run was phase-resolved
    # (``epoch=...`` / ``--epoch-metrics``); None otherwise.
    phases: Optional[PhaseSeries] = field(default=None)

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate

    @property
    def prediction_accuracy(self) -> float:
        return self.stats.prediction_accuracy

    @property
    def runtime_ns(self) -> float:
        return self.timing.runtime_ns

    def speedup_over(self, baseline: "RunResult") -> float:
        """Weighted-speedup proxy: baseline runtime / this runtime."""
        if self.workload != baseline.workload:
            raise SimulationError(
                f"comparing different workloads: {self.workload} vs {baseline.workload}"
            )
        return baseline.runtime_ns / self.runtime_ns

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation; inverse of :meth:`from_dict`.

        Besides the raw fields, the top level carries the derived
        ``hit_rate`` / ``prediction_accuracy`` / ``runtime_ns`` values so
        exported records are self-describing; :meth:`from_dict` ignores
        them (they are recomputed from the counters).
        """
        return {
            "design": asdict(self.design),
            "workload": self.workload,
            "stats": self.stats.to_dict(),
            "timing": asdict(self.timing),
            "instructions": self.instructions,
            "phases": self.phases.to_dict() if self.phases is not None else None,
            "hit_rate": self.hit_rate,
            "prediction_accuracy": self.prediction_accuracy,
            "runtime_ns": self.runtime_ns,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            timing_data = dict(data["timing"])
            known = {f.name for f in fields(TimingBreakdown)}
            unknown = set(timing_data) - known
            if unknown:
                raise SimulationError(
                    f"unknown TimingBreakdown fields: {sorted(unknown)}"
                )
            phases_data = data.get("phases")
            return cls(
                design=AccordDesign(**data["design"]),
                workload=str(data["workload"]),
                stats=CacheStats.from_dict(data["stats"]),
                timing=TimingBreakdown(**timing_data),
                instructions=float(data["instructions"]),
                phases=(
                    PhaseSeries.from_dict(phases_data)
                    if phases_data is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed RunResult record: {exc}") from exc


class Simulator:
    """Runs one design against traces under one system configuration."""

    def __init__(self, config: SystemConfig, design: AccordDesign, seed: int = 1):
        self.config = config
        self.design = design
        self.seed = seed
        self.cache = build_dram_cache(design, config, seed=seed)
        self.timing_model = IntervalTimingModel(config)

    def run(
        self,
        trace: Trace,
        warmup_fraction: float = 0.25,
        epoch: Optional[int] = None,
        fast_path: bool = True,
        phase_sink=None,
    ) -> RunResult:
        """Simulate a trace; statistics cover only the post-warmup part.

        With ``epoch`` set, a :class:`PhaseMetrics` observer records
        per-epoch time series over the measurement window (warmup is
        excluded), returned as :attr:`RunResult.phases`. Caches without
        an event-emitting access path (the CA-cache baseline) ignore the
        request and report ``phases=None``. ``phase_sink`` is forwarded
        to the observer: it receives each :class:`PhaseSample` live as
        its epoch closes (incremental streaming for in-process
        consumers such as the sweep service).

        When the cache exposes the split entry points
        (``read_split``/``writeback_split``), the loop drives them with
        the trace's precomputed per-geometry address columns
        (:meth:`Trace.split_columns`) so ``geometry.split`` never runs
        per access. ``fast_path=False`` forces the per-address loop; the
        two are bit-identical (asserted by the equivalence tests) — the
        flag exists for those tests and for benchmark comparisons.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError("warmup fraction must be in [0, 1)")
        n = len(trace)
        warm = int(n * warmup_fraction)
        addrs = trace.addrs
        writes = trace.writes
        cache = self.cache
        use_split = fast_path and hasattr(cache, "read_split")
        if use_split:
            columns = trace.split_columns(cache.geometry)
            sets, tags = columns.set_indices, columns.tags
            # Drive the access path's batch loop directly when the cache
            # exposes one; it hoists per-access constant work and skips
            # the delegation frame (bit-identical, see run_stream).
            path = getattr(cache, "path", None)
            if path is not None:
                run_stream = path.run_stream
                run_stream(writes, sets, tags, addrs, 0, warm)
            else:
                run_stream = None
                read_split = cache.read_split
                writeback_split = cache.writeback_split
                for w, s, t, a in zip(
                    writes[:warm], sets[:warm], tags[:warm], addrs[:warm]
                ):
                    if w:
                        writeback_split(s, t, a)
                    else:
                        read_split(s, t, a)
        else:
            read = cache.read
            writeback = cache.writeback
            for w, a in zip(writes[:warm], addrs[:warm]):
                if w:
                    writeback(a)
                else:
                    read(a)

        cache.stats = CacheStats()  # measurement window starts here
        phase_observer = None
        if epoch is not None and hasattr(cache, "add_observer"):
            phase_observer = PhaseMetrics(epoch, sink=phase_sink)
            cache.add_observer(phase_observer)
        try:
            if use_split:
                if run_stream is not None:
                    run_stream(writes, sets, tags, addrs, warm, n)
                else:
                    for w, s, t, a in zip(
                        writes[warm:], sets[warm:], tags[warm:], addrs[warm:]
                    ):
                        if w:
                            writeback_split(s, t, a)
                        else:
                            read_split(s, t, a)
            else:
                for w, a in zip(writes[warm:], addrs[warm:]):
                    if w:
                        writeback(a)
                    else:
                        read(a)
        finally:
            if phase_observer is not None:
                cache.remove_observer(phase_observer)
        phases = phase_observer.result() if phase_observer is not None else None

        stats = cache.stats
        instructions = stats.demand_reads * trace.instructions_per_access
        if instructions <= 0:
            raise SimulationError(
                f"trace {trace.name!r} produced no post-warmup demand reads"
            )
        timing = self.timing_model.evaluate(stats, instructions)
        return RunResult(
            design=self.design,
            workload=trace.name,
            stats=stats,
            timing=timing,
            instructions=instructions,
            phases=phases,
        )
