"""Trace representation and I/O.

A trace is the stream of memory requests arriving at the DRAM cache
(i.e. L3 misses plus L3 dirty writebacks), in arrival order. For speed
the hot representation is two parallel sequences — byte addresses and
write flags — plus a constant instructions-per-access factor derived
from the workload's MPKI; a self-describing text format is provided for
persistence and interchange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.errors import TraceError


@dataclass(frozen=True)
class TraceRecord:
    """One request in interchange form."""

    addr: int
    is_write: bool


@dataclass
class Trace:
    """An in-memory request stream.

    ``instructions_per_access`` reconstructs retired instructions for
    CPI math: a workload with MPKI m has 1000/m instructions per L3
    *miss-path* access. Writebacks ride along with the read stream and
    carry no instruction weight of their own.
    """

    name: str
    addrs: List[int]
    writes: Sequence[int]  # truthy = writeback; bytearray in practice
    instructions_per_access: float

    def __post_init__(self):
        if len(self.addrs) != len(self.writes):
            raise TraceError(
                f"trace {self.name!r}: {len(self.addrs)} addresses but "
                f"{len(self.writes)} write flags"
            )
        if self.instructions_per_access <= 0:
            raise TraceError("instructions_per_access must be positive")

    def __len__(self) -> int:
        return len(self.addrs)

    def __iter__(self) -> Iterator[TraceRecord]:
        for addr, w in zip(self.addrs, self.writes):
            yield TraceRecord(addr, bool(w))

    @property
    def read_count(self) -> int:
        return len(self.addrs) - self.write_count

    @property
    def write_count(self) -> int:
        return sum(1 for w in self.writes if w)

    @property
    def total_instructions(self) -> float:
        """Instructions represented by the read (demand) portion."""
        return self.read_count * self.instructions_per_access

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace covering [start, stop)."""
        return Trace(
            name=f"{self.name}[{start}:{stop}]",
            addrs=self.addrs[start:stop],
            writes=self.writes[start:stop],
            instructions_per_access=self.instructions_per_access,
        )

    def footprint_lines(self, line_size: int = 64) -> int:
        """Number of distinct 64B lines touched."""
        return len({addr // line_size for addr in self.addrs})


def trace_from_arrays(
    name: str,
    addrs: Iterable[int],
    writes: Iterable[int],
    instructions_per_access: float,
) -> Trace:
    """Build a trace from any iterables (materializes lists)."""
    return Trace(name, list(addrs), bytearray(1 if w else 0 for w in writes),
                 instructions_per_access)


_HEADER = "# repro-trace-v1"


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace in the line-oriented text format."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{_HEADER}\n")
        handle.write(f"name {trace.name}\n")
        handle.write(f"ipa {trace.instructions_per_access!r}\n")
        for addr, w in zip(trace.addrs, trace.writes):
            kind = "W" if w else "R"
            handle.write(f"{kind} {addr:x}\n")


def load_trace(path: str) -> Trace:
    """Read a trace produced by :func:`save_trace`."""
    addrs: List[int] = []
    writes = bytearray()
    name = "unnamed"
    ipa = 1.0
    with open(path, "r", encoding="ascii") as handle:
        first = handle.readline().rstrip("\n")
        if first != _HEADER:
            raise TraceError(f"{path}: not a repro trace (bad header {first!r})")
        for line_no, raw in enumerate(handle, start=2):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "name":
                name = " ".join(parts[1:])
            elif parts[0] == "ipa":
                ipa = float(parts[1])
            elif parts[0] in ("R", "W"):
                if len(parts) != 2:
                    raise TraceError(f"{path}:{line_no}: malformed record {line!r}")
                addrs.append(int(parts[1], 16))
                writes.append(1 if parts[0] == "W" else 0)
            else:
                raise TraceError(f"{path}:{line_no}: unknown record {parts[0]!r}")
    return Trace(name, addrs, writes, ipa)
