"""Trace representation and I/O.

A trace is the stream of memory requests arriving at the DRAM cache
(i.e. L3 misses plus L3 dirty writebacks), in arrival order. For speed
the hot representation is two parallel sequences — byte addresses and
write flags — plus a constant instructions-per-access factor derived
from the workload's MPKI. Traces are treated as immutable once built:
derived values (write counts, split columns) are computed once and
cached on the instance.

Two persistence formats are provided:

* ``repro-trace-v1`` — a self-describing line-oriented text format for
  interchange and hand inspection (:func:`save_trace`/:func:`load_trace`);
* ``.npz`` — a binary numpy archive used by the shared trace cache
  (:mod:`repro.workloads.trace_cache`), ~10x smaller and much faster to
  load (:func:`save_trace_npz`/:func:`load_trace_npz`).

:meth:`Trace.split_columns` precomputes the per-access ``(set_index,
tag, line_addr)`` decomposition for one cache geometry — vectorized in
numpy once, then materialized as plain Python ints so the functional
simulator's hot loop never touches ``geometry.split`` (or a numpy
scalar) per access.
"""

from __future__ import annotations

import zipfile
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TraceError

if TYPE_CHECKING:  # hint only; geometry does not import trace
    from repro.cache.geometry import CacheGeometry


@dataclass(frozen=True)
class TraceRecord:
    """One request in interchange form."""

    addr: int
    is_write: bool


class SplitColumns:
    """Per-access address decomposition for one cache geometry.

    The columns are computed vectorized (numpy) and stored as flat
    Python lists: the consumers are per-access Python loops, where list
    indexing and small-int compares are ~10x cheaper than numpy scalar
    extraction.
    """

    __slots__ = ("set_indices", "tags", "line_addrs")

    def __init__(
        self,
        set_indices: List[int],
        tags: List[int],
        line_addrs: List[int],
    ):
        self.set_indices = set_indices
        self.tags = tags
        self.line_addrs = line_addrs


class TraceShard:
    """One set-range shard of a trace under one cache geometry.

    Carries the shard's records in arrival order: ``positions`` (their
    global indices in the parent trace, as an int64 numpy array for
    ``searchsorted``/epoch math) plus the hot-loop columns as plain
    Python lists, ready for :meth:`AccessPath.run_stream`. All sets a
    shard covers form one contiguous, region-aligned range, so every
    record of one set lands in exactly one shard.
    """

    __slots__ = ("index", "count", "positions", "writes", "set_indices",
                 "tags", "addrs")

    def __init__(self, index, count, positions, writes, set_indices, tags, addrs):
        self.index = index
        self.count = count
        self.positions = positions
        self.writes = writes
        self.set_indices = set_indices
        self.tags = tags
        self.addrs = addrs

    def __len__(self) -> int:
        return len(self.addrs)

    def warm_index(self, warm: int) -> int:
        """Local index of the first record at global position >= warm."""
        return int(np.searchsorted(self.positions, warm, side="left"))


class Trace:
    """An in-memory request stream.

    ``instructions_per_access`` reconstructs retired instructions for
    CPI math: a workload with MPKI m has 1000/m instructions per L3
    *miss-path* access. Writebacks ride along with the read stream and
    carry no instruction weight of their own.

    ``addrs``/``writes`` may be supplied either as Python sequences
    (a list of ints / a bytearray) or as 1-D numpy columns (int64 /
    uint8) — e.g. memory-mapped arrays from the trace cache or views of
    a shared-memory segment. Whichever form is supplied, the other is
    materialized lazily on first access: array engines that only touch
    :meth:`numpy_addrs`/:meth:`numpy_writes` never pay the per-element
    ``.tolist()`` round trip, and the scalar engines still see plain
    Python ints (numpy scalars would silently change their wrapping
    arithmetic).

    Columns must not be mutated after construction: the write count,
    the numpy column views, and the per-geometry split columns and
    shard partitions are cached.

    ``cache_token`` optionally carries a content identity (the
    :class:`~repro.workloads.trace_cache.TraceKey` digest) so plan
    memos can recognize the same trace across distinct loads.
    """

    __slots__ = (
        "name", "instructions_per_access", "cache_token",
        "_addrs_list", "_writes_list", "_write_count", "_split_cache",
        "_np_addrs", "_np_writes", "_read_prefix_cache", "_shard_cache",
        "__weakref__",
    )

    def __init__(
        self,
        name: str,
        addrs,
        writes,
        instructions_per_access: float,
        *,
        cache_token: Optional[str] = None,
    ):
        self.name = name
        self.instructions_per_access = instructions_per_access
        self.cache_token = cache_token
        if isinstance(addrs, np.ndarray):
            if addrs.ndim != 1:
                raise TraceError(f"trace {name!r}: address column must be 1-D")
            self._np_addrs = (
                addrs if addrs.dtype == np.int64 else addrs.astype(np.int64)
            )
            self._addrs_list: Optional[List[int]] = None
            n_addrs = int(addrs.shape[0])
        else:
            self._np_addrs = None
            self._addrs_list = addrs
            n_addrs = len(addrs)
        if isinstance(writes, np.ndarray):
            if writes.ndim != 1:
                raise TraceError(f"trace {name!r}: write column must be 1-D")
            self._np_writes = (
                writes if writes.dtype == np.uint8 else writes.astype(np.uint8)
            )
            self._writes_list: Optional[Sequence[int]] = None
            n_writes = int(writes.shape[0])
        else:
            self._np_writes = None
            self._writes_list = writes
            n_writes = len(writes)
        if n_addrs != n_writes:
            raise TraceError(
                f"trace {name!r}: {n_addrs} addresses but "
                f"{n_writes} write flags"
            )
        if instructions_per_access <= 0:
            raise TraceError("instructions_per_access must be positive")
        self._write_count: Optional[int] = None
        self._split_cache: Dict[Tuple[int, int], SplitColumns] = {}
        self._read_prefix_cache: Optional[np.ndarray] = None
        self._shard_cache: Dict[
            Tuple[int, int, int], Tuple["TraceShard", ...]
        ] = {}

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, len={len(self)}, "
            f"instructions_per_access={self.instructions_per_access!r})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.name == other.name
            and self.instructions_per_access == other.instructions_per_access
            and np.array_equal(self.numpy_addrs(), other.numpy_addrs())
            and np.array_equal(self.numpy_writes(), other.numpy_writes())
        )

    # Mutable container semantics (matching the former dataclass form).
    __hash__ = None  # type: ignore[assignment]

    @property
    def addrs(self) -> List[int]:
        """Addresses as Python ints (materialized lazily when array-backed)."""
        addrs = self._addrs_list
        if addrs is None:
            addrs = self._np_addrs.tolist()
            self._addrs_list = addrs
        return addrs

    @property
    def writes(self) -> Sequence[int]:
        """Write flags as a byte sequence (materialized lazily)."""
        writes = self._writes_list
        if writes is None:
            writes = bytearray(self._np_writes.tobytes())
            self._writes_list = writes
        return writes

    def __len__(self) -> int:
        addrs = self._addrs_list
        if addrs is not None:
            return len(addrs)
        return int(self._np_addrs.shape[0])

    def __iter__(self) -> Iterator[TraceRecord]:
        for addr, w in zip(self.addrs, self.writes):
            yield TraceRecord(addr, bool(w))

    @property
    def read_count(self) -> int:
        return len(self.addrs) - self.write_count

    @property
    def write_count(self) -> int:
        """Number of writeback records (cached; O(1) after first use)."""
        count = self._write_count
        if count is None:
            flags = self._writes_list
            if isinstance(flags, (bytes, bytearray)):
                count = flags.count(1)
            elif flags is None:
                count = int(np.count_nonzero(self._np_writes))
            else:
                count = sum(1 for w in flags if w)
            self._write_count = count
        return count

    @property
    def total_instructions(self) -> float:
        """Instructions represented by the read (demand) portion."""
        return self.read_count * self.instructions_per_access

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace covering [start, stop) (array-backed parents stay
        array-backed; no list materialization)."""
        if self._addrs_list is None or self._writes_list is None:
            return Trace(
                name=f"{self.name}[{start}:{stop}]",
                addrs=np.ascontiguousarray(self.numpy_addrs()[start:stop]),
                writes=np.ascontiguousarray(self.numpy_writes()[start:stop]),
                instructions_per_access=self.instructions_per_access,
            )
        return Trace(
            name=f"{self.name}[{start}:{stop}]",
            addrs=self._addrs_list[start:stop],
            writes=self._writes_list[start:stop],
            instructions_per_access=self.instructions_per_access,
        )

    def footprint_lines(self, line_size: int = 64) -> int:
        """Number of distinct 64B lines touched."""
        return len({addr // line_size for addr in self.addrs})

    def split_columns(self, geometry: "CacheGeometry") -> SplitColumns:
        """Cached ``(set_index, tag, line_addr)`` columns for a geometry.

        Exactly equivalent to applying ``geometry.split`` /
        ``geometry.line_addr`` per address, but computed in one
        vectorized pass and memoized per ``(offset_bits, index_bits)``
        pair — all designs sharing an associativity share the columns.
        """
        key = (geometry.offset_bits, geometry.index_bits)
        columns = self._split_cache.get(key)
        if columns is None:
            addrs = self.numpy_addrs()
            lines = addrs >> geometry.offset_bits
            set_indices = lines & ((1 << geometry.index_bits) - 1)
            tags = lines >> geometry.index_bits
            columns = SplitColumns(
                set_indices.tolist(), tags.tolist(), lines.tolist()
            )
            self._split_cache[key] = columns
        return columns

    # -- numpy column views (computed once per trace) ----------------------

    def numpy_addrs(self) -> np.ndarray:
        """The address column as int64, converted once and cached.

        Every geometry-dependent derivation (:meth:`split_columns`,
        :meth:`shard`) starts from this array, so a bench run replaying
        one trace against many designs pays the O(n) list-to-array
        conversion a single time.
        """
        addrs = self._np_addrs
        if addrs is None:
            addrs = np.asarray(self._addrs_list, dtype=np.int64)
            self._np_addrs = addrs
        return addrs

    def numpy_writes(self) -> np.ndarray:
        """The write-flag column as uint8, converted once and cached."""
        writes = self._np_writes
        if writes is None:
            flags = self._writes_list
            if isinstance(flags, (bytes, bytearray)):
                writes = np.frombuffer(bytes(flags), dtype=np.uint8)
            else:
                writes = np.asarray(
                    [1 if w else 0 for w in flags], dtype=np.uint8
                )
            self._np_writes = writes
        return writes

    def read_prefix(self) -> np.ndarray:
        """``rp[p]`` = demand reads among the first ``p`` records.

        Length ``len(self) + 1``; cached. Lets shard runners recover any
        record's global *read ordinal* in O(1) — the quantity phase
        epochs are counted in.
        """
        prefix = self._read_prefix_cache
        if prefix is None:
            reads = (self.numpy_writes() == 0).astype(np.int64)
            prefix = np.concatenate(([0], np.cumsum(reads)))
            self._read_prefix_cache = prefix
        return prefix

    # -- set-range sharding ------------------------------------------------

    def shard(self, geometry: "CacheGeometry", n_shards: int) -> Tuple["TraceShard", ...]:
        """Partition the trace into set-range shards for one geometry.

        Shard ``i`` receives every record whose set index falls in the
        contiguous range ``[i * num_sets / n, (i + 1) * num_sets / n)``
        — region-aligned, so a 4KB region's lines (which share their
        upper index bits) stay together. Records keep arrival order and
        their global positions. Reuses the memoized vectorized split
        (:meth:`split_columns`) and is itself memoized per
        ``(offset_bits, index_bits, n_shards)``: bench's many designs
        and repeat runs share one partition.

        ``n_shards`` is clamped to ``num_sets`` (a shard must own at
        least one set).
        """
        if n_shards < 1:
            raise TraceError(f"n_shards must be positive, got {n_shards}")
        num_sets = 1 << geometry.index_bits
        n_shards = min(n_shards, num_sets)
        key = (geometry.offset_bits, geometry.index_bits, n_shards)
        shards = self._shard_cache.get(key)
        if shards is None:
            from repro.params.system import REGION_SIZE

            columns = self.split_columns(geometry)
            set_arr = np.asarray(columns.set_indices, dtype=np.int64)
            # A 4KB region's lines occupy consecutive sets; align shard
            # boundaries to region-sized set blocks so a region never
            # straddles two shards (when there are enough blocks).
            region_sets = max(1, REGION_SIZE >> geometry.offset_bits)
            num_blocks = num_sets // region_sets
            if num_blocks >= n_shards:
                shard_ids = ((set_arr // region_sets) * n_shards) // num_blocks
            else:
                shard_ids = (set_arr * n_shards) // num_sets
            addrs = self.numpy_addrs()
            writes = self.numpy_writes()
            tags_arr = np.asarray(columns.tags, dtype=np.int64)
            built = []
            for index in range(n_shards):
                positions = np.flatnonzero(shard_ids == index)
                built.append(
                    TraceShard(
                        index=index,
                        count=n_shards,
                        positions=positions,
                        writes=writes[positions].tolist(),
                        set_indices=set_arr[positions].tolist(),
                        tags=tags_arr[positions].tolist(),
                        addrs=addrs[positions].tolist(),
                    )
                )
            shards = tuple(built)
            self._shard_cache[key] = shards
        return shards

    def shard_slice(
        self, geometry: "CacheGeometry", n_shards: int, index: int
    ) -> "TraceShard":
        """One shard of :meth:`shard` (bounds-checked convenience)."""
        shards = self.shard(geometry, n_shards)
        if not 0 <= index < len(shards):
            raise TraceError(
                f"shard index {index} out of range for {len(shards)} shards"
            )
        return shards[index]


def trace_from_arrays(
    name: str,
    addrs: Iterable[int],
    writes: Iterable[int],
    instructions_per_access: float,
) -> Trace:
    """Build a trace from any iterables (materializes lists)."""
    return Trace(name, list(addrs), bytearray(1 if w else 0 for w in writes),
                 instructions_per_access)


_HEADER = "# repro-trace-v1"

#: Version tag embedded in the binary (.npz) trace format.
NPZ_TRACE_VERSION = 1


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace in the line-oriented text format."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{_HEADER}\n")
        handle.write(f"name {trace.name}\n")
        handle.write(f"ipa {trace.instructions_per_access!r}\n")
        for addr, w in zip(trace.addrs, trace.writes):
            kind = "W" if w else "R"
            handle.write(f"{kind} {addr:x}\n")


def load_trace(path: str) -> Trace:
    """Read a trace produced by :func:`save_trace`."""
    addrs: List[int] = []
    writes = bytearray()
    name = "unnamed"
    ipa = 1.0
    with open(path, "r", encoding="ascii") as handle:
        first = handle.readline().rstrip("\n")
        if first != _HEADER:
            raise TraceError(f"{path}: not a repro trace (bad header {first!r})")
        for line_no, raw in enumerate(handle, start=2):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "name":
                if len(parts) < 2:
                    raise TraceError(f"{path}:{line_no}: truncated name line")
                name = " ".join(parts[1:])
            elif parts[0] == "ipa":
                if len(parts) != 2:
                    raise TraceError(f"{path}:{line_no}: truncated ipa line")
                try:
                    ipa = float(parts[1])
                except ValueError:
                    raise TraceError(
                        f"{path}:{line_no}: bad ipa value {parts[1]!r}"
                    ) from None
            elif parts[0] in ("R", "W"):
                if len(parts) != 2:
                    raise TraceError(f"{path}:{line_no}: malformed record {line!r}")
                addrs.append(int(parts[1], 16))
                writes.append(1 if parts[0] == "W" else 0)
            else:
                raise TraceError(f"{path}:{line_no}: unknown record {parts[0]!r}")
    return Trace(name, addrs, writes, ipa)


def save_trace_npz(trace: Trace, path: str) -> None:
    """Write a trace in the binary ``.npz`` format.

    The archive holds ``addrs`` (int64), ``writes`` (uint8), plus the
    scalar ``name``/``ipa``/``version`` metadata. Addresses above
    2^63 - 1 are rejected (no real address space produces them).

    Members are stored *uncompressed* (``np.savez``): ``np.load`` does
    not memory-map npz members even with ``mmap_mode``, so the trace
    cache maps the ZIP_STORED column bytes directly
    (:func:`load_trace_npz` with ``mmap=True``) — only possible when
    the member data sits verbatim in the archive. Compressed legacy
    entries remain readable (the mmap path falls back to a normal
    load).
    """
    try:
        addrs = trace.numpy_addrs()
        if addrs.dtype != np.int64:
            addrs = addrs.astype(np.int64)
    except (OverflowError, ValueError) as exc:
        raise TraceError(f"trace {trace.name!r} not npz-serializable: {exc}") from exc
    writes = trace.numpy_writes()
    np.savez(
        path,
        version=np.int64(NPZ_TRACE_VERSION),
        name=np.array(trace.name),
        ipa=np.float64(trace.instructions_per_access),
        addrs=addrs,
        writes=writes,
    )


def _npz_member_memmap(path: str, member: str) -> Optional[np.ndarray]:
    """Memory-map one uncompressed member of an npz archive, or None.

    ``np.load(..., mmap_mode=...)`` silently ignores the request for
    npz archives and returns in-memory copies, so this maps the member
    by hand: locate the member's local file header via the zip central
    directory, skip the header to the raw ``.npy`` bytes, parse the npy
    header for dtype/shape, and ``np.memmap`` the data region.
    Returns None for compressed (legacy ``savez_compressed``) members,
    which callers load normally instead.
    """
    with zipfile.ZipFile(path) as archive:
        info = archive.getinfo(member)
        if info.compress_type != zipfile.ZIP_STORED:
            return None
        header_offset = info.header_offset
    with open(path, "rb") as handle:
        handle.seek(header_offset)
        local = handle.read(30)
        if len(local) < 30 or local[:4] != b"PK\x03\x04":
            raise TraceError(f"{path}: bad local header for {member!r}")
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        handle.seek(header_offset + 30 + name_len + extra_len)
        magic = np.lib.format.read_magic(handle)
        if magic == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif magic == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            raise TraceError(
                f"{path}: unsupported npy format {magic} for {member!r}"
            )
        data_offset = handle.tell()
    if len(shape) == 1 and shape[0] == 0:
        return np.empty(shape, dtype=dtype)  # mmap cannot map zero bytes
    return np.memmap(
        path, dtype=dtype, mode="r", shape=shape,
        order="F" if fortran else "C", offset=data_offset,
    )


def load_trace_npz(path: str, *, mmap: bool = False) -> Trace:
    """Read a trace produced by :func:`save_trace_npz`.

    Returns an array-backed :class:`Trace`: the scalar list forms are
    materialized lazily only if a scalar engine asks for them. With
    ``mmap=True`` the two column arrays are memory-mapped straight out
    of the archive (zero-copy across processes via the page cache);
    compressed legacy archives fall back to a normal in-memory load.

    A missing file raises ``FileNotFoundError`` (callers distinguish a
    cold cache from corruption); any malformed archive raises
    :class:`TraceError`.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["version"])
            if version != NPZ_TRACE_VERSION:
                raise TraceError(
                    f"{path}: unsupported npz trace version {version}"
                )
            name = str(data["name"][()])
            ipa = float(data["ipa"])
            addrs = writes = None
            if mmap:
                addrs = _npz_member_memmap(path, "addrs.npy")
                writes = _npz_member_memmap(path, "writes.npy")
            if addrs is None or writes is None:
                addrs = data["addrs"]
                writes = data["writes"]
            if addrs.ndim != 1 or writes.ndim != 1:
                raise TraceError(f"{path}: npz trace columns must be 1-D")
            trace = Trace(name, addrs, writes, ipa)
    except FileNotFoundError:
        raise
    except TraceError:
        raise
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise TraceError(f"{path}: not a valid npz trace ({exc})") from exc
    return trace
