"""Scheduler-driven detailed engine.

A step up in fidelity from :class:`repro.sim.detailed.DetailedEngine`:
memory commands flow through per-channel FR-FCFS queues
(:class:`repro.mem.scheduler.FrFcfsScheduler`), so row-buffer-aware
reordering, queue-capacity back-pressure and bank-level parallelism are
modelled explicitly. Used for row-buffer/scheduling micro-studies and
to validate the interval model's queueing term under contention; far
too slow for the full experiment sweeps.

The engine is event-driven: a command is issued to a channel whenever
that channel's bus is free and its queue holds a ready command; FR-FCFS
picks row hits first, oldest first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.mem.dram import SETS_PER_ROW, DramDevice
from repro.mem.scheduler import FrFcfsScheduler
from repro.params.system import SystemConfig, TRANSFER_BYTES
from repro.sim.trace import Trace


@dataclass
class _Command:
    """One DRAM-cache column access belonging to a request."""

    request_id: int
    set_index: int


@dataclass
class ScheduledResult:
    """Aggregate outcome of a scheduler-driven replay."""

    total_ns: float
    requests: int
    total_latency_ns: float
    row_hit_rate: float
    max_queue_depth: int
    stalled_cycles: int  # enqueue attempts that hit a full queue

    @property
    def avg_latency_ns(self) -> float:
        return self.total_latency_ns / self.requests if self.requests else 0.0


class ScheduledEngine:
    """Replays DRAM-cache set accesses through FR-FCFS channel queues."""

    def __init__(self, config: SystemConfig, queue_capacity: int = 32):
        self.config = config
        self.dram = DramDevice(config.dram_timing, config.dram_bus)
        self.num_channels = len(self.dram.channels)
        self.queues = [FrFcfsScheduler(queue_capacity) for _ in range(self.num_channels)]
        self.max_queue_depth = 0
        self.stalled = 0

    # -- mapping helpers ---------------------------------------------------

    def _channel_of(self, set_index: int) -> int:
        row_group = set_index // SETS_PER_ROW
        return row_group % self.num_channels

    def _bank_key(self, set_index: int) -> Tuple[int, int]:
        row_group = set_index // SETS_PER_ROW
        channel = row_group % self.num_channels
        per_channel = row_group // self.num_channels
        bank = per_channel % self.dram.num_banks_per_channel
        return channel, bank

    def _row_of(self, set_index: int) -> int:
        row_group = set_index // SETS_PER_ROW
        per_channel = row_group // self.num_channels
        return per_channel // self.dram.num_banks_per_channel

    def _open_row(self, bank_key: Tuple[int, int]) -> int:
        channel, bank = bank_key
        return self.dram.channels[channel].banks[bank].open_row

    # -- replay --------------------------------------------------------------

    def replay_sets(
        self,
        set_indices: List[int],
        arrival_interval_ns: float = 5.0,
    ) -> ScheduledResult:
        """Issue one column access per set index, in arrival order.

        Returns per-request latency statistics under FR-FCFS
        scheduling. ``arrival_interval_ns`` controls offered load.
        """
        if arrival_interval_ns <= 0:
            raise SimulationError("arrival interval must be positive")
        if not set_indices:
            raise SimulationError("nothing to replay")

        completion: Dict[int, float] = {}
        arrival: Dict[int, float] = {}
        now = 0.0

        def drain(channel_index: int, until_ns: float) -> None:
            """Issue queued commands on one channel up to a deadline."""
            queue = self.queues[channel_index]
            channel = self.dram.channels[channel_index]
            while len(queue):
                if channel.bus_busy_until_ns > until_ns:
                    break
                command = queue.pop_next(self._open_row)
                if command is None:
                    break
                chan, bank = self._bank_key(command.set_index)
                response = channel.access(
                    bank, self._row_of(command.set_index), TRANSFER_BYTES,
                    max(channel.bus_busy_until_ns, arrival[command.request_id]),
                )
                completion[command.request_id] = response.ready_ns

        for request_id, set_index in enumerate(set_indices):
            now = request_id * arrival_interval_ns
            channel_index = self._channel_of(set_index)
            queue = self.queues[channel_index]
            while queue.full:
                # Back-pressure: drain the channel before accepting more.
                self.stalled += 1
                drain(channel_index, float("inf"))
            arrival[request_id] = now
            queue.enqueue(
                _Command(request_id, set_index), now,
                self._bank_key(set_index), self._row_of(set_index),
            )
            self.max_queue_depth = max(self.max_queue_depth, len(queue))
            drain(channel_index, now)

        for channel_index in range(self.num_channels):
            drain(channel_index, float("inf"))

        missing = set(range(len(set_indices))) - set(completion)
        if missing:
            raise SimulationError(f"requests never completed: {sorted(missing)[:5]}")

        total_latency = sum(
            completion[rid] - arrival[rid] for rid in range(len(set_indices))
        )
        return ScheduledResult(
            total_ns=max(completion.values()),
            requests=len(set_indices),
            total_latency_ns=total_latency,
            row_hit_rate=self.dram.row_hit_rate(),
            max_queue_depth=self.max_queue_depth,
            stalled_cycles=self.stalled,
        )

    def replay_trace(self, trace: Trace, geometry, arrival_interval_ns: float = 5.0):
        """Convenience: map a trace's addresses to sets and replay."""
        sets = [geometry.set_index(addr) for addr in trace.addrs]
        return self.replay_sets(sets, arrival_interval_ns)
