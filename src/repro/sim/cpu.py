"""Core performance model and multi-core (weighted-speedup) aggregation.

The paper reports *weighted speedup* for 16-core rate-mode workloads
normalized to the direct-mapped baseline, aggregated as a geometric
mean across workloads. In rate mode all cores execute the same
benchmark, so weighted speedup equals the per-core speedup computed by
the interval model with rate-mode bandwidth sharing; this module makes
that relationship explicit and also supports heterogeneous (mix-style)
aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.params.system import CoreConfig


@dataclass(frozen=True)
class CorePerformance:
    """Per-core outcome of one run."""

    instructions: float
    runtime_ns: float

    def __post_init__(self):
        if self.instructions <= 0:
            raise SimulationError("instructions must be positive")
        if self.runtime_ns <= 0:
            raise SimulationError("runtime must be positive")

    @property
    def ips(self) -> float:
        """Instructions per nanosecond."""
        return self.instructions / self.runtime_ns

    def cpi(self, config: CoreConfig) -> float:
        """Cycles per instruction at the configured frequency."""
        cycles = self.runtime_ns * config.frequency_ghz
        return cycles / self.instructions

    def ipc(self, config: CoreConfig) -> float:
        return 1.0 / self.cpi(config)


def weighted_speedup(
    cores: Sequence[CorePerformance],
    baselines: Sequence[CorePerformance],
) -> float:
    """Sum over cores of (IPS_config / IPS_baseline) / num_cores.

    For rate mode (all cores identical) this collapses to the single
    core's speedup; for mixes each member contributes its own ratio.
    """
    if len(cores) != len(baselines):
        raise SimulationError(
            f"core count mismatch: {len(cores)} vs {len(baselines)}"
        )
    if not cores:
        raise SimulationError("need at least one core")
    total = sum(c.ips / b.ips for c, b in zip(cores, baselines))
    return total / len(cores)


def rate_mode_performance(
    instructions: float, runtime_ns: float, num_cores: int
) -> Sequence[CorePerformance]:
    """Replicate one measured core across a rate-mode system."""
    if num_cores <= 0:
        raise SimulationError("need at least one core")
    one = CorePerformance(instructions, runtime_ns)
    return [one] * num_cores
