"""Whole-system configuration (paper Table III) with scaling support.

The paper evaluates a 16-core system with a 4GB DRAM cache in front of
128GB of NVM. Simulating gigascale structures access-by-access in Python
is feasible functionally but slow, so experiments run a *scaled* system:
cache capacity and workload footprints are shrunk by the same factor,
preserving the footprint/capacity ratio and the sets-per-way geometry
that drive hit-rate and way-prediction behaviour. ``scale=1.0``
reproduces the paper's geometry exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.params.timing import BusConfig, DramTiming, NvmTiming, hbm_bus, nvm_bus
from repro.utils.bitops import is_pow2

LINE_SIZE = 64
TAG_ECC_BYTES = 8  # tags live in unused ECC bits -> 72B streamed per line
TRANSFER_BYTES = LINE_SIZE + TAG_ECC_BYTES
PAGE_SIZE = 4096
REGION_SIZE = 4096  # GWS region granularity


@dataclass(frozen=True)
class CoreConfig:
    """Processor core parameters (Table III: 16 cores, 3GHz, 2-wide OoO)."""

    num_cores: int = 16
    frequency_ghz: float = 3.0
    issue_width: int = 2
    base_cpi: float = 0.7  # CPI with a perfect memory system
    mlp: float = 3.0  # average overlap of outstanding L3 misses

    def __post_init__(self):
        if self.num_cores <= 0:
            raise ConfigError("num_cores must be positive")
        if self.frequency_ghz <= 0:
            raise ConfigError("frequency must be positive")
        if self.base_cpi <= 0:
            raise ConfigError("base_cpi must be positive")
        if self.mlp < 1.0:
            raise ConfigError("mlp must be >= 1 (misses cannot anti-overlap)")


@dataclass(frozen=True)
class CacheGeometryConfig:
    """Geometry of one cache level."""

    capacity_bytes: int
    ways: int
    line_size: int = LINE_SIZE

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ConfigError("capacity must be positive")
        if self.ways <= 0:
            raise ConfigError("ways must be positive")
        if not is_pow2(self.line_size):
            raise ConfigError("line size must be a power of two")
        lines = self.capacity_bytes // self.line_size
        if lines * self.line_size != self.capacity_bytes:
            raise ConfigError("capacity must be a multiple of the line size")
        if lines % self.ways != 0:
            raise ConfigError("line count must be divisible by ways")
        if not is_pow2(lines // self.ways):
            raise ConfigError("number of sets must be a power of two")

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass(frozen=True)
class SystemConfig:
    """Complete system description used by simulators and timing models."""

    cores: CoreConfig = field(default_factory=CoreConfig)
    llc: CacheGeometryConfig = field(
        default_factory=lambda: CacheGeometryConfig(8 * 1024 * 1024, 16)
    )
    dram_cache: CacheGeometryConfig = field(
        default_factory=lambda: CacheGeometryConfig(4 * 1024 * 1024 * 1024, 1)
    )
    dram_timing: DramTiming = field(default_factory=DramTiming)
    dram_bus: BusConfig = field(default_factory=hbm_bus)
    nvm_timing: NvmTiming = field(default_factory=NvmTiming)
    nvm_bus: BusConfig = field(default_factory=nvm_bus)
    nvm_capacity_bytes: int = 128 * 1024 * 1024 * 1024
    scale: float = 1.0  # bookkeeping only; geometry is already scaled

    def __post_init__(self):
        if self.nvm_capacity_bytes < self.dram_cache.capacity_bytes:
            raise ConfigError("main memory must be at least as large as the cache")

    def with_dram_cache(self, capacity_bytes: int, ways: int) -> "SystemConfig":
        """Return a copy with a different DRAM-cache geometry."""
        return replace(
            self,
            dram_cache=CacheGeometryConfig(capacity_bytes, ways),
        )


def paper_system(ways: int = 1) -> SystemConfig:
    """The unscaled Table III system (4GB cache, 128GB NVM)."""
    return SystemConfig().with_dram_cache(4 * 1024 * 1024 * 1024, ways)


def scaled_system(ways: int = 1, scale: float = 1.0 / 128.0) -> SystemConfig:
    """A geometry-scaled system for tractable simulation.

    The default scale of 1/128 turns the 4GB cache into 32MB. Workload
    footprints are scaled by the same factor in
    :mod:`repro.workloads.spec`, preserving footprint/capacity ratios.
    """
    if scale <= 0 or scale > 1:
        raise ConfigError(f"scale must be in (0, 1], got {scale}")
    cache_bytes = int(4 * 1024 * 1024 * 1024 * scale)
    nvm_bytes = int(128 * 1024 * 1024 * 1024 * scale)
    base = SystemConfig(
        dram_cache=CacheGeometryConfig(cache_bytes, ways),
        nvm_capacity_bytes=max(nvm_bytes, cache_bytes),
        scale=scale,
    )
    return base
