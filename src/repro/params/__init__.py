"""System configuration dataclasses mirroring the paper's Table III."""

from repro.params.timing import DramTiming, NvmTiming, BusConfig
from repro.params.system import (
    CacheGeometryConfig,
    CoreConfig,
    SystemConfig,
    scaled_system,
    paper_system,
)

__all__ = [
    "DramTiming",
    "NvmTiming",
    "BusConfig",
    "CacheGeometryConfig",
    "CoreConfig",
    "SystemConfig",
    "scaled_system",
    "paper_system",
]
