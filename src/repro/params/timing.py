"""Device timing and bus parameters.

Values follow Table III of the paper:

* DRAM cache: HBM-like, 8 channels x 128-bit bus at 500MHz (DDR 1GHz),
  128 GB/s aggregate, tCAS-tRCD-tRP-tRAS = 13-13-13-30 ns (typical HBM
  numbers for the listed configuration).
* Main memory: PCM-like NVM, 2 channels x 64-bit at 1GHz (DDR 2GHz),
  32 GB/s aggregate, read latency 2-4x DRAM and write latency 4x DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class BusConfig:
    """A data bus shared by all banks of one device.

    ``efficiency`` is the sustainable fraction of peak bandwidth —
    real DRAM/NVM channels lose ~20-30% of raw bandwidth to row misses,
    refresh, read/write turnaround and command overheads, and the
    queueing model should saturate at the *sustainable* rate.
    """

    channels: int
    bus_bits: int
    frequency_mhz: float  # command clock; data rate is DDR (2x)
    efficiency: float = 0.80

    def __post_init__(self):
        if self.channels <= 0:
            raise ConfigError(f"channels must be positive, got {self.channels}")
        if self.bus_bits <= 0 or self.bus_bits % 8 != 0:
            raise ConfigError(f"bus_bits must be a positive multiple of 8, got {self.bus_bits}")
        if self.frequency_mhz <= 0:
            raise ConfigError(f"frequency must be positive, got {self.frequency_mhz}")
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigError(f"efficiency must be in (0, 1], got {self.efficiency}")

    @property
    def bytes_per_cycle(self) -> float:
        """Bytes transferred per command-clock cycle per channel (DDR)."""
        return (self.bus_bits / 8.0) * 2.0

    @property
    def aggregate_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth in GB/s across all channels."""
        return self.channels * self.bytes_per_cycle * self.frequency_mhz * 1e6 / 1e9

    @property
    def sustainable_bandwidth_gbps(self) -> float:
        """Achievable bandwidth after protocol overheads."""
        return self.aggregate_bandwidth_gbps * self.efficiency

    def transfer_ns(self, num_bytes: int) -> float:
        """Time to stream ``num_bytes`` over one channel, in ns."""
        cycles = num_bytes / self.bytes_per_cycle
        return cycles * 1e3 / self.frequency_mhz


@dataclass(frozen=True)
class DramTiming:
    """DRAM array timing in nanoseconds."""

    t_cas: float = 13.0
    t_rcd: float = 13.0
    t_rp: float = 13.0
    t_ras: float = 30.0

    def __post_init__(self):
        for name in ("t_cas", "t_rcd", "t_rp", "t_ras"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    @property
    def row_hit_ns(self) -> float:
        """Latency of a column access when the row is already open."""
        return self.t_cas

    @property
    def row_miss_ns(self) -> float:
        """Latency when a different row is open (precharge + activate + CAS)."""
        return self.t_rp + self.t_rcd + self.t_cas

    @property
    def row_empty_ns(self) -> float:
        """Latency when the bank is precharged (activate + CAS)."""
        return self.t_rcd + self.t_cas


@dataclass(frozen=True)
class NvmTiming:
    """Non-volatile memory (PCM-like) timing in nanoseconds.

    Read latency is ~2-4x DRAM and write latency ~4x DRAM per the
    paper's configuration; defaults sit in the middle of that band.
    """

    read_ns: float = 180.0
    write_ns: float = 360.0

    def __post_init__(self):
        if self.read_ns <= 0 or self.write_ns <= 0:
            raise ConfigError("NVM latencies must be positive")


def hbm_bus() -> BusConfig:
    """The paper's stacked-DRAM bus: 8 channels, 128-bit, 500MHz DDR."""
    return BusConfig(channels=8, bus_bits=128, frequency_mhz=500.0)


def nvm_bus() -> BusConfig:
    """The paper's NVM bus: 2 channels, 64-bit, 1000MHz DDR."""
    return BusConfig(channels=2, bus_bits=64, frequency_mhz=1000.0)
