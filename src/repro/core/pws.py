"""Probabilistic Way-Steering (PWS), Section IV-B of the paper.

The preferred way of a line is a pure function of its tag (tag parity
for two ways). On an install, PWS places the line in the preferred way
with probability PIP (Preferred-way Install Probability, default 85%)
and in one of the other candidate ways otherwise. Way prediction is the
stateless preferred way, so prediction accuracy approximately equals
PIP while conflicting lines can still spread across the set.

PIP=50% (for 2 ways) degenerates to unbiased random install;
PIP=100% degenerates to a direct-mapped cache.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import ReplacementPolicy
from repro.cache.storage import TagStore
from repro.core.steering import InstallSteering, preferred_way
from repro.errors import PolicyError
from repro.utils.rng import SetLocalRng, XorShift64

DEFAULT_PIP = 0.85


class ProbabilisticWaySteering(InstallSteering):
    """Install into the tag-preferred way with probability ``pip``."""

    name = "pws"
    # The PIP coin is drawn from a per-set counter-based stream, so the
    # install choices for one set are independent of other sets' traffic
    # and set-sharded runs merge bit-identically. The coin and the
    # spill pick are counter-based per-set draws, so the vector engine
    # replays them exactly.
    shardable = True
    vectorizable = True

    def __init__(
        self,
        geometry: CacheGeometry,
        pip: float = DEFAULT_PIP,
        rng: Optional[XorShift64] = None,
    ):
        super().__init__(geometry)
        if not 0.0 <= pip <= 1.0:
            raise PolicyError(f"PIP must be in [0, 1], got {pip}")
        if geometry.ways < 2 and pip < 1.0:
            # A 1-way cache has no alternate; treat it as direct-mapped.
            pip = 1.0
        self.pip = pip
        self._rng = SetLocalRng.from_stream(rng or XorShift64(0x1B39))

    def choose_install_way(
        self,
        set_index: int,
        tag: int,
        addr: int,
        store: TagStore,
        replacement: ReplacementPolicy,
    ) -> int:
        return self.steer_among(
            set_index, self.candidate_ways(set_index, tag), tag
        )

    def steer_among(
        self, set_index: int, candidates: Sequence[int], tag: int
    ) -> int:
        """Apply the PIP coin flip over an explicit candidate list.

        Split out so SWS can reuse the same biased choice over its
        two-entry candidate set. ``set_index`` selects the per-set
        random stream the coin is drawn from.
        """
        preferred = preferred_way(tag, self.ways)
        if preferred not in candidates:
            # SWS guarantees the preferred way is always a candidate, so
            # this only happens with a mis-wired policy stack.
            raise PolicyError(
                f"preferred way {preferred} not among candidates {candidates}"
            )
        if len(candidates) == 1 or self._rng.next_bool(set_index, self.pip):
            return preferred
        others = [w for w in candidates if w != preferred]
        return others[self._rng.next_below(set_index, len(others))]

    def storage_bits(self) -> int:
        return 0  # PWS is stateless (Table IX)
