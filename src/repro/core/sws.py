"""Skewed Way-Steering (SWS), Section V of the paper.

For an N-way cache, unrestricted residency makes miss confirmation cost
N probes, which dominates bandwidth once miss rate is non-trivial. SWS
restricts each line to exactly two of the N ways:

* the **preferred way** — low log2(N) bits of the tag, and
* the **alternate way** — found by scanning the tag's higher bits in
  log2(N)-bit groups, taking the first group that differs from the
  preferred way; if every group equals the preferred way, the preferred
  way's bits are inverted.

Miss confirmation then probes only two ways regardless of N, and
prediction/steering reuse the 2-way ACCORD machinery over the
{preferred, alternate} pair. SWS(N, k) generalizes to k allowed
locations (k-1 alternates taken from successive differing groups).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import ReplacementPolicy
from repro.cache.storage import TagStore
from repro.core.pws import DEFAULT_PIP, ProbabilisticWaySteering
from repro.core.steering import InstallSteering, preferred_way, tag_hash, ways_bits
from repro.errors import PolicyError
from repro.utils.bitops import bit_field, mask
from repro.utils.rng import XorShift64

_TAG_SCAN_GROUPS = 9  # bit groups of the 32-bit tag hash to scan


def alternate_way(tag: int, ways: int) -> int:
    """The paper's alternate-way hash (Section V-A).

    Scans ``log2(ways)``-bit groups of the tag starting at the group
    just above the preferred-way bits; the first group whose value
    differs from the preferred way is the alternate. If all scanned
    groups match, the preferred way's bits are inverted.
    """
    if ways < 2:
        raise PolicyError("alternate_way requires at least 2 ways")
    bits = ways_bits(ways)
    hashed = tag_hash(tag)
    preferred = hashed & mask(bits)
    for group in range(1, _TAG_SCAN_GROUPS + 1):
        candidate = bit_field(hashed, group * bits, bits)
        if candidate != preferred:
            return candidate
    return preferred ^ mask(bits)


def skewed_candidates(tag: int, ways: int, hashes: int = 2) -> Tuple[int, ...]:
    """The k allowed ways for a tag under SWS(N, k).

    ``hashes=1`` degenerates to direct-mapped (preferred only);
    ``hashes=2`` is the paper's SWS; larger k collects further distinct
    alternates from successive tag bit groups.
    """
    if hashes < 1:
        raise PolicyError(f"need at least one hash, got {hashes}")
    if hashes > ways:
        raise PolicyError(f"cannot pick {hashes} distinct ways out of {ways}")
    preferred = preferred_way(tag, ways)
    if hashes == 1 or ways < 2:
        return (preferred,)
    chosen: List[int] = [preferred]
    bits = ways_bits(ways)
    hashed = tag_hash(tag)
    group = 1
    while len(chosen) < hashes and group <= _TAG_SCAN_GROUPS:
        candidate = bit_field(hashed, group * bits, bits)
        if candidate not in chosen:
            chosen.append(candidate)
        group += 1
    # Fill any remaining slots deterministically (rare: degenerate tags).
    probe = preferred ^ mask(bits)
    while len(chosen) < hashes:
        if probe not in chosen:
            chosen.append(probe)
        probe = (probe + 1) % ways
    return tuple(chosen)


class SkewedWaySteering(InstallSteering):
    """SWS(N, k): residency restricted to k tag-hashed ways.

    Within the candidate pair the install choice is PWS-biased toward
    the preferred way (the same PIP coin as 2-way ACCORD), so the
    stateless preferred-way prediction stays accurate.
    """

    name = "sws"
    # Candidates are pure in the tag and the install coin is per-set
    # (via PWS's set-local stream), so SWS is safe to shard by set —
    # and, the candidate scan being a pure function of the tag, safe
    # for the vector engine to replay as whole-array ops.
    shardable = True
    vectorizable = True
    # Implied by vectorizable, declared for symmetry with the GWS
    # wrapper that embeds SWS as its install fallback: the candidate
    # matrix precomputes and the install coin replays per set.
    replay_vectorizable = True

    def __init__(
        self,
        geometry: CacheGeometry,
        hashes: int = 2,
        pip: float = DEFAULT_PIP,
        rng: Optional[XorShift64] = None,
    ):
        super().__init__(geometry)
        if geometry.ways < 2:
            raise PolicyError("SWS requires an associative cache")
        self.hashes = hashes
        self._pws = ProbabilisticWaySteering(geometry, pip=pip, rng=rng)
        # Candidate computation is pure in the tag; memoize the last one
        # because lookup and install usually query the same tag twice.
        self._memo_tag = -1
        self._memo_ways: Tuple[int, ...] = ()

    @property
    def pip(self) -> float:
        return self._pws.pip

    def candidate_ways(self, set_index: int, tag: int) -> Sequence[int]:
        if tag != self._memo_tag:
            self._memo_tag = tag
            self._memo_ways = skewed_candidates(tag, self.ways, self.hashes)
        return self._memo_ways

    def choose_install_way(
        self,
        set_index: int,
        tag: int,
        addr: int,
        store: TagStore,
        replacement: ReplacementPolicy,
    ) -> int:
        candidates = self.candidate_ways(set_index, tag)
        return self._pws.steer_among(set_index, candidates, tag)

    def storage_bits(self) -> int:
        return 0  # the hash is combinational logic (Table IX)
