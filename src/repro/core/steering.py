"""Install-steering framework.

A *steering policy* answers two questions for the DRAM cache:

1. ``candidate_ways(tag)`` — in which ways may a line with this tag
   reside at all? This set is what miss confirmation must probe: the
   full set of ways for conventional designs, exactly two for SWS.
2. ``choose_install_way(...)`` — on a fill, which way receives the line?

Coordination with way prediction happens through shared conventions
(the *preferred way* is a pure function of the tag) and, for GWS,
through shared region tables.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import ReplacementPolicy
from repro.cache.storage import TagStore
from repro.errors import PolicyError
from repro.params.system import REGION_SIZE
from repro.utils.bitops import ilog2


_HASH_MULT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def tag_hash(tag: int) -> int:
    """Stateless 64-bit hash of a tag (one multiply, top bits used).

    The paper derives the preferred way from raw tag LSBs (tag parity
    for 2 ways, Figure 5a). Under paged physical memory that is fine,
    but lines that alias in *every* set-associative organization of one
    capacity necessarily have tags differing by a multiple of the way
    count — raw LSBs would then give all conflicting lines the same
    preferred way, a pathological correlation. Hashing the tag first
    keeps the function stateless and address-derived (the property
    ACCORD needs) while decorrelating preferred ways of conflicting
    lines. Documented as a deviation in DESIGN.md.
    """
    return ((tag + 1) * _HASH_MULT & _MASK64) >> 32


def preferred_way(tag: int, ways: int) -> int:
    """ACCORD's preferred-way function: a stateless hash of the tag."""
    return tag_hash(tag) & (ways - 1)


def region_id(addr: int, region_size: int = REGION_SIZE) -> int:
    """4KB-region identifier of a byte address (GWS granularity)."""
    return addr // region_size


class InstallSteering:
    """Base class: unrestricted candidates, subclass picks the way."""

    name = "base"
    # Set-sharding capability (see repro.core.protocols): True means all
    # mutable state consulted for set s depends only on accesses to set
    # s. Conservative default is False; each set-local subclass opts in.
    shardable = False

    def __init__(self, geometry: CacheGeometry):
        if geometry.ways < 1:
            raise PolicyError("steering requires at least one way")
        self.geometry = geometry
        self.ways = geometry.ways
        self._all_ways = tuple(range(geometry.ways))
        # ``static_candidates`` is the hot-loop contract: when not None,
        # ``candidate_ways`` returns exactly this tuple for every
        # (set, tag), so the access path may use it without calling the
        # method per access. Any subclass inheriting the base
        # ``candidate_ways`` trivially satisfies it; subclasses that
        # override the method default to None (per-tag candidates)
        # unless they opt in. Validated once at design-build time by
        # :func:`repro.core.protocols.ensure_policy_conformance`.
        if type(self).candidate_ways is InstallSteering.candidate_ways:
            self.static_candidates: "Optional[Tuple[int, ...]]" = self._all_ways
        else:
            self.static_candidates = None

    def candidate_ways(self, set_index: int, tag: int) -> Sequence[int]:
        """Ways where a line with this tag may legally reside."""
        return self._all_ways

    def choose_install_way(
        self,
        set_index: int,
        tag: int,
        addr: int,
        store: TagStore,
        replacement: ReplacementPolicy,
    ) -> int:
        """Pick the way to install an incoming line into."""
        raise NotImplementedError

    def on_install(self, set_index: int, tag: int, addr: int, way: int) -> None:
        """Called after the install commits (lets GWS update its RIT)."""

    def storage_bits(self) -> int:
        """SRAM cost of the policy's metadata (Table IX accounting)."""
        return 0


class UnbiasedSteering(InstallSteering):
    """Baseline set-associative install: the replacement policy decides.

    With random replacement this is the paper's "2-way (Unbiased,
    PIP=50%)" configuration.
    """

    name = "unbiased"
    # Delegates entirely to the replacement policy; whether the combined
    # stack shards safely is the replacement policy's call, checked
    # separately by cache_is_shardable() (and likewise for the vector
    # engine via cache_is_vectorizable()).
    shardable = True
    vectorizable = True

    def choose_install_way(
        self,
        set_index: int,
        tag: int,
        addr: int,
        store: TagStore,
        replacement: ReplacementPolicy,
    ) -> int:
        candidates = self.candidate_ways(set_index, tag)
        return replacement.victim(set_index, candidates, store)


class DirectMappedSteering(InstallSteering):
    """Degenerate steering for 1-way caches (and PIP=100% semantics)."""

    name = "direct"
    shardable = True  # stateless: pure function of the tag
    vectorizable = True

    def __init__(self, geometry: CacheGeometry):
        super().__init__(geometry)
        if geometry.ways == 1:
            # With one way the candidate set is tag-independent.
            self.static_candidates = self._all_ways

    def candidate_ways(self, set_index: int, tag: int) -> Sequence[int]:
        if self.ways == 1:
            return (0,)
        return (preferred_way(tag, self.ways),)

    def choose_install_way(
        self,
        set_index: int,
        tag: int,
        addr: int,
        store: TagStore,
        replacement: ReplacementPolicy,
    ) -> int:
        return self.candidate_ways(set_index, tag)[0]


def ways_bits(ways: int) -> int:
    """Bits needed to name one way (0 for a direct-mapped cache)."""
    return ilog2(ways) if ways > 1 else 0
