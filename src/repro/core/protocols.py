"""Structural interfaces for every pluggable cache policy.

The access path (:mod:`repro.cache.access_path`) composes four policy
roles — install steering, way prediction, victim replacement, and the
DCP writeback directory. Historically the roles were defined by base
classes plus duck-typed probes (``getattr(dcp, "authoritative",
True)``); these :class:`typing.Protocol` definitions make the contracts
explicit and runtime-checkable, so a policy either conforms or fails
loudly at design-construction time instead of deep inside a run.

All protocols are structural: conformance needs no inheritance, only
the right members. The concrete policies in :mod:`repro.core` and
:mod:`repro.cache` all satisfy them (asserted by the test suite and by
:func:`ensure_policy_conformance`, which :func:`repro.core.accord.make_design`
calls on every cache it assembles).

Import direction note: core -> cache imports are the allowed direction,
so this module may import :mod:`repro.cache.replacement`; the cache
package, however, must never import this module at runtime (that would
cycle through ``repro.core.__init__``) — cache modules name these types
in annotations only.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.cache.replacement import ReplacementPolicy
from repro.errors import PolicyError

if TYPE_CHECKING:  # hints only; keeps the module cheap to import
    from repro.cache.geometry import CacheGeometry
    from repro.cache.storage import TagStore


@runtime_checkable
class InstallSteeringPolicy(Protocol):
    """Decides where lines may live and where fills land.

    ``candidate_ways`` defines the legal residence set for a tag (what
    miss confirmation must probe); ``choose_install_way`` picks the fill
    target from that set. ``on_install`` lets stateful policies (GWS's
    RIT) observe committed installs.

    Optional capability: ``shardable`` (bool class attribute, default
    False) — see :func:`policy_is_shardable`. Set-local policies declare
    True to opt into set-sharded parallel runs.
    """

    name: str
    geometry: "CacheGeometry"
    ways: int
    #: Constant candidate set, or None when candidates vary per tag.
    #: Required: every steering policy must declare the attribute (the
    #: access path reads it directly — no runtime probe). Validated by
    #: :func:`ensure_policy_conformance` at design-build time.
    static_candidates: Optional[Sequence[int]]

    def candidate_ways(self, set_index: int, tag: int) -> Sequence[int]: ...

    def choose_install_way(
        self,
        set_index: int,
        tag: int,
        addr: int,
        store: "TagStore",
        replacement: ReplacementPolicy,
    ) -> int: ...

    def on_install(self, set_index: int, tag: int, addr: int, way: int) -> None: ...

    def storage_bits(self) -> int: ...


@runtime_checkable
class WayPredictorPolicy(Protocol):
    """Names the way to probe first on a read.

    ``on_access``/``on_install``/``on_evict`` are the observation hooks
    stateful predictors (MRU, partial-tag, GWS's RLT) learn from; the
    stateless predictors inherit no-op implementations.

    Optional capability: ``shardable`` (see :func:`policy_is_shardable`).
    """

    name: str
    geometry: "CacheGeometry"
    ways: int

    def predict(self, set_index: int, tag: int, addr: int) -> int: ...

    def on_access(
        self, set_index: int, tag: int, addr: int, way: Optional[int], hit: bool
    ) -> None: ...

    def on_install(self, set_index: int, tag: int, addr: int, way: int) -> None: ...

    def on_evict(self, set_index: int, tag: int, way: int) -> None: ...

    def storage_bits(self) -> int: ...


@runtime_checkable
class DcpDirectoryPolicy(Protocol):
    """Writeback way-information source (the paper's extended DCP).

    ``authoritative`` is the contract the access path branches on: True
    means a ``lookup`` miss *proves* the line is absent, so a writeback
    may bypass straight to NVM; False (a finite directory that forgets)
    means a miss is inconclusive and the writeback must probe. This
    replaces the old ``getattr(dcp, "authoritative", True)`` duck-typed
    probe — every directory must declare the attribute.

    Optional capability: ``shardable`` (see :func:`policy_is_shardable`):
    the exact directory partitions by set (each line address maps to one
    set) and declares True; the finite LRU directory's global capacity
    couples sets and declares False.
    """

    authoritative: bool

    def lookup(self, line_addr: int) -> Optional[int]: ...

    def insert(self, line_addr: int, way: int) -> None: ...

    def remove(self, line_addr: int) -> None: ...

    def hit_rate(self) -> float: ...


#: Policy roles consulted by the access path, in reporting order. Each
#: may carry the optional ``shardable`` / ``vectorizable`` capability
#: attributes.
_SHARD_ROLES = ("steering", "predictor", "replacement", "dcp", "lookup")


def policy_is_shardable(policy) -> bool:
    """The ``shardable`` capability of one policy (conservative default).

    ``shardable = True`` declares that every piece of mutable state the
    policy consults or updates for set *s* depends only on accesses to
    set *s* (and on build-time configuration). Under that contract a run
    may be partitioned into set-range shards executed independently and
    merged, and the merged statistics are bit-identical to the serial
    run.

    The capability is *opt-in*: a policy that does not declare the
    attribute is treated as global-state (``False``), so unknown custom
    policies fall back to the exact serial path rather than being
    sharded silently wrong. In-repo policies with global state (GWS's
    RIT/RLT region tables, set-dueling's PSEL counter, the finite DCP
    directory's LRU capacity) declare ``shardable = False`` explicitly.
    """
    return bool(getattr(policy, "shardable", False)) if policy is not None else True


def unshardable_roles(cache) -> list:
    """Names of the cache's policy roles that block set-sharding.

    Empty list means the cache may be shard-executed exactly. A cache
    without an ``AccessPath`` (e.g. the column-associative model, whose
    alternate location lives in a *different* set) is reported as a
    single ``"cache"`` pseudo-role: its access flow itself crosses set
    boundaries.
    """
    if getattr(cache, "path", None) is None:
        return ["cache"]
    return [
        role
        for role in _SHARD_ROLES
        if not policy_is_shardable(getattr(cache, role, None))
    ]


def cache_is_shardable(cache) -> bool:
    """True when every policy role of ``cache`` declares ``shardable``.

    This is the gate the shard-parallel run engine checks before
    splitting a run; see :func:`unshardable_roles` for diagnostics.
    """
    return not unshardable_roles(cache)


def policy_is_vectorizable(policy) -> bool:
    """The ``vectorizable`` capability of one policy (default False).

    ``vectorizable = True`` declares that the policy's full behavior —
    candidate sets, probe order, install choice, prediction, random
    draws, observation hooks — is a deterministic set-local function
    that the vector simulation engine
    (:class:`repro.sim.engines.VectorEngine`) replays exactly as whole-
    array numpy recurrences. It is strictly stronger than ``shardable``:
    a vectorizable policy must also be shardable, because the vector
    kernel reorders accesses across sets (never within one).

    Like ``shardable``, the capability is opt-in with a conservative
    default: a policy that does not declare it is driven through the
    exact per-access paths. Only the in-repo policies whose recurrences
    the vector kernel implements declare True.
    """
    return bool(getattr(policy, "vectorizable", False)) if policy is not None else True


def unvectorizable_roles(cache) -> list:
    """Names of the cache's policy roles that block vector execution.

    Empty list means every role opted in (the engine may still decline
    for structural reasons, e.g. an unprefilled store). A cache without
    an ``AccessPath`` is a single ``"cache"`` pseudo-role, as in
    :func:`unshardable_roles`.
    """
    if getattr(cache, "path", None) is None:
        return ["cache"]
    return [
        role
        for role in _SHARD_ROLES
        if not policy_is_vectorizable(getattr(cache, role, None))
    ]


def cache_is_vectorizable(cache) -> bool:
    """True when every policy role of ``cache`` declares ``vectorizable``."""
    return not unvectorizable_roles(cache)


def policy_is_replay_vectorizable(policy) -> bool:
    """The ``replay_vectorizable`` capability of one policy.

    ``replay_vectorizable = True`` declares that the policy's dense
    per-access math (candidate sets, probe order, hashed preferences,
    per-set counter-based random draws) is a pure precomputable
    function, while its *global* mutable state — if any — is touched
    only through the small event set the sparse-replay engine
    (:class:`repro.sim.engines.SparseReplayEngine`) replays in trace
    order: region-table lookups/records (GWS RIT/RLT), PSEL votes
    (set-dueling), and cross-set displacements (the CA cache).

    Every ``vectorizable`` policy is trivially replay-vectorizable (no
    global state to replay at all), so the capability is implied rather
    than re-declared. Only policies that are *not* set-local need the
    explicit attribute; the default for undeclared global-state
    policies stays False, keeping them on the exact per-access paths.
    """
    if policy is None:
        return True
    if getattr(policy, "replay_vectorizable", False):
        return True
    return bool(getattr(policy, "vectorizable", False))


def unreplayable_roles(cache) -> list:
    """Names of the cache's policy roles that block sparse-replay.

    Empty list means every role opted in (the replay engine may still
    decline for structural reasons, e.g. an unprefilled store or a
    policy stack outside its kernels). A cache without an
    ``AccessPath`` may opt in *as a whole* by declaring
    ``replay_vectorizable`` on the cache class (the column-associative
    model does); otherwise it is the single ``"cache"`` pseudo-role,
    as in :func:`unshardable_roles`.
    """
    if getattr(cache, "path", None) is None:
        if getattr(cache, "replay_vectorizable", False):
            return []
        return ["cache"]
    return [
        role
        for role in _SHARD_ROLES
        if not policy_is_replay_vectorizable(getattr(cache, role, None))
    ]


def cache_is_replay_vectorizable(cache) -> bool:
    """True when every role of ``cache`` admits sparse-replay execution."""
    return not unreplayable_roles(cache)


def ensure_policy_conformance(cache) -> None:
    """Validate a cache's policies against the protocols.

    Raises :class:`~repro.errors.PolicyError` naming the offending role.
    Called by :func:`repro.core.accord.make_design` after assembly so a
    malformed custom policy fails at build time, not mid-simulation.
    """
    checks = (
        ("steering", getattr(cache, "steering", None), InstallSteeringPolicy, False),
        ("predictor", getattr(cache, "predictor", None), WayPredictorPolicy, True),
        ("replacement", getattr(cache, "replacement", None), ReplacementPolicy, False),
        ("dcp", getattr(cache, "dcp", None), DcpDirectoryPolicy, True),
    )
    for role, policy, protocol, optional in checks:
        if policy is None:
            if optional:
                continue
            raise PolicyError(f"cache has no {role} policy")
        if not isinstance(policy, protocol):
            raise PolicyError(
                f"{role} policy {type(policy).__name__} does not conform to "
                f"{protocol.__name__}"
            )
    _check_static_candidates(cache.steering)


def _check_static_candidates(steering) -> None:
    """Validate the steering policy's ``static_candidates`` declaration.

    ``static_candidates`` (required attribute, None allowed) is the
    hot-loop contract the access path relies on: when not None,
    ``candidate_ways`` must return exactly that sequence for every
    (set, tag). The access path reads the attribute directly — no
    runtime probe — so a policy must declare it (None means "candidates
    vary per tag, call ``candidate_ways``"). This one build-time check
    replaces millions of run-time ones, so a policy that lies here
    would silently corrupt candidate accounting. Checked once, at
    design-build time, with a representative probe.
    """
    try:
        static = steering.static_candidates
    except AttributeError:
        raise PolicyError(
            f"steering policy {type(steering).__name__} does not declare "
            f"static_candidates (set it to None when candidate sets vary "
            f"per tag)"
        ) from None
    if static is None:
        return
    declared = tuple(static)
    probe = tuple(steering.candidate_ways(0, 0))
    if probe != declared:
        raise PolicyError(
            f"steering policy {type(steering).__name__} declares "
            f"static_candidates={declared} but candidate_ways(0, 0) "
            f"returned {probe}"
        )


__all__ = [
    "InstallSteeringPolicy",
    "WayPredictorPolicy",
    "ReplacementPolicy",
    "DcpDirectoryPolicy",
    "ensure_policy_conformance",
    "policy_is_shardable",
    "unshardable_roles",
    "cache_is_shardable",
    "policy_is_vectorizable",
    "unvectorizable_roles",
    "cache_is_vectorizable",
    "policy_is_replay_vectorizable",
    "unreplayable_roles",
    "cache_is_replay_vectorizable",
]
