"""ACCORD: coordinated way-install (steering) and way-prediction.

This package is the paper's contribution:

* :mod:`repro.core.steering` — install-policy framework + unbiased baseline
* :mod:`repro.core.prediction` — way-predictor framework + conventional
  predictors (random, MRU, partial-tag, perfect)
* :mod:`repro.core.pws` — Probabilistic Way-Steering
* :mod:`repro.core.gws` — Ganged Way-Steering (RIT + RLT)
* :mod:`repro.core.sws` — Skewed Way-Steering for N-way caches
* :mod:`repro.core.accord` — factory wiring steering + prediction pairs
* :mod:`repro.core.protocols` — runtime-checkable policy interfaces
"""

from repro.core.steering import (
    InstallSteering,
    UnbiasedSteering,
    preferred_way,
    region_id,
)
from repro.core.prediction import (
    MruPredictor,
    PartialTagPredictor,
    PerfectPredictor,
    RandomPredictor,
    StaticPreferredPredictor,
    WayPredictor,
)
from repro.core.protocols import (
    DcpDirectoryPolicy,
    InstallSteeringPolicy,
    ReplacementPolicy,
    WayPredictorPolicy,
    ensure_policy_conformance,
)
from repro.core.pws import ProbabilisticWaySteering
from repro.core.gws import GangedWaySteering, GangedWayPredictor, RecentRegionTable
from repro.core.sws import SkewedWaySteering, alternate_way, skewed_candidates
from repro.core.accord import AccordDesign, make_accord, make_design

__all__ = [
    "InstallSteering",
    "InstallSteeringPolicy",
    "WayPredictorPolicy",
    "ReplacementPolicy",
    "DcpDirectoryPolicy",
    "ensure_policy_conformance",
    "UnbiasedSteering",
    "preferred_way",
    "region_id",
    "WayPredictor",
    "RandomPredictor",
    "StaticPreferredPredictor",
    "MruPredictor",
    "PartialTagPredictor",
    "PerfectPredictor",
    "ProbabilisticWaySteering",
    "GangedWaySteering",
    "GangedWayPredictor",
    "RecentRegionTable",
    "SkewedWaySteering",
    "alternate_way",
    "skewed_candidates",
    "AccordDesign",
    "make_accord",
    "make_design",
]
