"""Way-prediction framework and conventional predictors.

A predictor names the way to probe first on a read. Its accuracy is the
fraction of *hits* whose first probe finds the line (the paper's
way-prediction accuracy metric); misses are confirmed by probing the
remaining candidate ways regardless.

Conventional predictors reproduced for Tables II and X:

* :class:`RandomPredictor` — 0B, accuracy 1/N.
* :class:`MruPredictor` — per-set MRU way; 4MB of SRAM at 4GB/2-way.
* :class:`PartialTagPredictor` — 4-bit partial tags per line; accurate
  but 32MB of SRAM at 4GB.
* :class:`PerfectPredictor` — oracle upper bound.
* :class:`StaticPreferredPredictor` — ACCORD/PWS's stateless predictor:
  always the preferred way of the tag.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.storage import TagStore
from repro.core.steering import preferred_way, ways_bits
from repro.utils.rng import SetLocalRng, XorShift64, mix64


class WayPredictor:
    """Base class; default implementation is stateless."""

    name = "base"
    # Set-sharding capability (see repro.core.protocols): True means all
    # mutable state consulted for set s depends only on accesses to set
    # s. Conservative default is False; set-local subclasses opt in.
    shardable = False

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.ways = geometry.ways

    def predict(self, set_index: int, tag: int, addr: int) -> int:
        """Way to probe first for this access."""
        raise NotImplementedError

    def on_access(
        self, set_index: int, tag: int, addr: int, way: Optional[int], hit: bool
    ) -> None:
        """Observe the access outcome (``way`` is None on a miss)."""

    def on_install(self, set_index: int, tag: int, addr: int, way: int) -> None:
        """Observe a fill placing ``tag`` into ``way``."""

    def on_evict(self, set_index: int, tag: int, way: int) -> None:
        """Observe an eviction (lets stateful predictors invalidate)."""

    def storage_bits(self) -> int:
        """SRAM cost (Table II accounting)."""
        return 0


class RandomPredictor(WayPredictor):
    """Uniformly random first probe — the 0-byte strawman of Table II."""

    name = "rand"
    shardable = True  # per-set counter-based stream
    vectorizable = True

    def __init__(self, geometry: CacheGeometry, rng: Optional[XorShift64] = None):
        super().__init__(geometry)
        self._rng = SetLocalRng.from_stream(rng or XorShift64(0x9A4D))

    def predict(self, set_index: int, tag: int, addr: int) -> int:
        return self._rng.next_below(set_index, self.ways)


class StaticPreferredPredictor(WayPredictor):
    """ACCORD's stateless prediction: the tag's preferred way."""

    name = "preferred"
    shardable = True  # stateless
    vectorizable = True

    def predict(self, set_index: int, tag: int, addr: int) -> int:
        return preferred_way(tag, self.ways)


class MruPredictor(WayPredictor):
    """Per-set most-recently-used way (PSA-cache style).

    Effective when the access stream has set-level temporal locality,
    which L3-filtered DRAM-cache traffic largely lacks — accuracy
    degrades with associativity exactly as Table II shows.
    """

    name = "mru"
    shardable = True  # one MRU way per set
    vectorizable = True

    def __init__(self, geometry: CacheGeometry):
        super().__init__(geometry)
        self._mru = np.zeros(geometry.num_sets, dtype=np.int8)

    def predict(self, set_index: int, tag: int, addr: int) -> int:
        return int(self._mru[set_index])

    def on_access(
        self, set_index: int, tag: int, addr: int, way: Optional[int], hit: bool
    ) -> None:
        if hit and way is not None:
            self._mru[set_index] = way

    def on_install(self, set_index: int, tag: int, addr: int, way: int) -> None:
        self._mru[set_index] = way

    def storage_bits(self) -> int:
        return self.geometry.num_sets * max(ways_bits(self.ways), 1)


class PartialTagPredictor(WayPredictor):
    """Per-line partial tags (default 4 bits) consulted before the probe.

    Predicts the first way whose stored partial tag matches the hashed
    partial tag of the access; false positives across ways reduce
    accuracy as associativity grows. Storage is ``bits`` per line —
    32MB for a 4GB cache at 4 bits — which is why it is impractical.
    """

    name = "partial_tag"
    shardable = True  # partial tags are per (set, way)
    vectorizable = True

    def __init__(self, geometry: CacheGeometry, bits: int = 4):
        super().__init__(geometry)
        if not 1 <= bits <= 16:
            raise ValueError(f"partial tag width must be in [1,16], got {bits}")
        self.bits = bits
        self._mask = (1 << bits) - 1
        # 0 encodes "empty"; stored value is hash|
        self._ptags = np.zeros((geometry.num_sets, geometry.ways), dtype=np.int16)

    def _hash(self, tag: int) -> int:
        return (mix64(tag) & self._mask) | (1 << self.bits)  # bit marks "valid"

    def predict(self, set_index: int, tag: int, addr: int) -> int:
        wanted = self._hash(tag)
        row = self._ptags[set_index]
        for way in range(self.ways):
            if row[way] == wanted:
                return way
        return preferred_way(tag, self.ways)

    def on_install(self, set_index: int, tag: int, addr: int, way: int) -> None:
        self._ptags[set_index, way] = self._hash(tag)

    def on_evict(self, set_index: int, tag: int, way: int) -> None:
        self._ptags[set_index, way] = 0

    def storage_bits(self) -> int:
        return self.geometry.num_lines * self.bits


class PerfectPredictor(WayPredictor):
    """Oracle: always probes the correct way on a hit.

    Models the paper's "Perfect WP" upper bound. Misses still pay full
    miss-confirmation cost — perfection only removes hit mispredicts.
    """

    name = "perfect"
    shardable = True  # reads the (set-local) tag store only
    vectorizable = True

    def __init__(self, geometry: CacheGeometry, store: TagStore):
        super().__init__(geometry)
        self._store = store

    def predict(self, set_index: int, tag: int, addr: int) -> int:
        way = self._store.find_way(set_index, tag)
        if way is not None:
            return way
        return preferred_way(tag, self.ways)
