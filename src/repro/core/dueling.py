"""Set-dueling adaptive PIP — an extension beyond the paper.

The paper fixes PIP at 85% after a static sweep (Table V), noting that
PIP trades hit-rate (flexibility) for way-predictability. The best
trade-off is workload-dependent: insensitive workloads would rather run
direct-mapped-like (PIP→1: fewer mispredicts) while conflict-heavy
workloads want flexibility (lower PIP). Set-dueling (Qureshi et al.'s
DIP mechanism) resolves this at runtime with zero extra way-prediction
state:

* a few *leader sets* always steer with ``pip_low``, an equal group
  always with ``pip_high``;
* a saturating counter (PSEL) scores which leader group suffers fewer
  misses;
* all *follower sets* adopt the winning PIP.

Storage: the PSEL counter (10 bits) — leader-set membership is a pure
address decode, as in DIP.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import ReplacementPolicy
from repro.cache.storage import TagStore
from repro.core.pws import ProbabilisticWaySteering
from repro.core.steering import InstallSteering
from repro.errors import PolicyError
from repro.utils.rng import XorShift64

PSEL_BITS = 10
_LEADER_STRIDE_BITS = 5  # 1 in 32 sets leads for each policy


class DuelingPwsSteering(InstallSteering):
    """PWS whose PIP is chosen at runtime by set-dueling."""

    name = "dueling-pws"
    # PSEL is one global counter bumped by leader sets of *all* shards;
    # followers read it, so the install choice for set s depends on
    # other sets' misses. Not shardable.
    shardable = False
    # PSEL mutates only on leader-set misses and is read as one integer
    # compare per install — exactly the sparse event shape the replay
    # engine reproduces in trace order.
    replay_vectorizable = True

    def __init__(
        self,
        geometry: CacheGeometry,
        pip_low: float = 0.70,
        pip_high: float = 0.95,
        rng: Optional[XorShift64] = None,
        psel_bits: int = PSEL_BITS,
    ):
        super().__init__(geometry)
        if not 0.0 <= pip_low < pip_high <= 1.0:
            raise PolicyError(
                f"need 0 <= pip_low < pip_high <= 1, got {pip_low}, {pip_high}"
            )
        if geometry.num_sets < (1 << (_LEADER_STRIDE_BITS + 1)):
            raise PolicyError("too few sets to dedicate dueling leaders")
        rng = rng or XorShift64(0xD0E1)
        self._low = ProbabilisticWaySteering(geometry, pip=pip_low, rng=rng.fork(1))
        self._high = ProbabilisticWaySteering(geometry, pip=pip_high, rng=rng.fork(2))
        self.psel_max = (1 << psel_bits) - 1
        self.psel = self.psel_max // 2
        self._stride_mask = (1 << _LEADER_STRIDE_BITS) - 1

    # -- leader-set decode ---------------------------------------------------

    def is_low_leader(self, set_index: int) -> bool:
        """Sets 0, 64, 128... (even leader slots) duel for pip_low."""
        return (set_index & self._stride_mask) == 0 and not (
            set_index >> _LEADER_STRIDE_BITS
        ) & 1

    def is_high_leader(self, set_index: int) -> bool:
        """Sets 32, 96, 160... (odd leader slots) duel for pip_high."""
        return (set_index & self._stride_mask) == 0 and (
            set_index >> _LEADER_STRIDE_BITS
        ) & 1

    @property
    def followers_use_low(self) -> bool:
        """PSEL above midpoint means the low-PIP leaders miss less."""
        return self.psel > self.psel_max // 2

    def current_pip(self, set_index: int) -> float:
        if self.is_low_leader(set_index):
            return self._low.pip
        if self.is_high_leader(set_index):
            return self._high.pip
        return self._low.pip if self.followers_use_low else self._high.pip

    # -- PSEL updates ----------------------------------------------------------

    def observe_miss(self, set_index: int) -> None:
        """Called by the cache on every demand miss (leader sets vote)."""
        if self.is_low_leader(set_index):
            # Low-PIP leaders missing is evidence against low PIP.
            self.psel = max(self.psel - 1, 0)
        elif self.is_high_leader(set_index):
            self.psel = min(self.psel + 1, self.psel_max)

    # -- InstallSteering API ----------------------------------------------------

    def choose_install_way(
        self,
        set_index: int,
        tag: int,
        addr: int,
        store: TagStore,
        replacement: ReplacementPolicy,
    ) -> int:
        self.observe_miss(set_index)  # installs happen on misses
        if self.current_pip(set_index) == self._low.pip:
            return self._low.choose_install_way(set_index, tag, addr, store,
                                                replacement)
        return self._high.choose_install_way(set_index, tag, addr, store,
                                             replacement)

    def storage_bits(self) -> int:
        return PSEL_BITS  # leader decode is combinational
