"""Factories assembling complete DRAM-cache designs.

:class:`AccordDesign` names every configuration evaluated in the paper;
:func:`make_design` instantiates a ready-to-run cache for it. ACCORD
itself (:func:`make_accord`) is the coordinated pair

* install steering: GWS (RIT) falling back to PWS(PIP), over the
  candidate set of either all ways (2-way) or SWS's {preferred,
  alternate} pair (N-way), and
* way prediction: GWS (RLT) falling back to the stateless preferred way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.dram_cache import DramCache
from repro.cache.ca_cache import ColumnAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.cache.lookup import (
    LookupResult,
    ParallelLookup,
    SerialLookup,
    WayPredictedLookup,
)
from repro.cache.replacement import make_replacement
from repro.cache.storage import TagStore
from repro.core.dueling import DuelingPwsSteering
from repro.core.gws import DEFAULT_ENTRIES, GangedWayPredictor, GangedWaySteering
from repro.core.prediction import (
    MruPredictor,
    PartialTagPredictor,
    PerfectPredictor,
    RandomPredictor,
    StaticPreferredPredictor,
)
from repro.core.protocols import ensure_policy_conformance
from repro.core.pws import DEFAULT_PIP, ProbabilisticWaySteering
from repro.core.steering import DirectMappedSteering, UnbiasedSteering
from repro.core.sws import SkewedWaySteering
from repro.errors import PolicyError
from repro.utils.rng import XorShift64


class _IdealizedLookup:
    """Oracle lookup for the "Speedup (Idealized)" bound of Figure 1c.

    Finds the line wherever it is with the latency and bandwidth of a
    direct-mapped access — one access, one transfer, hit or miss. Not
    implementable in hardware; used purely as an upper bound.
    """

    kind = None
    shardable = True  # stateless oracle over the (set-local) tag store
    vectorizable = True
    replay_vectorizable = True  # implied by vectorizable; no global state

    def lookup(self, set_index, tag, addr, store: TagStore, candidates, predictor=None):
        way = store.find_way_among(set_index, tag, candidates)
        return LookupResult(
            hit=way is not None, way=way, serialized_accesses=1, transfers=1
        )


#: Every ``kind`` accepted by :func:`make_design`, in docstring order.
DESIGN_KINDS = (
    "direct", "parallel", "serial", "unbiased", "pws", "gws", "accord",
    "sws", "dueling", "mru", "partial_tag", "perfect", "ideal", "ca",
)


@dataclass(frozen=True)
class AccordDesign:
    """A named cache configuration.

    ``kind`` is one of: direct, parallel, serial, unbiased, pws, gws,
    accord, sws, dueling (adaptive-PIP extension), mru, partial_tag,
    perfect, ideal, ca. ``ways`` is the physical associativity;
    ``hashes`` only matters for kind='sws'.
    """

    kind: str
    ways: int = 1
    pip: float = DEFAULT_PIP
    hashes: int = 2
    rit_entries: int = DEFAULT_ENTRIES
    rlt_entries: int = DEFAULT_ENTRIES
    region_size: int = 4096
    replacement: str = "random"
    partial_tag_bits: int = 4
    dcp: str = "exact"  # exact | finite | none (writeback way-info source)
    label: Optional[str] = None

    @property
    def display_name(self) -> str:
        if self.label:
            return self.label
        if self.kind == "sws":
            return f"ACCORD SWS({self.ways},{self.hashes})"
        if self.kind == "accord":
            return f"ACCORD {self.ways}-way"
        return f"{self.kind}-{self.ways}way"


def make_accord(
    geometry: CacheGeometry,
    pip: float = DEFAULT_PIP,
    use_sws: bool = False,
    hashes: int = 2,
    rit_entries: int = DEFAULT_ENTRIES,
    rlt_entries: int = DEFAULT_ENTRIES,
    region_size: int = 4096,
    rng: Optional[XorShift64] = None,
    replacement: str = "random",
) -> DramCache:
    """Build a full ACCORD cache (PWS+GWS, optionally over SWS candidates)."""
    rng = rng or XorShift64(0xACC0BD)
    if use_sws:
        base_steering = SkewedWaySteering(
            geometry, hashes=hashes, pip=pip, rng=rng.fork(1)
        )
    else:
        base_steering = ProbabilisticWaySteering(geometry, pip=pip, rng=rng.fork(1))
    steering = GangedWaySteering(
        geometry, fallback=base_steering, entries=rit_entries, region_size=region_size
    )
    predictor = GangedWayPredictor(
        geometry,
        fallback=StaticPreferredPredictor(geometry),
        entries=rlt_entries,
        region_size=region_size,
    )
    return DramCache(
        geometry,
        lookup=WayPredictedLookup(),
        steering=steering,
        predictor=predictor,
        replacement=make_replacement(replacement, geometry, rng.fork(2)),
    )


def make_design(design: AccordDesign, geometry: CacheGeometry, seed: int = 1):
    """Instantiate the cache object for a named design.

    Returns either a :class:`DramCache` or a
    :class:`ColumnAssociativeCache`; both expose ``read``/``writeback``
    and a ``stats`` attribute.
    """
    cache = _make_design_inner(design, geometry, seed)
    if isinstance(cache, DramCache):
        if design.dcp != "exact":
            # Swap the writeback way-info source before any access happens.
            if design.dcp == "finite":
                from repro.cache.dcp import FiniteDcpDirectory

                cache.dcp = FiniteDcpDirectory()
            elif design.dcp == "none":
                cache.dcp = None
            else:
                raise PolicyError(f"unknown dcp mode {design.dcp!r}")
        # Fail at build time, not mid-run, if any policy breaks its
        # protocol (repro.core.protocols).
        ensure_policy_conformance(cache)
    return cache


def _make_design_inner(design: AccordDesign, geometry: CacheGeometry, seed: int = 1):
    if geometry.ways != design.ways:
        geometry = geometry.with_ways(design.ways)
    rng = XorShift64(seed or 1)
    kind = design.kind

    if kind == "ca":
        return ColumnAssociativeCache(geometry.with_ways(1))

    replacement = make_replacement(design.replacement, geometry, rng.fork(10))

    if kind == "direct":
        if design.ways != 1:
            raise PolicyError("direct-mapped design must have ways=1")
        return DramCache(
            geometry,
            lookup=SerialLookup(),  # one way: identical to any flow
            steering=DirectMappedSteering(geometry),
            predictor=None,
            replacement=replacement,
        )

    if kind == "parallel":
        return DramCache(
            geometry,
            lookup=ParallelLookup(),
            steering=UnbiasedSteering(geometry),
            predictor=None,
            replacement=replacement,
        )

    if kind == "serial":
        return DramCache(
            geometry,
            lookup=SerialLookup(),
            steering=UnbiasedSteering(geometry),
            predictor=None,
            replacement=replacement,
        )

    if kind == "ideal":
        return DramCache(
            geometry,
            lookup=_IdealizedLookup(),
            steering=UnbiasedSteering(geometry),
            predictor=None,
            replacement=replacement,
        )

    if kind == "unbiased":
        return DramCache(
            geometry,
            lookup=WayPredictedLookup(),
            steering=UnbiasedSteering(geometry),
            predictor=RandomPredictor(geometry, rng.fork(3)),
            replacement=replacement,
        )

    if kind == "pws":
        return DramCache(
            geometry,
            lookup=WayPredictedLookup(),
            steering=ProbabilisticWaySteering(geometry, pip=design.pip, rng=rng.fork(4)),
            predictor=StaticPreferredPredictor(geometry),
            replacement=replacement,
        )

    if kind == "gws":
        # GWS alone: unbiased fallback install, random fallback predict.
        steering = GangedWaySteering(
            geometry,
            fallback=UnbiasedSteering(geometry),
            entries=design.rit_entries,
            region_size=design.region_size,
        )
        predictor = GangedWayPredictor(
            geometry,
            fallback=RandomPredictor(geometry, rng.fork(5)),
            entries=design.rlt_entries,
            region_size=design.region_size,
        )
        return DramCache(
            geometry,
            lookup=WayPredictedLookup(),
            steering=steering,
            predictor=predictor,
            replacement=replacement,
        )

    if kind == "dueling":
        # Extension: ACCORD with set-dueling adaptive PIP (see
        # repro.core.dueling). GWS tables ride on top as usual.
        steering = GangedWaySteering(
            geometry,
            fallback=DuelingPwsSteering(geometry, rng=rng.fork(6)),
            entries=design.rit_entries,
            region_size=design.region_size,
        )
        predictor = GangedWayPredictor(
            geometry,
            fallback=StaticPreferredPredictor(geometry),
            entries=design.rlt_entries,
            region_size=design.region_size,
        )
        return DramCache(
            geometry,
            lookup=WayPredictedLookup(),
            steering=steering,
            predictor=predictor,
            replacement=replacement,
        )

    if kind == "accord":
        return make_accord(
            geometry,
            pip=design.pip,
            use_sws=False,
            rit_entries=design.rit_entries,
            rlt_entries=design.rlt_entries,
            region_size=design.region_size,
            rng=rng,
            replacement=design.replacement,
        )

    if kind == "sws":
        return make_accord(
            geometry,
            pip=design.pip,
            use_sws=True,
            hashes=design.hashes,
            rit_entries=design.rit_entries,
            rlt_entries=design.rlt_entries,
            region_size=design.region_size,
            rng=rng,
            replacement=design.replacement,
        )

    if kind == "mru":
        return DramCache(
            geometry,
            lookup=WayPredictedLookup(),
            steering=UnbiasedSteering(geometry),
            predictor=MruPredictor(geometry),
            replacement=replacement,
        )

    if kind == "partial_tag":
        return DramCache(
            geometry,
            lookup=WayPredictedLookup(),
            steering=UnbiasedSteering(geometry),
            predictor=PartialTagPredictor(geometry, bits=design.partial_tag_bits),
            replacement=replacement,
        )

    if kind == "perfect":
        cache = DramCache(
            geometry,
            lookup=WayPredictedLookup(),
            steering=UnbiasedSteering(geometry),
            # Placeholder: the oracle needs the store, which only exists
            # after construction; swapped immediately below.
            predictor=StaticPreferredPredictor(geometry),
            replacement=replacement,
        )
        cache.predictor = PerfectPredictor(geometry, cache.store)
        return cache

    raise PolicyError(f"unknown design kind {design.kind!r}")
