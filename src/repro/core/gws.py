"""Ganged Way-Steering (GWS), Section IV-C of the paper.

GWS coordinates install decisions *across sets*: all lines of one 4KB
region follow the way decision made for the first line of that region.

Two small tables implement it (Figure 9):

* **Recent Install Table (RIT)** — region -> way of the most recent
  install from that region. On a fill, an RIT hit steers the new line
  to the same way; an RIT miss defers to a fallback steering policy
  (unbiased or PWS) and records the decision.
* **Recent Lookup Table (RLT)** — region -> way where a line of that
  region was last *found*. On an access, an RLT hit predicts that way;
  an RLT miss defers to a fallback predictor (random or PWS preferred).

Each entry is a ~19-bit region tag plus way bits; with the paper's 64+64
entries the total is 320 bytes of SRAM (Table IX).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import ReplacementPolicy
from repro.cache.storage import TagStore
from repro.core.prediction import StaticPreferredPredictor, WayPredictor
from repro.core.steering import InstallSteering, UnbiasedSteering, ways_bits
from repro.errors import PolicyError
from repro.params.system import REGION_SIZE

DEFAULT_ENTRIES = 64
REGION_TAG_BITS = 18  # 18-bit region tag + way + valid = 20 bits/entry
VALID_BITS = 1


class RecentRegionTable:
    """A small fully-associative LRU table mapping region -> way.

    Models both the RIT and the RLT; eviction is LRU over the fixed
    number of entries.
    """

    def __init__(self, entries: int = DEFAULT_ENTRIES):
        if entries <= 0:
            raise PolicyError(f"table needs at least one entry, got {entries}")
        self.entries = entries
        self._table: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, region: int) -> Optional[int]:
        """Return the remembered way for a region, refreshing recency."""
        table = self._table
        way = table.get(region)
        if way is None:
            self.misses += 1
            return None
        table.move_to_end(region)
        self.hits += 1
        return way

    def record(self, region: int, way: int) -> None:
        """Insert or update a region's way, evicting LRU on overflow."""
        table = self._table
        if region in table:
            table[region] = way
            table.move_to_end(region)
        else:
            table[region] = way
            if len(table) > self.entries:
                table.popitem(last=False)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def storage_bits(self, ways: int) -> int:
        return self.entries * (VALID_BITS + REGION_TAG_BITS + max(ways_bits(ways), 1))


class GangedWaySteering(InstallSteering):
    """Install steering that gangs region installs to one way."""

    name = "gws"
    # The RIT/RLT are *global* LRU tables updated by every region's
    # traffic; splitting by set range changes their contents, so GWS
    # must run on the serial path (cache_is_shardable -> False).
    shardable = False
    # The table updates themselves are a sparse event stream the replay
    # engine reproduces exactly (lookup = LRU refresh, record = insert
    # + evict-oldest), so GWS opts into sparse-replay execution.
    replay_vectorizable = True

    def __init__(
        self,
        geometry: CacheGeometry,
        fallback: Optional[InstallSteering] = None,
        entries: int = DEFAULT_ENTRIES,
        region_size: int = REGION_SIZE,
    ):
        super().__init__(geometry)
        self.fallback = fallback or UnbiasedSteering(geometry)
        if self.fallback.geometry.ways != geometry.ways:
            raise PolicyError("fallback steering has mismatched geometry")
        self.rit = RecentRegionTable(entries)
        self.region_size = region_size
        # Ganging never shrinks the residence set; it is exactly the
        # fallback's, so the static contract passes straight through.
        self.static_candidates = self.fallback.static_candidates

    def candidate_ways(self, set_index: int, tag: int):
        # Ganging does not restrict residency; the fallback's candidate
        # set (all ways, or two for an SWS fallback) still applies.
        return self.fallback.candidate_ways(set_index, tag)

    def choose_install_way(
        self,
        set_index: int,
        tag: int,
        addr: int,
        store: TagStore,
        replacement: ReplacementPolicy,
    ) -> int:
        region = addr // self.region_size
        ganged = self.rit.lookup(region)
        if ganged is not None:
            candidates = self.static_candidates
            if candidates is None:
                candidates = self.fallback.candidate_ways(set_index, tag)
            if ganged in candidates:
                return ganged
        way = self.fallback.choose_install_way(
            set_index, tag, addr, store, replacement
        )
        self.rit.record(region, way)
        return way

    def on_install(self, set_index: int, tag: int, addr: int, way: int) -> None:
        # Keep the RIT coherent with the install that actually happened.
        self.rit.record(addr // self.region_size, way)
        self.fallback.on_install(set_index, tag, addr, way)

    def storage_bits(self) -> int:
        return self.rit.storage_bits(self.ways) + self.fallback.storage_bits()


class GangedWayPredictor(WayPredictor):
    """Prediction half of GWS: last-way-seen per recent region (RLT)."""

    name = "gws"
    # The RIT/RLT are *global* LRU tables updated by every region's
    # traffic; splitting by set range changes their contents, so GWS
    # must run on the serial path (cache_is_shardable -> False).
    shardable = False
    # The table updates themselves are a sparse event stream the replay
    # engine reproduces exactly (lookup = LRU refresh, record = insert
    # + evict-oldest), so GWS opts into sparse-replay execution.
    replay_vectorizable = True

    def __init__(
        self,
        geometry: CacheGeometry,
        fallback: Optional[WayPredictor] = None,
        entries: int = DEFAULT_ENTRIES,
        region_size: int = REGION_SIZE,
    ):
        super().__init__(geometry)
        self.fallback = fallback or StaticPreferredPredictor(geometry)
        self.rlt = RecentRegionTable(entries)
        self.region_size = region_size

    def predict(self, set_index: int, tag: int, addr: int) -> int:
        way = self.rlt.lookup(addr // self.region_size)
        if way is not None:
            return way
        return self.fallback.predict(set_index, tag, addr)

    def on_access(
        self, set_index: int, tag: int, addr: int, way: Optional[int], hit: bool
    ) -> None:
        if hit and way is not None:
            self.rlt.record(addr // self.region_size, way)
        self.fallback.on_access(set_index, tag, addr, way, hit)

    def on_install(self, set_index: int, tag: int, addr: int, way: int) -> None:
        # A fill is also the most recent sighting of the region.
        self.rlt.record(addr // self.region_size, way)
        self.fallback.on_install(set_index, tag, addr, way)

    def on_evict(self, set_index: int, tag: int, way: int) -> None:
        self.fallback.on_evict(set_index, tag, way)

    def storage_bits(self) -> int:
        return self.rlt.storage_bits(self.ways) + self.fallback.storage_bits()
