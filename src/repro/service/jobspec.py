"""JSON job specs: the service's request schema, expanded to JobKeys.

A spec names the same knobs the CLI ``sweep``/``run`` flags do, and is
expanded through the same code paths (:func:`parse_design_spec`,
``Settings``-compatible defaults), so a served job is *the same job* —
same :class:`~repro.exec.JobKey`, same digest, same store slot — as
its CLI equivalent. That identity is what lets the scheduler
deduplicate concurrent submissions and answer warm requests straight
from the result store.

Spec grammar (JSON object)::

    {
      "kind": "sweep",              # or "run" (one design, one workload)
      "designs": ["direct", "accord:2"],   # or a comma-joined string
      "workloads": ["soplex", "libq"],     # optional; default suite
      "accesses": 40000,            # optional
      "seed": 7, "scale": 0.0078125, "warmup": 0.5,   # optional
      "epoch": 10000,               # optional: phase-resolved metrics
      "quick": true,                # optional: CLI --quick defaults
      "engine": "vector"            # optional: drive engine request
    }

The ``engine`` field requests a drive engine
(:mod:`repro.sim.engines`); results are engine-invariant, so the field
does not participate in :meth:`~repro.exec.JobKey.canonical` identity —
the same spec with a different engine deduplicates onto the same
store slot.

The client and server both call :func:`expand_spec`, so they agree on
the key set without exchanging digests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.accord import AccordDesign
from repro.errors import ConfigError, WorkloadError
from repro.exec.jobs import (
    RESULT_SCHEMA_VERSION,
    JobKey,
    parse_design_spec,
)
from repro.workloads.spec import get_workload, is_mix, main_suite

#: Defaults mirroring ``repro.experiments.common.Settings`` (kept in
#: lockstep by tests): a spec with no knobs runs the same grid the CLI
#: would.
DEFAULT_ACCESSES = 200_000
QUICK_ACCESSES = 40_000
QUICK_SUITE = ["soplex", "libq", "mcf", "sphinx"]
DEFAULT_WARMUP = 0.5
DEFAULT_SEED = 7
DEFAULT_SCALE = 1.0 / 128.0

SPEC_KINDS = ("sweep", "run")

_KNOWN_FIELDS = frozenset({
    "kind", "designs", "workloads", "accesses", "seed", "scale",
    "warmup", "epoch", "quick", "engine",
})


def _designs_from(spec: Dict[str, Any]) -> List[AccordDesign]:
    raw = spec.get("designs")
    if isinstance(raw, str):
        raw = [part for part in raw.split(",") if part.strip()]
    if not isinstance(raw, list) or not raw:
        raise ConfigError("job spec needs a non-empty 'designs' list")
    designs = [parse_design_spec(str(item)) for item in raw]
    labels = [design.display_name for design in designs]
    if len(set(labels)) != len(labels):
        raise ConfigError("job spec: duplicate designs")
    return designs


def _workloads_from(spec: Dict[str, Any], quick: bool) -> List[str]:
    raw = spec.get("workloads")
    if raw is None:
        return list(QUICK_SUITE) if quick else main_suite()
    if isinstance(raw, str):
        raw = [part.strip() for part in raw.split(",") if part.strip()]
    if not isinstance(raw, list) or not raw:
        raise ConfigError("job spec: 'workloads' must be a non-empty list")
    names = [str(name) for name in raw]
    for name in names:
        if is_mix(name):
            continue
        try:
            get_workload(name)
        except WorkloadError as exc:
            raise ConfigError(f"job spec: {exc}") from exc
    if len(set(names)) != len(names):
        raise ConfigError("job spec: duplicate workloads")
    return names


def _number(
    spec: Dict[str, Any], name: str, default, kind=float
):
    value = spec.get(name)
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"job spec: {name!r} must be a number")
    return kind(value)


def expand_spec(
    spec: Any,
) -> Tuple[List[JobKey], List[str], List[str]]:
    """Expand one job spec into its (keys, design labels, workloads).

    Raises :class:`ConfigError` on anything malformed — the service
    maps that to HTTP 400 / exit code 2, same as the CLI's argparse
    rejection. The returned keys enumerate the designs × workloads
    grid in the same order the CLI ``sweep`` builds it.
    """
    if not isinstance(spec, dict):
        raise ConfigError("job spec must be a JSON object")
    unknown = set(spec) - _KNOWN_FIELDS
    if unknown:
        raise ConfigError(
            f"job spec: unknown field(s) {sorted(unknown)}; "
            f"expected a subset of {sorted(_KNOWN_FIELDS)}"
        )
    kind = str(spec.get("kind", "sweep"))
    if kind not in SPEC_KINDS:
        raise ConfigError(
            f"job spec: unknown kind {kind!r}; expected one of {SPEC_KINDS}"
        )
    quick = bool(spec.get("quick", False))
    designs = _designs_from(spec)
    workloads = _workloads_from(spec, quick)
    if kind == "run" and (len(designs) != 1 or len(workloads) != 1):
        raise ConfigError(
            "job spec: kind 'run' takes exactly one design and one workload"
        )
    accesses = _number(
        spec, "accesses",
        QUICK_ACCESSES if quick else DEFAULT_ACCESSES, int,
    )
    seed = _number(spec, "seed", DEFAULT_SEED, int)
    scale = _number(spec, "scale", DEFAULT_SCALE, float)
    warmup = _number(spec, "warmup", DEFAULT_WARMUP, float)
    epoch: Optional[int] = None
    if spec.get("epoch") is not None:
        epoch = _number(spec, "epoch", None, int)
    engine = spec.get("engine", "auto")
    if not isinstance(engine, str):
        raise ConfigError("job spec: 'engine' must be a string")
    from repro.sim.engines import ENGINE_NAMES

    if engine not in ENGINE_NAMES:
        raise ConfigError(
            f"job spec: unknown engine {engine!r}; "
            f"expected one of {ENGINE_NAMES}"
        )
    keys = [
        JobKey(
            design=design,
            workload=workload,
            num_accesses=accesses,
            warmup=warmup,
            seed=seed,
            scale=scale,
            epoch=epoch,
            engine=engine,
        )
        for design in designs
        for workload in workloads
    ]
    labels = [design.display_name for design in designs]
    return keys, labels, workloads


def key_from_canonical(data: Dict[str, Any]) -> JobKey:
    """Rebuild a :class:`JobKey` from its :meth:`JobKey.canonical` dict.

    Used to resume journaled in-flight sweeps after a daemon restart:
    the service journals each batch's canonical keys, which survive the
    process. A canonical form from a different schema version raises
    :class:`ConfigError` — those results would no longer be valid, so
    the stale journal is dropped rather than replayed.
    """
    if not isinstance(data, dict):
        raise ConfigError("canonical job key must be a JSON object")
    if data.get("schema") != RESULT_SCHEMA_VERSION:
        raise ConfigError(
            f"canonical job key has schema {data.get('schema')!r}; "
            f"current is {RESULT_SCHEMA_VERSION}"
        )
    try:
        design = AccordDesign(**dict(data["design"]))
        return JobKey(
            design=design,
            workload=str(data["workload"]),
            num_accesses=int(data["num_accesses"]),
            warmup=float(data["warmup"]),
            seed=int(data["seed"]),
            scale=float(data["scale"]),
            footprint_scale=float(data["footprint_scale"]),
            epoch=(
                int(data["epoch"]) if data.get("epoch") is not None else None
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed canonical job key: {exc}") from exc


__all__ = [
    "DEFAULT_ACCESSES",
    "QUICK_ACCESSES",
    "QUICK_SUITE",
    "SPEC_KINDS",
    "expand_spec",
    "key_from_canonical",
]
