"""Minimal HTTP/1.1 over asyncio streams — no dependencies.

The sweep service needs exactly four things from HTTP: parse a request
(line, headers, Content-Length body), send a complete JSON response,
send an error with a status code and optional ``Retry-After``, and
stream an open-ended NDJSON/SSE body. This module hand-rolls those
over ``asyncio.StreamReader``/``StreamWriter`` so the daemon has no
hard dependency beyond the stdlib.

Streaming responses are close-delimited (``Connection: close``, no
``Content-Length``), which HTTP/1.1 permits for responses and which
keeps both our own client and ``curl`` trivially compatible: read
lines until EOF.

Everything here is transport-shaped and policy-free; routing, rate
limiting and scheduling live in :mod:`repro.service.server`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError


class ProtocolError(ReproError):
    """A malformed or over-limit HTTP request."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


#: Hard request limits: a sweep spec is small; anything bigger is abuse.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON (raises :class:`ProtocolError`)."""
        if not self.body:
            raise ProtocolError("request body is empty; expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")

    @property
    def wants_sse(self) -> bool:
        """Did the client ask for Server-Sent Events framing?"""
        return "text/event-stream" in self.headers.get("accept", "")


async def read_request(
    reader, max_body: int = MAX_BODY_BYTES
) -> Optional[Request]:
    """Parse one request; ``None`` on a clean EOF before any bytes."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise ProtocolError("truncated request line")
    except asyncio.LimitOverrunError:
        raise ProtocolError("request line too long", status=413)
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError("request line too long", status=413)
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = {
        name: values[-1]
        for name, values in parse_qs(split.query).items()
    }

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError:
            raise ProtocolError("truncated headers")
        except asyncio.LimitOverrunError:
            raise ProtocolError("header line too long", status=413)
        if line in (b"\r\n", b"\n"):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError("headers too large", status=413)
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(f"bad Content-Length: {length_text!r}")
        if length < 0:
            raise ProtocolError(f"bad Content-Length: {length_text!r}")
        if length > max_body:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{max_body}-byte limit", status=413,
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("truncated request body")
    elif "chunked" in headers.get("transfer-encoding", ""):
        raise ProtocolError("chunked request bodies are not supported")
    return Request(
        method=method, path=split.path, query=query, headers=headers,
        body=body,
    )


def _head(
    status: int, headers: Dict[str, str], length: Optional[int]
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    if length is not None:
        lines.append(f"Content-Length: {length}")
    lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_json(
    writer,
    status: int,
    payload: Any,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Send one complete JSON response and flush."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    headers = {"Content-Type": "application/json"}
    if extra_headers:
        headers.update(extra_headers)
    writer.write(_head(status, headers, len(body)) + body)
    await writer.drain()


async def send_error(
    writer,
    status: int,
    message: str,
    kind: str = "config",
    exit_code: Optional[int] = None,
    retry_after: Optional[float] = None,
    retryable: Optional[bool] = None,
) -> None:
    """Send the service's uniform error payload.

    The payload mirrors the CLI's exit-code contract
    (``docs/robustness.md``): ``kind`` is ``config`` (exit code 2 —
    rejecting the request as malformed) or ``execution`` (exit code 3
    — the work was accepted but failed), and ``retryable`` says
    whether resubmitting the identical request can succeed.
    """
    if exit_code is None:
        exit_code = 2 if kind == "config" else 3
    if retryable is None:
        retryable = kind != "config"
    payload: Dict[str, Any] = {
        "error": {
            "kind": kind,
            "exit_code": exit_code,
            "message": message,
            "retryable": retryable,
        }
    }
    headers: Dict[str, str] = {}
    if retry_after is not None:
        # Integral seconds, rounded up: Retry-After takes whole numbers.
        headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
        payload["error"]["retry_after"] = float(headers["Retry-After"])
    await send_json(writer, status, payload, extra_headers=headers)


@dataclass
class EventStream:
    """An open-ended event response: NDJSON lines, or SSE framing.

    One JSON-able event dict per :meth:`send`; the body is
    close-delimited, so :meth:`close` ends the response.
    """

    writer: Any
    sse: bool = False
    started: bool = field(default=False, init=False)

    async def start(self, extra_headers: Optional[Dict[str, str]] = None):
        content_type = (
            "text/event-stream" if self.sse else "application/x-ndjson"
        )
        headers = {"Content-Type": content_type, "Cache-Control": "no-store"}
        if extra_headers:
            headers.update(extra_headers)
        self.writer.write(_head(200, headers, None))
        await self.writer.drain()
        self.started = True

    async def send(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True)
        if self.sse:
            payload = f"data: {line}\n\n"
        else:
            payload = line + "\n"
        self.writer.write(payload.encode("utf-8"))
        await self.writer.drain()

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


__all__ = [
    "EventStream",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "Request",
    "read_request",
    "send_error",
    "send_json",
]
