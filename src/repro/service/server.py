"""The asyncio HTTP front-end: ``python -m repro serve``.

Routes:

* ``POST /v1/jobs`` — submit a job spec (:mod:`repro.service.jobspec`);
  the response is a close-delimited NDJSON event stream (or SSE with
  ``Accept: text/event-stream``): ``accepted``, ``scheduled``,
  ``progress``, ``phase`` (per-epoch :class:`PhaseSample` when the
  spec sets ``epoch``), ``result`` (with an ETag-style validator), and
  ``error`` events, ending with one ``done`` summary line.
* ``GET /healthz`` — liveness + schema version.
* ``GET /metrics`` — queue depth, in-flight jobs, store hit ratio,
  shed counts, cumulative executor stats.

Overload degrades gracefully instead of falling over: per-client
token buckets answer ``429 Too Many Requests`` and a full admission
queue answers ``503 Service Unavailable``, both with ``Retry-After``.
Error payloads mirror the CLI exit-code contract (config = 2,
execution = 3, verification = 4; see ``docs/robustness.md``). With
``--verify-fraction`` a sample of computed jobs is shadow-verified on
the reference engine; ``verify`` events appear on the stream and
``verified`` / ``verify_mismatches`` counters in ``/metrics``.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.exec.executor import Executor
from repro.exec.jobs import RESULT_SCHEMA_VERSION
from repro.exec.store import ResultStore
from repro.service import protocol
from repro.service.jobspec import expand_spec
from repro.service.ratelimit import RateLimiter
from repro.service.scheduler import JobManager, Overloaded

#: The service's default port: "ACRD" on a phone keypad would be nice,
#: but 8765 is memorable and unprivileged.
DEFAULT_PORT = 8765


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    jobs: int = 1
    shards: int = 1
    retries: int = 1
    timeout: Optional[float] = None
    results_dir: Optional[str] = None
    use_store: bool = True
    max_pending: int = 256
    rate: float = 5.0  # submissions per second per client
    burst: float = 10.0
    max_body: int = protocol.MAX_BODY_BYTES
    resume: bool = True
    verify_fraction: float = 0.0  # shadow-verify this share of computed jobs
    verify_engine: str = "stream"

    def __post_init__(self):
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.max_body < 1024:
            raise ConfigError(
                f"max_body must be >= 1024, got {self.max_body}"
            )
        if not 0.0 <= self.verify_fraction <= 1.0:
            raise ConfigError(
                f"verify_fraction must be in [0, 1], "
                f"got {self.verify_fraction}"
            )
        if self.verify_engine not in ("stream", "loop"):
            raise ConfigError(
                f"verify_engine must be 'stream' or 'loop', "
                f"got {self.verify_engine!r}"
            )


class SweepService:
    """A long-lived daemon serving simulations over HTTP."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        store = (
            ResultStore(config.results_dir) if config.use_store else None
        )
        executor = Executor(
            jobs=config.jobs,
            store=store,
            retries=config.retries,
            timeout=config.timeout,
            shards=config.shards,
            verify_fraction=config.verify_fraction,
            verify_engine=config.verify_engine,
        )
        self.manager = JobManager(
            executor,
            store,
            max_pending=config.max_pending,
            journal_batches=config.use_store,
        )
        self.limiter = RateLimiter(config.rate, config.burst)
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind, resume journaled work, and begin accepting clients."""
        self.manager.start()
        if self.config.resume:
            resumed = self.manager.resume_pending()
            if resumed:
                print(
                    f"resuming {resumed} journaled job(s) from a previous "
                    "daemon instance",
                    file=sys.stderr,
                )
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        """The bound port (useful when configured with port 0)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- request handling --------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            request = await protocol.read_request(
                reader, max_body=self.config.max_body
            )
            if request is None:
                return
            await self._route(request, writer)
        except protocol.ProtocolError as exc:
            try:
                await protocol.send_error(
                    writer, exc.status, str(exc), kind="config"
                )
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _client_key(self, writer) -> str:
        peer = writer.get_extra_info("peername")
        if isinstance(peer, (tuple, list)) and peer:
            return str(peer[0])
        return str(peer)

    async def _route(self, request: protocol.Request, writer) -> None:
        if request.path in ("/healthz", "/health"):
            if request.method != "GET":
                await protocol.send_error(
                    writer, 405, "use GET", kind="config"
                )
                return
            await protocol.send_json(writer, 200, {
                "status": "ok",
                "schema_version": RESULT_SCHEMA_VERSION,
                "uptime_seconds": self.manager.metrics()["uptime_seconds"],
                "inflight": len(self.manager._inflight),
            })
            return
        if request.path == "/metrics":
            if request.method != "GET":
                await protocol.send_error(
                    writer, 405, "use GET", kind="config"
                )
                return
            await protocol.send_json(writer, 200, self.manager.metrics())
            return
        if request.path == "/v1/jobs":
            if request.method != "POST":
                await protocol.send_error(
                    writer, 405, "POST a job spec", kind="config"
                )
                return
            await self._submit(request, writer)
            return
        await protocol.send_error(
            writer, 404,
            f"no such endpoint {request.path!r}; "
            "try POST /v1/jobs, GET /healthz, GET /metrics",
            kind="config",
        )

    async def _submit(self, request: protocol.Request, writer) -> None:
        allowed, wait = self.limiter.check(self._client_key(writer))
        if not allowed:
            self.manager.counters["shed_rate_limited"] += 1
            await protocol.send_error(
                writer, 429,
                "per-client rate limit exceeded",
                kind="execution", retryable=True, retry_after=wait,
            )
            return
        try:
            spec = request.json()
            keys, labels, workloads = expand_spec(spec)
        except (protocol.ProtocolError, ConfigError) as exc:
            await protocol.send_error(writer, 400, str(exc), kind="config")
            return
        try:
            sub = self.manager.submit(keys)
        except Overloaded as exc:
            await protocol.send_error(
                writer, 503, str(exc),
                kind="execution", retryable=True,
                retry_after=exc.retry_after,
            )
            return

        stream = protocol.EventStream(writer, sse=request.wants_sse)
        try:
            await stream.start()
            await stream.send({
                "event": "accepted",
                "schema_version": RESULT_SCHEMA_VERSION,
                "keys": len(sub.remaining) + sub.counts["cached"],
                "designs": labels,
                "workloads": workloads,
                "counts": dict(sub.counts),
            })
            while True:
                event = await sub.queue.get()
                if event is None:
                    break
                await stream.send(event)
            await stream.send({
                "event": "done",
                "counts": dict(sub.counts),
                "failed": sub.counts["failed"],
            })
        except (ConnectionError, OSError):
            pass  # client disconnected mid-stream; computation continues
        finally:
            sub.closed = True
            await stream.close()


async def run_service(config: ServiceConfig) -> None:
    """Run the daemon until SIGINT/SIGTERM; used by ``repro serve``."""
    service = SweepService(config)
    await service.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, ValueError):
            pass  # platforms/threads without signal support
    print(
        f"repro sweep service listening on "
        f"http://{config.host}:{service.port} "
        f"(jobs={config.jobs}, shards={config.shards}, "
        f"store={'on' if config.use_store else 'off'})",
        file=sys.stderr,
    )
    try:
        await stop.wait()
    finally:
        await service.close()


__all__ = [
    "DEFAULT_PORT",
    "ServiceConfig",
    "SweepService",
    "run_service",
]
