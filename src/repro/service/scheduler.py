"""The service scheduler: dedup, admission control, executor bridge.

One :class:`JobManager` owns the long-lived
:class:`~repro.exec.Executor` (started persistent, so the worker pool
survives across batches) and mediates every submission:

* **Warm answers.** A key whose result is already in the
  :class:`~repro.exec.ResultStore` is answered immediately from the
  store — schema-validated on read (the ETag-style check: entries from
  an older ``RESULT_SCHEMA_VERSION`` are quarantined misses) — without
  touching the queue or the executor.
* **In-flight deduplication.** A key already queued or running gains a
  subscriber instead of a second computation: one simulation, N
  streamed copies of the result.
* **Bounded admission.** Cold keys enter a bounded queue; a submission
  whose cold keys would overflow it is shed *whole* (no partial
  registration) with :class:`Overloaded`, which the server turns into
  HTTP 503 + ``Retry-After``.
* **Crash-safe batches.** Every executed batch is journaled
  (``<store>/service/batch-*.journal.jsonl``) with its canonical keys
  in the header, so a killed daemon resumes unfinished batches on
  restart (:meth:`JobManager.resume_pending`) — completed jobs replay
  from the journal, only the remainder re-runs. The PR 4 resilience
  stack (retries, timeouts, quarantine) applies unchanged underneath.

Threading model: all state mutation happens on the event loop. Batches
run on a single worker thread (`run_in_executor`); the executor's
progress callback marshals back with ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import time
import warnings
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    ConfigError,
    ExecutionError,
    JournalError,
    ReproError,
    TransientError,
    VerificationError,
)
from repro.exec.executor import Executor
from repro.exec.jobs import RESULT_SCHEMA_VERSION, JobKey
from repro.exec.resilience import SweepJournal
from repro.exec.store import ResultStore
from repro.service.jobspec import key_from_canonical
from repro.sim.system import RunResult


class Overloaded(ReproError):
    """The admission queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


def etag_for(digest: str) -> str:
    """ETag-style validator for one result: digest + schema version."""
    return f'"{digest}-v{RESULT_SCHEMA_VERSION}"'


@dataclass
class Subscription:
    """One client's view of a submission: an event queue to drain.

    Terminal events (``result`` / ``error``) shrink ``remaining``; a
    ``None`` sentinel is enqueued when the last key resolves. ``counts``
    records how each key was satisfied (cached / deduped / scheduled).
    """

    queue: "asyncio.Queue[Optional[Dict[str, Any]]]"
    remaining: Set[str]
    counts: Dict[str, int] = field(
        default_factory=lambda: {
            "cached": 0, "deduped": 0, "scheduled": 0, "failed": 0,
        }
    )
    closed: bool = False

    def put(self, event: Optional[Dict[str, Any]]) -> None:
        if not self.closed:
            self.queue.put_nowait(event)

    def settle(self, digest: str, event: Dict[str, Any]) -> None:
        """Deliver a terminal event; sentinel once nothing remains."""
        self.put(event)
        self.remaining.discard(digest)
        if not self.remaining:
            self.put(None)


@dataclass
class _Entry:
    """One in-flight key and everyone waiting on it."""

    key: JobKey
    digest: str
    subs: Dict[int, Subscription] = field(default_factory=dict)
    state: str = "queued"  # queued | running

    def attach(self, sub: Subscription) -> None:
        self.subs[id(sub)] = sub

    def each(self) -> List[Subscription]:
        return list(self.subs.values())


class JobManager:
    """Owns the executor, the queue, and every in-flight subscription."""

    def __init__(
        self,
        executor: Executor,
        store: Optional[ResultStore],
        max_pending: int = 256,
        journal_batches: bool = True,
    ):
        if max_pending < 1:
            raise ConfigError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.executor = executor.start()
        self.store = store
        self.max_pending = max_pending
        self._journal_dir = (
            store.root / "service"
            if (store is not None and journal_batches) else None
        )
        self._inflight: Dict[str, _Entry] = {}
        self._queue: Deque[_Entry] = deque()
        self._resume: Deque[Tuple[List[_Entry], SweepJournal, Any]] = deque()
        self._wake = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._warned_journal = False
        self._job_seconds = 1.0  # EMA; seeds the Retry-After estimate
        self.started_at = time.time()
        self.counters: Dict[str, int] = {
            "submissions": 0,
            "submitted_keys": 0,
            "store_hits": 0,
            "store_lookups": 0,
            "deduped": 0,
            "scheduled": 0,
            "completed": 0,
            "failed": 0,
            "executed": 0,
            "executor_cached": 0,
            "resumed": 0,
            "retried": 0,
            "transient_retries": 0,
            "timeouts": 0,
            "pool_breaks": 0,
            "verified": 0,
            "verify_mismatches": 0,
            "shed_queue_full": 0,
            "shed_rate_limited": 0,
            "resumed_batches": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin dispatching (must run inside the event loop)."""
        self._loop = asyncio.get_running_loop()
        if self._task is None or self._task.done():
            self._task = self._loop.create_task(self._dispatch_loop())

    async def close(self) -> None:
        """Stop dispatching and release the worker pool."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        await asyncio.get_running_loop().run_in_executor(
            None, self.executor.shutdown
        )

    # -- submission (event-loop thread only) -------------------------------

    def submit(self, keys: Sequence[JobKey]) -> Subscription:
        """Register one submission; raises :class:`Overloaded` to shed.

        Classification happens before any registration, so a shed
        request leaves no trace — the queue bound is on *cold* keys
        only; warm and deduplicated keys are always admitted.
        """
        unique: List[JobKey] = []
        seen: Set[str] = set()
        for key in keys:
            digest = key.digest()
            if digest not in seen:
                seen.add(digest)
                unique.append(key)

        # Pass 1: classify without mutating.
        warm: List[Tuple[JobKey, RunResult]] = []
        dedup: List[JobKey] = []
        cold: List[JobKey] = []
        for key in unique:
            if key.digest() in self._inflight:
                dedup.append(key)
                continue
            cached = self._store_get(key)
            if cached is not None:
                warm.append((key, cached))
            else:
                cold.append(key)
        if cold and len(self._queue) + len(cold) > self.max_pending:
            self.counters["shed_queue_full"] += 1
            retry_after = self._retry_after_estimate()
            raise Overloaded(
                f"admission queue is full ({len(self._queue)} queued, "
                f"limit {self.max_pending}); retry in ~{retry_after:.0f}s",
                retry_after=retry_after,
            )

        # Pass 2: commit (no awaits in between — atomic on the loop).
        self.counters["submissions"] += 1
        self.counters["submitted_keys"] += len(unique)
        sub = Subscription(
            queue=asyncio.Queue(),
            remaining={key.digest() for key in unique},
        )
        for key, result in warm:
            self.counters["store_hits"] += 1
            sub.counts["cached"] += 1
            sub.settle(key.digest(), self._result_event(key, result, "cached"))
        for key in dedup:
            self.counters["deduped"] += 1
            sub.counts["deduped"] += 1
            entry = self._inflight[key.digest()]
            entry.attach(sub)
            sub.put(self._scheduled_event(key, entry.state, dedup=True))
        for key in cold:
            self.counters["scheduled"] += 1
            sub.counts["scheduled"] += 1
            entry = _Entry(key=key, digest=key.digest())
            entry.attach(sub)
            self._inflight[entry.digest] = entry
            self._queue.append(entry)
            sub.put(self._scheduled_event(key, "queued", dedup=False))
        if cold:
            self._wake.set()
        return sub

    def _store_get(self, key: JobKey) -> Optional[RunResult]:
        if self.store is None:
            return None
        self.counters["store_lookups"] += 1
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return self.store.get(key)

    def _retry_after_estimate(self) -> float:
        depth = len(self._queue) + sum(
            1 for e in self._inflight.values() if e.state == "running"
        )
        return min(60.0, max(1.0, depth * self._job_seconds))

    # -- event payloads ----------------------------------------------------

    @staticmethod
    def _scheduled_event(key: JobKey, state: str, dedup: bool) -> Dict:
        return {
            "event": "scheduled",
            "key": key.digest(),
            "display": key.display,
            "state": state,
            "deduplicated": dedup,
        }

    @staticmethod
    def _result_event(key: JobKey, result: RunResult, source: str) -> Dict:
        return {
            "event": "result",
            "key": key.digest(),
            "display": key.display,
            "source": source,
            "etag": etag_for(key.digest()),
            "result": result.to_dict(),
        }

    @staticmethod
    def _error_payload(exc: ReproError) -> Dict[str, Any]:
        if isinstance(exc, ConfigError):
            kind, exit_code, retryable = "config", 2, False
        elif isinstance(exc, VerificationError):
            kind, exit_code, retryable = "verification", 4, False
        else:
            kind, exit_code = "execution", 3
            retryable = isinstance(
                exc, (ExecutionError, TransientError, OSError)
            )
        return {
            "kind": kind,
            "exit_code": exit_code,
            "retryable": retryable,
            "message": str(exc),
        }

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._resume or self._queue:
                if self._resume:
                    entries, journal, jpath = self._resume.popleft()
                else:
                    entries = list(self._queue)
                    self._queue.clear()
                    journal, jpath = self._new_journal(entries)
                for entry in entries:
                    entry.state = "running"
                started = time.monotonic()
                loop = asyncio.get_running_loop()
                try:
                    results = await loop.run_in_executor(
                        None, self._run_batch, entries, journal
                    )
                except ReproError as exc:
                    self._absorb_stats()
                    self._fail_batch(entries, exc)
                else:
                    self._absorb_stats()
                    elapsed = time.monotonic() - started
                    per_job = elapsed / max(1, len(entries))
                    self._job_seconds = (
                        0.7 * self._job_seconds + 0.3 * per_job
                    )
                    self._finish_batch(entries, results)
                if jpath is not None:
                    try:
                        jpath.unlink()
                    except OSError:
                        pass

    def _run_batch(self, entries: List[_Entry], journal) -> Dict:
        """Worker-thread body: run one batch on the shared executor."""
        loop = self._loop
        by_digest = {entry.digest: entry for entry in entries}

        def progress(done: int, total: int, key: JobKey, source: str):
            entry = by_digest.get(key.digest())
            if entry is not None and loop is not None:
                loop.call_soon_threadsafe(
                    self._publish_progress, entry, done, total, source
                )

        def on_verify(key: JobKey, outcome: str, detail: Dict[str, str]):
            entry = by_digest.get(key.digest())
            if entry is not None and loop is not None:
                loop.call_soon_threadsafe(
                    self._publish_verify, entry, outcome, dict(detail)
                )

        self.executor.progress = progress
        self.executor.on_verify = on_verify
        self.executor.journal = journal
        try:
            return self.executor.run([entry.key for entry in entries])
        finally:
            self.executor.progress = None
            self.executor.on_verify = None
            self.executor.journal = None

    def _absorb_stats(self) -> None:
        stats = self.executor.stats
        self.counters["executed"] += stats.executed
        self.counters["executor_cached"] += stats.cached
        self.counters["resumed"] += stats.resumed
        self.counters["retried"] += stats.retried
        self.counters["transient_retries"] += stats.transient_retries
        self.counters["timeouts"] += stats.timeouts
        self.counters["pool_breaks"] += stats.pool_breaks
        self.counters["verified"] += stats.verified
        self.counters["verify_mismatches"] += stats.mismatches

    def _publish_progress(
        self, entry: _Entry, done: int, total: int, source: str
    ) -> None:
        event = {
            "event": "progress",
            "key": entry.digest,
            "display": entry.key.display,
            "source": source,
            "batch_done": done,
            "batch_total": total,
        }
        for sub in entry.each():
            sub.put(event)

    def _publish_verify(
        self, entry: _Entry, outcome: str, detail: Dict[str, str]
    ) -> None:
        event = {
            "event": "verify",
            "key": entry.digest,
            "display": entry.key.display,
            "outcome": outcome,
        }
        event.update(detail)
        for sub in entry.each():
            sub.put(event)

    def _finish_batch(self, entries: List[_Entry], results: Dict) -> None:
        for entry in entries:
            self._inflight.pop(entry.digest, None)
            result = results.get(entry.key)
            if result is None:
                # Defensive: the executor resolves every key or raises.
                self._settle_error(
                    entry,
                    ExecutionError(f"{entry.key.display} was not resolved"),
                )
                continue
            self.counters["completed"] += 1
            phases = result.phases
            if phases is not None:
                for sample in phases:
                    event = {
                        "event": "phase",
                        "key": entry.digest,
                        "display": entry.key.display,
                        "epoch": phases.epoch,
                        "sample": asdict(sample),
                    }
                    for sub in entry.each():
                        sub.put(event)
            event = self._result_event(entry.key, result, "run")
            for sub in entry.each():
                sub.settle(entry.digest, event)

    def _fail_batch(self, entries: List[_Entry], exc: ReproError) -> None:
        for entry in entries:
            self._inflight.pop(entry.digest, None)
            self._settle_error(entry, exc)

    def _settle_error(self, entry: _Entry, exc: ReproError) -> None:
        self.counters["failed"] += 1
        event = {
            "event": "error",
            "key": entry.digest,
            "display": entry.key.display,
            "error": self._error_payload(exc),
        }
        for sub in entry.each():
            sub.counts["failed"] += 1
            sub.settle(entry.digest, event)

    # -- batch journals & resume -------------------------------------------

    def _new_journal(self, entries: List[_Entry]):
        if self._journal_dir is None:
            return None, None
        keys = [entry.key for entry in entries]
        digest = SweepJournal.sweep_digest(keys)[:16]
        path = self._journal_dir / f"batch-{digest}.journal.jsonl"
        journal = SweepJournal(path)
        try:
            journal.begin(
                keys,
                meta={
                    "service": True,
                    "keys": [key.canonical() for key in keys],
                },
            )
        except JournalError as exc:
            if not self._warned_journal:
                self._warned_journal = True
                warnings.warn(
                    f"service batch journal unavailable ({exc}); "
                    "in-flight sweeps will not survive a daemon restart",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return None, None
        return journal, path

    def resume_pending(self) -> int:
        """Re-enqueue batches journaled by a previous daemon instance.

        Returns the number of jobs re-enqueued (already-journaled jobs
        replay instantly inside the executor; only the remainder
        actually runs). Stale or unreadable journals are skipped with a
        warning, never crash the daemon.
        """
        if self._journal_dir is None or not self._journal_dir.is_dir():
            return 0
        pending = 0
        for path in sorted(self._journal_dir.glob("batch-*.journal.jsonl")):
            journal = SweepJournal(path)
            try:
                journal.load()
                meta = (journal.header or {}).get("meta", {})
                keys = [
                    key_from_canonical(data)
                    for data in meta.get("keys", [])
                ]
            except (JournalError, ConfigError) as exc:
                warnings.warn(
                    f"skipping unusable service journal {path.name}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            undone = [
                key for key in keys
                if journal.lookup(key) is None
                and key.digest() not in self._inflight
            ]
            if not undone:
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            entries = []
            for key in keys:
                if key.digest() in self._inflight:
                    continue
                entry = _Entry(key=key, digest=key.digest())
                self._inflight[entry.digest] = entry
                entries.append(entry)
            self._resume.append((entries, journal, path))
            self.counters["resumed_batches"] += 1
            pending += len(undone)
        if pending:
            self._wake.set()
        return pending

    # -- introspection -----------------------------------------------------

    @staticmethod
    def _trace_cache_metrics() -> Optional[Dict[str, Any]]:
        """Daemon-side trace-cache counters, or None when disabled.

        Worker processes keep their own instances; these counters cover
        the scheduler process (journal replays, serial fallbacks), which
        is enough to observe whether the on-disk cache is serving warm
        mmap reads or regenerating traces.
        """
        from repro.workloads.trace_cache import shared_trace_cache

        disk = shared_trace_cache()
        if disk is None:
            return None
        return disk.stats.to_dict()

    def metrics(self) -> Dict[str, Any]:
        lookups = self.counters["store_lookups"]
        hits = self.counters["store_hits"]
        running = sum(
            1 for entry in self._inflight.values()
            if entry.state == "running"
        )
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "queue_depth": len(self._queue),
            "inflight": len(self._inflight),
            "running": running,
            "store": {
                "lookups": lookups,
                "hits": hits,
                "hit_ratio": (hits / lookups) if lookups else 0.0,
            },
            "trace_cache": self._trace_cache_metrics(),
            "jobs": self.executor.jobs,
            "shards": self.executor.shards,
            "counters": dict(self.counters),
        }


__all__ = ["JobManager", "Overloaded", "Subscription", "etag_for"]
