"""Per-client token-bucket rate limiting for the sweep service.

A classic token bucket: ``burst`` tokens of capacity refilled at
``rate`` tokens per second. Each submission costs one token; when the
bucket is empty the limiter reports how long until the next token, and
the server turns that into ``429 Too Many Requests`` +
``Retry-After``. Buckets are tracked per client key (the peer address)
with a bounded LRU so a scan of spoofed sources cannot grow memory
without limit.

The clock is injectable for tests.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Tuple

from repro.errors import ConfigError


class TokenBucket:
    """One client's budget: ``burst`` capacity, ``rate`` tokens/sec."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ConfigError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; 0.0 on success, else seconds to wait."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        return (cost - self._tokens) / self.rate


class RateLimiter:
    """Token buckets keyed by client, with a bounded LRU of buckets."""

    def __init__(
        self,
        rate: float,
        burst: float,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_clients < 1:
            raise ConfigError(
                f"max_clients must be >= 1, got {max_clients}"
            )
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    def check(self, client: str) -> Tuple[bool, float]:
        """(allowed, retry_after_seconds) for one submission."""
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= self.max_clients:
                self._buckets.popitem(last=False)
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client] = bucket
        else:
            self._buckets.move_to_end(client)
        wait = bucket.try_acquire()
        return wait == 0.0, wait


__all__ = ["RateLimiter", "TokenBucket"]
