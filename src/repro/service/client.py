"""Blocking client for the sweep service: ``python -m repro submit``.

Stdlib-only (``http.client``). The client expands the job spec with
the *same* :func:`~repro.service.jobspec.expand_spec` the server uses,
so it knows each key's digest up front and can map streamed ``result``
events back onto (design label, workload) cells without any extra
round-trip — which is also what makes the submitted sweep bit-identical
to the CLI path: same keys, same store slots, same result payloads.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Callable, Dict, Iterator, Optional

from repro.errors import ExecutionError, ReproError
from repro.service.server import DEFAULT_PORT

#: Called with each streamed event dict as it arrives.
EventFn = Callable[[Dict[str, Any]], None]


class ServiceError(ReproError):
    """The service answered with an error payload (or malformed HTTP).

    ``status`` is the HTTP status (0 when the failure was transport
    level), ``payload`` the decoded error body when there was one, and
    ``retry_after`` the service's backoff hint in seconds, if any.
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        payload: Optional[Dict[str, Any]] = None,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        self.retry_after = retry_after

    @property
    def exit_code(self) -> int:
        """The CLI exit code this error maps to (2 config, 3 execution)."""
        error = self.payload.get("error", {})
        code = error.get("exit_code")
        if isinstance(code, int):
            return code
        return 2 if self.status == 400 else 3


class ServiceClient:
    """Talks to one daemon; one HTTP connection per call."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 300.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _get_json(self, path: str) -> Dict[str, Any]:
        conn = self._connect()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            body = response.read()
            payload = json.loads(body.decode("utf-8"))
            if response.status != 200:
                raise ServiceError(
                    f"GET {path} failed with {response.status}",
                    status=response.status, payload=payload,
                )
            return payload
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()

    def health(self) -> Dict[str, Any]:
        return self._get_json("/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._get_json("/metrics")

    def stream_job(self, spec: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Submit a spec; yield each streamed event dict until ``done``.

        Raises :class:`ServiceError` on 4xx/5xx (429/503 carry the
        service's ``Retry-After`` hint) and on transport failures; a
        stream that ends without a ``done`` event raises too, so a
        caller can never mistake a truncated stream for success.
        """
        body = json.dumps(spec).encode("utf-8")
        conn = self._connect()
        try:
            try:
                conn.request(
                    "POST", "/v1/jobs", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
            except OSError as exc:
                raise ServiceError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
            if response.status != 200:
                raw = response.read()
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    payload = {}
                retry_after = None
                header = response.getheader("Retry-After")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        pass
                message = (
                    payload.get("error", {}).get("message")
                    or f"service answered {response.status}"
                )
                raise ServiceError(
                    message, status=response.status, payload=payload,
                    retry_after=retry_after,
                )
            saw_done = False
            while True:
                try:
                    line = response.readline()
                except OSError as exc:
                    raise ServiceError(
                        f"stream broke mid-response: {exc}"
                    ) from exc
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                if line.startswith(b"data:"):  # SSE framing
                    line = line[len(b"data:"):].strip()
                try:
                    event = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise ServiceError(
                        f"malformed event line from service: {exc}"
                    ) from exc
                yield event
                if event.get("event") == "done":
                    saw_done = True
                    break
            if not saw_done:
                raise ServiceError(
                    "stream ended before the service's 'done' event"
                )
        finally:
            conn.close()

    def submit(
        self,
        spec: Dict[str, Any],
        on_event: Optional[EventFn] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """Submit and collect: digest → ``result`` event for every key.

        ``on_event`` (if given) observes every streamed event —
        progress lines, per-epoch phases — while results accumulate.
        An ``error`` event raises :class:`ExecutionError` after the
        stream drains, carrying the service's message.
        """
        results: Dict[str, Dict[str, Any]] = {}
        errors = []
        for event in self.stream_job(spec):
            if on_event is not None:
                on_event(event)
            if event.get("event") == "result":
                results[event["key"]] = event
            elif event.get("event") == "error":
                errors.append(event)
        if errors:
            first = errors[0].get("error", {})
            raise ExecutionError(
                f"{len(errors)} job(s) failed on the service: "
                f"{first.get('message', 'unknown error')}"
            )
        return results


__all__ = ["EventFn", "ServiceClient", "ServiceError"]
