"""Long-lived sweep service: simulations over HTTP.

The service turns the batch execution stack (:mod:`repro.exec`) into
infrastructure that outlives one CLI invocation:

* :mod:`repro.service.protocol` — a minimal, dependency-free HTTP/1.1
  reader/writer over asyncio streams (the service hand-rolls its
  transport; nothing new to install).
* :mod:`repro.service.jobspec` — JSON job specs that expand to the
  exact :class:`~repro.exec.JobKey` grid the CLI would build, so a
  served sweep is bit-identical to ``python -m repro sweep``.
* :mod:`repro.service.ratelimit` — per-client token buckets.
* :mod:`repro.service.scheduler` — the bridge onto the long-lived
  :class:`~repro.exec.Executor`: in-flight deduplication (one
  computation, N subscribers), warm answers straight from the
  :class:`~repro.exec.ResultStore`, a bounded admission queue with
  load shedding, and journal-backed resume of in-flight sweeps after
  a daemon crash.
* :mod:`repro.service.server` — the asyncio front-end
  (``python -m repro serve``): job submission with NDJSON/SSE result
  streaming, ``/healthz`` and ``/metrics``.
* :mod:`repro.service.client` — the blocking client used by
  ``python -m repro submit`` (stdlib ``http.client`` only).
"""

from repro.service.jobspec import expand_spec, key_from_canonical
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.scheduler import JobManager, Overloaded
from repro.service.server import ServiceConfig, SweepService
from repro.service.client import ServiceClient, ServiceError

__all__ = [
    "JobManager",
    "Overloaded",
    "RateLimiter",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SweepService",
    "TokenBucket",
    "expand_spec",
    "key_from_canonical",
]
