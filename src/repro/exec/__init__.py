"""Sweep execution engine: job model, result store, parallel executor.

* :mod:`repro.exec.jobs` — :class:`JobKey` (a deterministic, hashable
  name for one simulation) and :func:`execute_job` (its worker entry).
* :mod:`repro.exec.store` — :class:`ResultStore`, a content-addressed
  JSON-on-disk memo of :class:`~repro.sim.system.RunResult` records
  with quarantine of corrupt entries.
* :mod:`repro.exec.executor` — :class:`Executor`, which serves warm
  keys from the store (or a resume journal) and fans cold keys out
  over a process pool with retries, backoff, and a timeout watchdog.
* :mod:`repro.exec.resilience` — :class:`BackoffPolicy`,
  :class:`SweepJournal` (crash-safe ``--resume``), and quarantine
  helpers.
* :mod:`repro.exec.faults` — :class:`FaultPlan`, the deterministic
  fault-injection harness (``REPRO_FAULT_PLAN``) that chaos-tests all
  of the above.

The trust layer (:mod:`repro.verify`) hooks in here: results carry a
``payload_digest`` verified by the store on read, the executor can
shadow-verify a sample of jobs on the reference engine
(``verify_fraction``), and a mismatch demotes the offending engine via
the circuit breaker (which calls :func:`clear_engine_plans`).
"""

from repro.exec.executor import Executor, ExecutorStats
from repro.exec.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    fault_point,
    suppressed,
)
from repro.exec.jobs import (
    RESULT_SCHEMA_VERSION,
    JobKey,
    ShardTask,
    clear_engine_plans,
    execute_job,
    execute_job_sharded,
    execute_job_traced,
    execute_shard,
    execute_shard_traced,
    parse_design_spec,
    plan_shards,
)
from repro.exec.resilience import BackoffPolicy, SweepJournal, quarantine_entry
from repro.exec.store import (
    RESULTS_DIR_ENV,
    ResultStore,
    StoreStats,
    default_store_root,
)

__all__ = [
    "BackoffPolicy",
    "Executor",
    "ExecutorStats",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "JobKey",
    "RESULT_SCHEMA_VERSION",
    "RESULTS_DIR_ENV",
    "ResultStore",
    "ShardTask",
    "StoreStats",
    "SweepJournal",
    "clear_engine_plans",
    "default_store_root",
    "execute_job",
    "execute_job_sharded",
    "execute_job_traced",
    "execute_shard",
    "execute_shard_traced",
    "fault_point",
    "parse_design_spec",
    "plan_shards",
    "quarantine_entry",
    "suppressed",
]
