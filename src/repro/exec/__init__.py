"""Sweep execution engine: job model, result store, parallel executor.

* :mod:`repro.exec.jobs` — :class:`JobKey` (a deterministic, hashable
  name for one simulation) and :func:`execute_job` (its worker entry).
* :mod:`repro.exec.store` — :class:`ResultStore`, a content-addressed
  JSON-on-disk memo of :class:`~repro.sim.system.RunResult` records.
* :mod:`repro.exec.executor` — :class:`Executor`, which serves warm
  keys from the store and fans cold keys out over a process pool.
"""

from repro.exec.executor import Executor, ExecutorStats
from repro.exec.jobs import (
    RESULT_SCHEMA_VERSION,
    JobKey,
    execute_job,
    parse_design_spec,
)
from repro.exec.store import RESULTS_DIR_ENV, ResultStore, default_store_root

__all__ = [
    "Executor",
    "ExecutorStats",
    "JobKey",
    "RESULT_SCHEMA_VERSION",
    "RESULTS_DIR_ENV",
    "ResultStore",
    "default_store_root",
    "execute_job",
    "parse_design_spec",
]
