"""Content-addressed on-disk store for simulation results.

Results are memoized as JSON under ``<root>/<dd>/<digest>.json`` where
``digest`` is the :meth:`JobKey.digest` content address (the leading
two hex digits shard the directory). Each record carries the canonical
key alongside the result, so a lookup verifies the stored key matches
before trusting the payload, and the result's embedded
``payload_digest`` (:mod:`repro.verify.digest`) is recomputed on every
read — a digest collision, a hand-edited file, or bit-rot that keeps
the JSON parseable all degrade to a cache miss, never to a wrong
result.

Writes are atomic (temp file + ``os.replace``), so concurrent executors
sharing one store directory can only ever race to write identical
bytes. Corrupt or stale entries are *quarantined* on read — moved to
``<root>/quarantine/`` with a ``.why`` sidecar naming the reason —
never trusted and never silently deleted. A failed write degrades to
running the simulation again next time: it is counted in
``stats.degraded_writes`` and warned about once, not raised.

The root defaults to ``$REPRO_RESULTS_DIR`` or ``~/.cache/repro``.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.errors import ReproError
from repro.exec.faults import SITE_STORE_ENTRY, SITE_STORE_WRITE, fault_point
from repro.exec.jobs import RESULT_SCHEMA_VERSION, JobKey
from repro.exec.resilience import quarantine_entry
from repro.sim.system import RunResult
from repro.verify.digest import result_digest

RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"


def default_store_root() -> Path:
    """``$REPRO_RESULTS_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(RESULTS_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass
class StoreStats:
    """Degradation counters for one store instance."""

    degraded_writes: int = 0
    quarantined: int = 0


class ResultStore:
    """Memoizes :class:`RunResult` objects keyed by :class:`JobKey`."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_store_root()
        self.stats = StoreStats()
        self._warned_write = False

    def path_for(self, key: JobKey) -> Path:
        digest = key.digest()
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, key: JobKey) -> Optional[RunResult]:
        """Stored result for ``key``, or None (quarantining bad entries)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (FileNotFoundError, NotADirectoryError):
            return None  # cold cache (or unusable root): a plain miss
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._quarantine(path, f"unreadable result entry: {exc}")
            return None
        try:
            stored_schema = record.get("schema") if isinstance(record, dict) \
                else None
            if stored_schema != RESULT_SCHEMA_VERSION:
                # A stale entry (e.g. a v2 record surviving at a current
                # path) is a miss, never an error: quarantine it and let
                # the job re-run under the current semantics.
                raise ValueError(
                    f"stale result schema {stored_schema!r} "
                    f"(current is {RESULT_SCHEMA_VERSION})"
                )
            if record["key"] != key.canonical():
                raise ValueError("stored key does not match lookup key")
            result = RunResult.from_dict(record["result"])
            declared = record["result"].get("payload_digest")
            recomputed = result_digest(result)
            if declared != recomputed:
                # On-disk bit-rot (or tampering) that left the JSON
                # parseable: the counters no longer match the digest
                # stamped at write time. A detected miss, never a
                # silently wrong answer.
                raise ValueError(
                    f"payload digest mismatch (stored {declared!r}, "
                    f"recomputed {recomputed})"
                )
            return result
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            self._quarantine(path, f"malformed result entry: {exc}")
            return None

    def put(self, key: JobKey, result: RunResult) -> None:
        """Persist a result; a failed write is counted, never fatal."""
        path = self.path_for(key)
        record = {
            "schema": RESULT_SCHEMA_VERSION,
            "key": key.canonical(),
            "result": result.to_dict(),
        }
        try:
            fault_point(SITE_STORE_WRITE, token=key.digest())
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=str(path.parent)
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(record, handle, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self.stats.degraded_writes += 1
            if not self._warned_write:
                self._warned_write = True
                warnings.warn(
                    f"result store at {self.root} is not writable ({exc}); "
                    "affected results will not be memoized "
                    "(stats.degraded_writes counts the losses)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        fault_point(SITE_STORE_ENTRY, token=key.digest(), path=str(path))

    def __contains__(self, key: JobKey) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        """Number of stored entries (walks the shard directories)."""
        if not self.root.is_dir():
            return 0
        return sum(
            1
            for shard in self.root.iterdir()
            if shard.is_dir() and shard.name != "quarantine"
            for entry in shard.glob("*.json")
            if not entry.name.startswith(".tmp-")
        )

    def _quarantine(self, path: Path, reason: str) -> None:
        self.stats.quarantined += 1
        quarantine_entry(path, self.root, reason)
        warnings.warn(
            f"result store entry {path.name} quarantined "
            f"under {self.root / 'quarantine'}: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )
