"""Deterministic job model for the sweep engine.

A :class:`JobKey` captures everything that determines one simulation's
outcome: the design, the workload name, and the scalar knobs feeding
trace generation and the timing model. Trace generation is seeded, so
any process that holds the same key rebuilds the same trace and the
same simulator — which is what lets results be executed on an arbitrary
worker process and memoized on disk, content-addressed by the key's
digest (:mod:`repro.exec.store`).

The cosmetic ``label`` field of :class:`AccordDesign` is excluded from
the canonical form: relabelling a design must not change its identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.accord import DESIGN_KINDS, AccordDesign
from repro.errors import ConfigError
from repro.exec.faults import SITE_ENGINE_RESULT, SITE_JOB, fault_point
from repro.exec.resilience import complete_claim, write_claim
from repro.params.system import scaled_system
from repro.sim.runner import DEFAULT_WARMUP, TraceFactory, run_design
from repro.sim.system import RunResult

#: Bump whenever simulation semantics or the stored RunResult layout
#: change in a way that invalidates previously memoized results.
#: v2: access-event pipeline — RunResult carries optional phase-resolved
#: metrics and JobKey gained the ``epoch`` knob.
#: v3: randomized policies draw from per-set counter-based streams
#: (:class:`repro.utils.rng.SetLocalRng`) instead of one sequential
#: stream, so every random-policy result changed. The sharding knob
#: itself is deliberately *not* part of the key: sharded execution is
#: bit-identical to serial, so both populate the same store slot.
#: v4: stored results carry a ``payload_digest`` (sha256 over the
#: canonical stats + phases payload, :mod:`repro.verify.digest`) that
#: :meth:`ResultStore.get` verifies on read — older records lack it,
#: so they re-run rather than dodge the integrity check.
RESULT_SCHEMA_VERSION = 4


@dataclass(frozen=True)
class JobKey:
    """Names one (design, workload, knobs) simulation deterministically."""

    design: AccordDesign
    workload: str
    num_accesses: int
    warmup: float = DEFAULT_WARMUP
    seed: int = 7
    scale: float = 1.0 / 128.0
    # None normalizes to ``scale``; cache-size sweeps pin it elsewhere.
    footprint_scale: Optional[float] = None
    # Demand reads per phase-metrics sample; None disables the observer.
    epoch: Optional[int] = None
    # Drive engine request. Excluded from canonical(): engines are
    # bit-identical, so the choice never forks the memo space — a result
    # computed under any engine satisfies the same key.
    engine: str = "auto"

    def __post_init__(self):
        if self.num_accesses <= 0:
            raise ConfigError("num_accesses must be positive")
        if not 0.0 <= self.warmup < 1.0:
            raise ConfigError("warmup fraction must be in [0, 1)")
        if not 0.0 < self.scale <= 1.0:
            raise ConfigError(f"scale must be in (0, 1], got {self.scale}")
        if self.epoch is not None and self.epoch <= 0:
            raise ConfigError(f"epoch must be positive, got {self.epoch}")
        from repro.sim.engines import ENGINE_NAMES

        if self.engine not in ENGINE_NAMES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{', '.join(ENGINE_NAMES)}"
            )
        if self.footprint_scale is None:
            object.__setattr__(self, "footprint_scale", self.scale)

    def canonical(self) -> Dict[str, Any]:
        """JSON-safe dict of everything that determines the result."""
        design = asdict(self.design)
        design.pop("label")
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "design": design,
            "workload": self.workload,
            "num_accesses": self.num_accesses,
            "warmup": self.warmup,
            "seed": self.seed,
            "scale": self.scale,
            "footprint_scale": self.footprint_scale,
            "epoch": self.epoch,
        }

    def digest(self) -> str:
        """Content address: SHA-256 over the canonical form (memoized)."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            payload = json.dumps(
                self.canonical(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(payload.encode("ascii")).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    @property
    def display(self) -> str:
        return f"{self.design.display_name} / {self.workload}"


# Per-process trace memo: workers (and the serial in-process path) reuse
# one TraceFactory per knob tuple so a workload's trace is generated once
# no matter how many designs replay it.
_FACTORY_CACHE: Dict[Tuple[float, int, int, float], TraceFactory] = {}
_FACTORY_CACHE_MAX = 4


def _trace_factory(key: JobKey) -> TraceFactory:
    cache_key = (key.scale, key.num_accesses, key.seed, key.footprint_scale)
    factory = _FACTORY_CACHE.get(cache_key)
    if factory is None:
        if len(_FACTORY_CACHE) >= _FACTORY_CACHE_MAX:
            _FACTORY_CACHE.pop(next(iter(_FACTORY_CACHE)))
        factory = TraceFactory(
            scaled_system(ways=1, scale=key.scale),
            key.num_accesses,
            key.seed,
            footprint_scale=key.footprint_scale,
        )
        _FACTORY_CACHE[cache_key] = factory
    return factory


@dataclass(frozen=True)
class ShardTask:
    """One set-range shard of a :class:`JobKey`'s simulation.

    The parallel executor flattens shardable jobs into these so one
    job's shards spread over the worker pool; shard outcomes are merged
    back into the job's :class:`RunResult` by
    :func:`repro.sim.shard.merge_outcomes`. Mirrors JobKey's
    ``digest()``/``display`` surface so claims, retries, the watchdog
    and the journal handle both item kinds uniformly.
    """

    job: JobKey
    index: int
    count: int

    def __post_init__(self):
        if self.count < 2:
            raise ConfigError(f"shard count must be >= 2, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ConfigError(
                f"shard index {self.index} out of range for {self.count} shards"
            )

    def digest(self) -> str:
        return f"{self.job.digest()}-s{self.index}of{self.count}"

    @property
    def display(self) -> str:
        return f"{self.job.display} [shard {self.index + 1}/{self.count}]"


def plan_shards(key: JobKey, shards: int) -> int:
    """Effective shard count for a job: 1 means run it whole.

    Builds the (scaled) cache once per distinct (design, scale) to
    consult the declared ``shardable`` capabilities; a design with
    global policy state gets 1 (after a one-time fallback warning —
    never sharded silently wrong), and a shardable one gets at most one
    shard per cache set. Memoized: a 16-design sweep probes each design
    once, not once per workload.

    Also the parent-side home of the engine-fallback warning: workers
    suppress it (warn-once state is per-process, so N workers would
    each print a copy), so an explicitly requested engine is resolved
    here, in the planning process, exactly once per design.
    """
    if key.engine != "auto":
        _shard_engine(key)  # parent-side resolve; fallback warns here
    if shards <= 1:
        return 1
    from repro.core.protocols import cache_is_shardable
    from repro.sim.shard import effective_shard_count, warn_serial_fallback
    from repro.sim.system import build_dram_cache

    cache_key = (repr(key.design), key.scale)
    plan = _SHARD_PLAN_CACHE.get(cache_key)
    if plan is None:
        config = scaled_system(ways=key.design.ways, scale=key.scale)
        cache = build_dram_cache(key.design, config, seed=key.seed)
        shardable = cache_is_shardable(cache)
        if not shardable:
            warn_serial_fallback(key.design, cache)
        plan = (shardable, cache.geometry.num_sets)
        _SHARD_PLAN_CACHE[cache_key] = plan
    shardable, num_sets = plan
    if not shardable:
        return 1
    return effective_shard_count(shards, num_sets)


_SHARD_PLAN_CACHE: Dict[Tuple[str, float], Tuple[bool, int]] = {}


def execute_shard(task: ShardTask):
    """Run one shard of a job (worker entry point; picklable).

    Rebuilds the trace through the per-process factory memo (shared
    disk trace cache underneath), slices out this shard's records, and
    returns the picklable :class:`~repro.sim.shard.ShardOutcome`.
    """
    from repro.sim.shard import run_shard

    key = task.job
    fault_point(SITE_JOB, token=task.digest())
    config = scaled_system(ways=key.design.ways, scale=key.scale)
    trace = _trace_factory(key).trace_for(key.workload)
    return run_shard(
        config,
        key.design,
        trace,
        task.index,
        task.count,
        warmup=key.warmup,
        epoch=key.epoch,
        seed=key.seed,
        engine=_shard_engine(key),
    )


def _shard_engine(key: JobKey) -> str:
    """Concrete engine name for one shard of ``key``'s simulation.

    Shard workers need a non-"auto" engine (drive_shard does not
    resolve); resolve the request against a probe cache once per
    (design, scale, engine) — fallback warnings fire here, in whichever
    process plans or executes first, and at most once.
    """
    from repro.sim.engines import resolve_engine
    from repro.sim.system import build_dram_cache

    cache_key = (repr(key.design), key.scale, key.engine)
    name = _ENGINE_PLAN_CACHE.get(cache_key)
    if name is None:
        config = scaled_system(ways=key.design.ways, scale=key.scale)
        cache = build_dram_cache(key.design, config, seed=key.seed)
        name = resolve_engine(
            cache, requested=key.engine, design=key.design
        ).name
        _ENGINE_PLAN_CACHE[cache_key] = name
    return name


_ENGINE_PLAN_CACHE: Dict[Tuple[str, float, str], str] = {}


def clear_engine_plans() -> None:
    """Flush the per-process engine and shard plan memos.

    The circuit breaker (:mod:`repro.verify.breaker`) calls this when
    it demotes an engine: the memos cache pre-trip resolutions, and a
    stale entry would keep routing jobs onto the engine that was just
    caught producing a wrong answer.
    """
    _ENGINE_PLAN_CACHE.clear()
    _SHARD_PLAN_CACHE.clear()


def execute_shard_traced(task: ShardTask, claims_dir: str):
    """Shard worker entry with claim markers (see execute_job_traced)."""
    digest = task.digest()
    write_claim(claims_dir, digest)
    result = execute_shard(task)
    complete_claim(claims_dir, digest)
    return result


def execute_job(key: JobKey) -> RunResult:
    """Run the simulation a key names (worker entry point; picklable)."""
    fault_point(SITE_JOB, token=key.digest())
    config = scaled_system(ways=key.design.ways, scale=key.scale)
    result = run_design(
        key.design,
        key.workload,
        config=config,
        traces=_trace_factory(key),
        num_accesses=key.num_accesses,
        warmup=key.warmup,
        seed=key.seed,
        epoch=key.epoch,
        engine=key.engine,
    )
    fault_point(SITE_ENGINE_RESULT, token=key.digest(), obj=result)
    return result


def execute_job_sharded(key: JobKey, shards: int) -> RunResult:
    """Run one job split over an intra-run shard pool.

    Entry point for the ``jobs=1, shards>1`` configuration: the single
    simulation itself fans out over ``shards`` worker processes
    (:func:`repro.sim.shard.run_sharded`). Falls back to the exact
    serial path for non-shardable designs and never nests pools (the
    worker-process guard runs shards inline there). Bit-identical to
    :func:`execute_job`.
    """
    from repro.sim.shard import run_sharded

    fault_point(SITE_JOB, token=key.digest())
    config = scaled_system(ways=key.design.ways, scale=key.scale)
    trace = _trace_factory(key).trace_for(key.workload)
    result = run_sharded(
        config,
        key.design,
        trace,
        warmup=key.warmup,
        epoch=key.epoch,
        shards=shards,
        seed=key.seed,
        engine=key.engine,
    )
    fault_point(SITE_ENGINE_RESULT, token=key.digest(), obj=result)
    return result


def execute_job_traced(key: JobKey, claims_dir: str) -> RunResult:
    """Worker entry recording start/done claim markers around the job.

    The markers (``<digest>.started`` holding ``pid started_at``, and
    ``<digest>.done``) let the parallel executor's watchdog attribute a
    pool break or a wall-clock timeout to the specific jobs that were
    in flight on the dead worker, instead of penalizing the whole
    remaining batch.
    """
    digest = key.digest()
    write_claim(claims_dir, digest)
    result = execute_job(key)
    complete_claim(claims_dir, digest)
    return result


# Field coercions for ``key=value`` parts of a design spec string.
_SPEC_FIELD_TYPES = {
    "ways": int,
    "pip": float,
    "hashes": int,
    "rit_entries": int,
    "rlt_entries": int,
    "region_size": int,
    "replacement": str,
    "partial_tag_bits": int,
    "dcp": str,
    "label": str,
}


def parse_design_spec(spec: str) -> AccordDesign:
    """Parse a CLI design spec into an :class:`AccordDesign`.

    Grammar: ``kind[:ways[:hashes]][:key=value...]`` — e.g. ``direct``,
    ``accord:2``, ``sws:8:4``, ``pws:2:pip=0.9``. The bare ``hashes``
    position is only meaningful for ``sws``.
    """
    parts = [p.strip() for p in spec.strip().split(":") if p.strip()]
    if not parts:
        raise ConfigError(f"empty design spec {spec!r}")
    kind, rest = parts[0], parts[1:]
    if kind not in DESIGN_KINDS:
        raise ConfigError(
            f"unknown design kind {kind!r}; expected one of {', '.join(DESIGN_KINDS)}"
        )
    kwargs: Dict[str, Any] = {}
    positional = ("ways", "hashes") if kind == "sws" else ("ways",)
    for name in positional:
        if rest and "=" not in rest[0]:
            try:
                kwargs[name] = int(rest.pop(0))
            except ValueError as exc:
                raise ConfigError(f"bad {name} in design spec {spec!r}") from exc
    for part in rest:
        if "=" not in part:
            raise ConfigError(
                f"design spec {spec!r}: expected key=value, got {part!r}"
            )
        name, value = part.split("=", 1)
        coerce = _SPEC_FIELD_TYPES.get(name)
        if coerce is None:
            raise ConfigError(f"design spec {spec!r}: unknown field {name!r}")
        try:
            kwargs[name] = coerce(value)
        except ValueError as exc:
            raise ConfigError(f"design spec {spec!r}: bad value for {name}") from exc
    return AccordDesign(kind=kind, **kwargs)
