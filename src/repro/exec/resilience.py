"""Resilient-execution primitives for the sweep engine.

Pure, dependency-light building blocks (stdlib + :mod:`repro.errors`
only, so the store and trace cache can use them without import cycles):

* :class:`BackoffPolicy` — exponential backoff with deterministic
  seeded jitter, used for transient-failure retries and pool rebuilds.
* Claim markers — tiny ``<digest>.started`` / ``<digest>.done`` files a
  worker touches around each job, letting the executor's watchdog see
  which jobs are in flight (and on which pid, since when) even after
  the worker that ran them is gone.
* :func:`quarantine_entry` — moves a corrupt on-disk cache entry (plus
  sidecars) into ``<root>/quarantine/`` with a ``.why`` sidecar instead
  of deleting it, so corruption is inspectable after the fact.
* :class:`SweepJournal` — a crash-safe append-only record of a sweep
  (``sweep.journal.jsonl``): a ``begin`` header naming the sweep
  configuration followed by one ``done`` line per completed job
  carrying the full result, enabling ``python -m repro sweep --resume``
  to finish a killed sweep by executing only the remaining jobs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import warnings
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, JournalError

__all__ = [
    "BackoffPolicy",
    "JOURNAL_VERSION",
    "SweepJournal",
    "claim_done",
    "clear_claim",
    "complete_claim",
    "quarantine_entry",
    "read_claim",
    "write_claim",
]


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempt 1, 2, 3, ... is
    ``min(base * factor**(attempt-1), max_delay)`` scaled down by up to
    ``jitter`` (a fraction in [0, 1]); the jitter draw is a pure
    function of ``(seed, attempt)``, so retry schedules are
    reproducible run to run.
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.base < 0:
            raise ConfigError(f"backoff base must be >= 0, got {self.base}")
        if self.factor < 1.0:
            raise ConfigError(f"backoff factor must be >= 1, got {self.factor}")
        if self.max_delay < 0:
            raise ConfigError(
                f"backoff max_delay must be >= 0, got {self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(
                f"backoff jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        attempt = max(1, attempt)
        raw = min(self.base * self.factor ** (attempt - 1), self.max_delay)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        digest = hashlib.sha256(
            f"{self.seed}:{attempt}".encode("ascii")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return raw * (1.0 - self.jitter * draw)

    def sleep(self, attempt: int) -> float:
        """Sleep for ``delay(attempt)``; returns the slept duration."""
        duration = self.delay(attempt)
        if duration > 0:
            time.sleep(duration)
        return duration


# -- claim markers ---------------------------------------------------------

def _claim_base(claims_dir: Union[str, Path], digest: str) -> Path:
    return Path(claims_dir) / digest


def write_claim(claims_dir: Union[str, Path], digest: str) -> None:
    """Record that this process started the job (pid + wall clock)."""
    try:
        with open(f"{_claim_base(claims_dir, digest)}.started", "w",
                  encoding="ascii") as handle:
            handle.write(f"{os.getpid()} {time.time():.6f}")
    except OSError:
        pass  # markers are advisory; the job still runs


def complete_claim(claims_dir: Union[str, Path], digest: str) -> None:
    """Record that the job finished (its result is on the wire)."""
    try:
        with open(f"{_claim_base(claims_dir, digest)}.done", "w"):
            pass
    except OSError:
        pass


def read_claim(
    claims_dir: Union[str, Path], digest: str
) -> Optional[Tuple[int, float]]:
    """The job's ``(pid, started_at)`` claim, or None if absent/corrupt."""
    try:
        with open(f"{_claim_base(claims_dir, digest)}.started", "r",
                  encoding="ascii") as handle:
            pid_text, _, when_text = handle.read().partition(" ")
        return int(pid_text), float(when_text)
    except (OSError, ValueError):
        return None


def claim_done(claims_dir: Union[str, Path], digest: str) -> bool:
    return os.path.exists(f"{_claim_base(claims_dir, digest)}.done")


def clear_claim(claims_dir: Union[str, Path], digest: str) -> None:
    """Remove stale markers before (re)submitting the job."""
    base = _claim_base(claims_dir, digest)
    for suffix in (".started", ".done"):
        try:
            os.unlink(f"{base}{suffix}")
        except OSError:
            pass


# -- quarantine ------------------------------------------------------------

def quarantine_entry(
    path: Union[str, Path],
    root: Union[str, Path],
    reason: str,
    extras: Iterable[Union[str, Path]] = (),
) -> Optional[Path]:
    """Move a corrupt cache entry aside instead of deleting it.

    ``path`` (and any ``extras`` sidecars) are moved into
    ``<root>/quarantine/`` and a ``<name>.why`` sidecar records the
    reason, so corruption stays inspectable. Falls back to plain
    deletion when the quarantine directory cannot be created, and never
    raises: quarantine is best-effort cleanup on an already-degraded
    path. Returns the quarantined entry path, or None.
    """
    qdir: Optional[Path] = Path(root) / "quarantine"
    try:
        qdir.mkdir(parents=True, exist_ok=True)
    except OSError:
        qdir = None
    moved: List[Path] = []
    for victim in (Path(path), *map(Path, extras)):
        if qdir is not None:
            try:
                dest = qdir / victim.name
                os.replace(victim, dest)
                moved.append(dest)
                continue
            except OSError:
                pass
        try:
            victim.unlink()
        except OSError:
            pass
    if qdir is None or not moved:
        return None
    why = qdir / f"{Path(path).name}.why"
    payload = json.dumps(
        {
            "entry": Path(path).name,
            "reason": reason,
            "quarantined_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        },
        indent=2,
        sort_keys=True,
    ) + "\n"
    # Atomic like ResultStore.put: a crash mid-write must not leave a
    # quarantined payload beside a torn (or empty) .why sidecar.
    try:
        from repro.exec.faults import SITE_QUARANTINE_WHY, fault_point

        fault_point(SITE_QUARANTINE_WHY, token=Path(path).name)
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-", suffix=".why", dir=str(qdir)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, why)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass
    return moved[0]


# -- sweep journal ---------------------------------------------------------

#: Bump when the journal line layout changes incompatibly.
JOURNAL_VERSION = 1


class SweepJournal:
    """Append-only ``.jsonl`` record of one sweep's progress.

    The first line is a ``begin`` header carrying a digest of the full
    job set; every completed job appends a ``done`` line with its
    digest and serialized result (flushed and fsynced, so a kill can
    lose at most the line being written — and :meth:`load` tolerates a
    torn tail line). Because results ride in the journal itself, a
    resumed sweep replays them without depending on the result store.

    Shard-parallel sweeps additionally append a ``shard`` line per
    completed shard (``key`` is the shard task's digest, ``result`` its
    serialized outcome), so ``--resume`` restarts a half-finished job
    from its surviving shards rather than from scratch. Shard lines are
    additive — journals without them load exactly as before.

    Sweeps run with ``--verify-fraction`` additionally append
    ``verify_sampled`` / ``verify_ok`` / ``verify_mismatch`` lines
    (:meth:`record_verify`); :meth:`load` collects the ok/mismatch
    outcomes so a resumed sweep never re-verifies a job the journal
    already vouches for.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.header: Optional[Dict[str, Any]] = None
        self._done: Dict[str, Dict[str, Any]] = {}
        self._shards: Dict[str, Dict[str, Any]] = {}
        self._verify: Dict[str, str] = {}
        self._write_failed = False

    @staticmethod
    def sweep_digest(keys: Sequence[Any]) -> str:
        """Order-insensitive content address of a sweep's job set."""
        digests = sorted({key.digest() for key in keys})
        return hashlib.sha256("\n".join(digests).encode("ascii")).hexdigest()

    @property
    def done_count(self) -> int:
        return len(self._done)

    def begin(
        self, keys: Sequence[Any], meta: Optional[Dict[str, Any]] = None
    ) -> None:
        """Start a fresh journal (truncating any previous one)."""
        header = {
            "event": "begin",
            "version": JOURNAL_VERSION,
            "sweep": self.sweep_digest(keys),
            "total": len({key.digest() for key in keys}),
            "meta": meta or {},
        }
        try:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(_dumps(header) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise JournalError(
                f"cannot start sweep journal at {self.path}: {exc}"
            ) from exc
        self.header = header
        self._done = {}
        self._shards = {}
        self._verify = {}

    def load(self) -> int:
        """Parse the journal; returns the number of completed jobs.

        A torn final line (a crash mid-append) is skipped silently;
        corruption anywhere else raises :class:`JournalError`, as does
        a missing file or header.
        """
        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise JournalError(f"no sweep journal at {self.path}") from None
        except OSError as exc:
            raise JournalError(
                f"cannot read sweep journal at {self.path}: {exc}"
            ) from exc
        lines = raw.split("\n")
        records: List[Dict[str, Any]] = []
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index >= len(lines) - 2:  # torn tail from a crash
                    continue
                raise JournalError(
                    f"{self.path}: corrupt journal line {index + 1}"
                ) from None
            if isinstance(record, dict):
                records.append(record)
        if not records or records[0].get("event") != "begin":
            raise JournalError(f"{self.path}: missing sweep journal header")
        if records[0].get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: unsupported journal version "
                f"{records[0].get('version')!r}"
            )
        self.header = records[0]
        self._done = {}
        self._shards = {}
        self._verify = {}
        for record in records[1:]:
            event = record.get("event")
            key = record.get("key")
            if not isinstance(key, str):
                continue
            if event in ("verify_ok", "verify_mismatch"):
                # Verification state survives a kill: a resumed sweep
                # trusts (and counts) journaled verify_ok outcomes
                # instead of re-running the shadow comparison.
                self._verify[key] = event[len("verify_"):]
                continue
            if not isinstance(record.get("result"), dict):
                continue
            if event == "done":
                self._done[key] = record["result"]
            elif event == "shard":
                self._shards[key] = record["result"]
        return len(self._done)

    def lookup(self, key: Any) -> Optional[Dict[str, Any]]:
        """The journaled result dict for ``key``, or None."""
        return self._done.get(key.digest())

    def record_done(self, key: Any, result: Any) -> None:
        """Append one completed job (``result`` must have ``to_dict``)."""
        payload = result.to_dict()
        self._done[key.digest()] = payload
        self._append({
            "event": "done",
            "key": key.digest(),
            "display": key.display,
            "result": payload,
        })

    def lookup_shard(self, task: Any) -> Optional[Dict[str, Any]]:
        """The journaled outcome dict for one shard task, or None."""
        return self._shards.get(task.digest())

    def record_shard(self, task: Any, outcome: Any) -> None:
        """Append one completed shard (``outcome`` must have ``to_dict``).

        Lets a resumed sweep skip re-running shards that finished
        before the crash even when their job never merged.
        """
        payload = outcome.to_dict()
        self._shards[task.digest()] = payload
        self._append({
            "event": "shard",
            "key": task.digest(),
            "display": task.display,
            "result": payload,
        })

    def record_event(self, event: str, **fields: Any) -> None:
        """Append an informational line (retry, timeout, quarantine...)."""
        self._append({"event": event, **fields})

    def verify_outcome(self, key: Any) -> Optional[str]:
        """Journaled shadow-verification outcome: "ok", "mismatch", None."""
        return self._verify.get(key.digest())

    def record_verify(self, key: Any, outcome: str, **fields: Any) -> None:
        """Append a shadow-verification line (``verify_<outcome>``).

        ``ok``/``mismatch`` outcomes also update the in-memory map so a
        load-free reader of this instance sees them; ``sampled`` is
        informational only.
        """
        if outcome in ("ok", "mismatch"):
            self._verify[key.digest()] = outcome
        self.record_event(
            f"verify_{outcome}",
            key=key.digest(),
            display=key.display,
            **fields,
        )

    def _append(self, record: Dict[str, Any]) -> None:
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(_dumps(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            if not self._write_failed:
                self._write_failed = True
                warnings.warn(
                    f"sweep journal at {self.path} is not writable ({exc}); "
                    "this sweep will not be resumable",
                    RuntimeWarning,
                    stacklevel=3,
                )


def _dumps(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))
