"""Batched same-trace execution for sweeps.

A sweep of N configs over one workload names N independent
:class:`~repro.exec.jobs.JobKey`\\ s, but the jobs share almost all of
their fixed cost: the trace bytes, the per-geometry split columns, and
the engine's sorted step plan. This module groups a sweep's cold keys
by (trace, geometry) — :func:`batch_group` — and packs each group into
:class:`BatchTask` work items that a single worker executes with *one*
trace and *one* plan, fusing vectorizable same-signature configs into
a single multi-config kernel pass
(:mod:`repro.sim.engines.multi`).

Batching is strictly an execution-shape optimization: store entries,
journal lines, shadow verification, and progress all stay at
per-``JobKey`` granularity (the executor absorbs a batch result member
by member), and every member's ``RunResult`` is bit-identical to the
per-job path — :func:`run_batch` replicates
:meth:`repro.sim.system.Simulator.run` exactly, per member, around the
shared drive.

Zero-copy trace sharing rides along: the executor publishes each
group's column arrays once per host into a
:mod:`multiprocessing.shared_memory` segment named by the trace's
content address (:func:`publish_trace`), and workers attach
(:func:`attach_trace`) instead of re-reading or regenerating the trace
per job. A worker that cannot attach (segment unlinked, shm
unavailable) falls back to the per-process trace factory — the shared
disk cache makes that a read, not a regeneration — so shared memory is
never load-bearing for correctness.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, ExecutionError, SimulationError
from repro.exec.faults import SITE_ENGINE_RESULT, SITE_JOB, fault_point
from repro.exec.jobs import JobKey, _trace_factory
from repro.exec.resilience import complete_claim, write_claim
from repro.params.system import scaled_system
from repro.sim.engines import TraceStream, resolve_engine, serial_segments
from repro.sim.engines.multi import (
    FusedRun,
    drive_fused,
    fusion_plan,
    plan_signature,
)
from repro.cache.dram_cache import lazy_tag_stores
from repro.sim.system import RunResult, build_dram_cache
from repro.sim.timing_model import IntervalTimingModel
from repro.sim.trace import Trace
from repro.workloads.trace_cache import TraceKey

#: Largest number of jobs packed into one worker task. Bounds both the
#: fused kernel's config axis (memory scales with K × sets × ways) and
#: the work lost when a batch has to be retried whole.
DEFAULT_BATCH_SIZE = 16


def batch_group(key: JobKey) -> Tuple:
    """Grouping identity: jobs in one group share trace AND geometry.

    The trace half mirrors :func:`trace_key_for` (workload + the knobs
    feeding generation); the geometry half is the design's way count
    (with ``scale`` fixed, ways determine the set layout and therefore
    the split columns and step plan). ``warmup``/``epoch`` ride along
    so one batch shares its measurement plan too.
    """
    return (
        key.workload, key.scale, key.num_accesses, key.seed,
        key.footprint_scale, key.design.ways, key.warmup, key.epoch,
    )


def trace_key_for(key: JobKey) -> TraceKey:
    """The :class:`TraceKey` a job's trace is cached (and shared) under.

    Must mirror :func:`repro.exec.jobs._trace_factory` +
    :meth:`repro.sim.runner.TraceFactory._build`: traces are generated
    against the 1-way scaled system's cache capacity.
    """
    config = scaled_system(ways=1, scale=key.scale)
    footprint = (
        key.footprint_scale
        if key.footprint_scale is not None
        else config.scale
    )
    return TraceKey(
        workload=key.workload,
        capacity_bytes=config.dram_cache.capacity_bytes,
        num_accesses=key.num_accesses,
        seed=key.seed,
        footprint_scale=footprint,
    )


@dataclass(frozen=True)
class TraceRef:
    """Locator for a trace published to a shared-memory segment.

    The segment holds ``length`` int64 addresses followed by ``length``
    uint8 write flags. ``token`` is the trace's content address (the
    :class:`TraceKey` digest) — it keys the per-worker attach memo and
    the engines' plan memos, so every job of a sweep that shares a
    trace also shares one plan per (worker, geometry).
    """

    shm_name: str
    length: int
    trace_name: str
    instructions_per_access: float
    token: str


@dataclass(frozen=True)
class BatchTask:
    """A packed worker task: same-group jobs executed over one trace.

    Mirrors :class:`JobKey`'s ``digest()``/``display`` surface so
    claims, retries, the watchdog and pool-break attribution handle all
    three item kinds uniformly. The digest is derived from the member
    digests, so a batch's claim marker names exactly its jobs.
    """

    jobs: Tuple[JobKey, ...]
    trace_ref: Optional[TraceRef] = None

    def __post_init__(self):
        if len(self.jobs) < 2:
            raise ConfigError(
                f"a batch needs at least 2 jobs, got {len(self.jobs)}"
            )

    def digest(self) -> str:
        cached = self.__dict__.get("_digest")
        if cached is None:
            payload = "\n".join(job.digest() for job in self.jobs)
            cached = "batch-" + hashlib.sha256(
                payload.encode("ascii")
            ).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    @property
    def display(self) -> str:
        first = self.jobs[0]
        return (
            f"{first.workload} x{len(self.jobs)} designs "
            f"[batch {self.digest()[6:14]}]"
        )


def plan_batches(
    keys: Sequence[JobKey], batch_size: int = DEFAULT_BATCH_SIZE
) -> List:
    """Pack same-group jobs into :class:`BatchTask` items.

    Returns a mixed list of work items in first-seen group order:
    groups of one stay plain :class:`JobKey` items (nothing to share),
    larger groups are chunked to ``batch_size``. Deduplication is the
    caller's concern (the executor already runs on unique keys).
    """
    if batch_size < 2:
        raise ConfigError(f"batch_size must be >= 2, got {batch_size}")
    groups: Dict[Tuple, List[JobKey]] = {}
    for key in keys:
        groups.setdefault(batch_group(key), []).append(key)
    items: List = []
    for members in groups.values():
        if len(members) == 1:
            items.append(members[0])
            continue
        for start in range(0, len(members), batch_size):
            chunk = members[start:start + batch_size]
            if len(chunk) == 1:
                items.append(chunk[0])
            else:
                items.append(BatchTask(jobs=tuple(chunk)))
    return items


# -- shared-memory trace plumbing --------------------------------------------


def _segment_name(token: str) -> str:
    # Content-addressed but pid-scoped: two executors on one host never
    # race to fill the same segment mid-write. The worker-side attach
    # memo still collapses every task of one sweep onto one mapping.
    return f"repro-{token[:16]}-{os.getpid()}"


def publish_trace(trace: Trace, token: str):
    """Copy a trace's columns into a named shared-memory segment.

    Returns ``(shm, ref)``; the caller owns the segment and must
    ``close()`` + ``unlink()`` it when the sweep is done (the executor
    does this on shutdown). Raises ``OSError`` when shared memory is
    unavailable — callers degrade to factory-rebuilt traces.
    """
    from multiprocessing import shared_memory

    n = len(trace)
    if n == 0:
        raise ValueError("cannot publish an empty trace")
    name = _segment_name(token)
    size = 9 * n  # 8 bytes per address + 1 write flag
    try:
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    except FileExistsError:
        # A sibling executor in this process already published this
        # trace; the bytes are content-determined, so re-filling below
        # is an idempotent no-op either way.
        shm = shared_memory.SharedMemory(name=name, create=False)
    addrs = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
    writes = np.ndarray((n,), dtype=np.uint8, buffer=shm.buf, offset=8 * n)
    addrs[:] = trace.numpy_addrs()
    writes[:] = trace.numpy_writes()
    ref = TraceRef(
        shm_name=name,
        length=n,
        trace_name=trace.name,
        instructions_per_access=trace.instructions_per_access,
        token=token,
    )
    return shm, ref


#: shm_name -> (segment, Trace). Process-lifetime by design: the
#: attached mapping and its Trace (with all derived caches) serve every
#: batch of the sweep that lands on this worker.
_ATTACHED: Dict[str, Tuple[object, Trace]] = {}


def attach_trace(ref: TraceRef) -> Optional[Trace]:
    """Attach to a published trace; None when the segment is gone.

    The returned Trace is memoized per segment name, so every batch a
    worker executes over one trace sees the *same object* — plan memos
    keyed by identity or by ``cache_token`` both collapse to one entry.

    Attaching registers the name with ``multiprocessing``'s resource
    tracker again (bpo-39959), which is deliberately left alone: pool
    workers inherit the parent's tracker, whose name set collapses the
    duplicate, and the parent's ``unlink()`` balances it — worker-side
    unregistering would instead erase the parent's registration from
    the shared tracker.
    """
    entry = _ATTACHED.get(ref.shm_name)
    if entry is not None:
        return entry[1]
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=ref.shm_name, create=False)
    except (FileNotFoundError, OSError):
        return None
    n = ref.length
    if shm.size < 9 * n:
        return None  # truncated segment: fall back to the factory
    addrs = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
    writes = np.ndarray((n,), dtype=np.uint8, buffer=shm.buf, offset=8 * n)
    trace = Trace(
        ref.trace_name, addrs, writes, ref.instructions_per_access,
        cache_token=ref.token,
    )
    _ATTACHED[ref.shm_name] = (shm, trace)
    return trace


def attached_segment_count() -> int:
    """How many shared-memory segments this process has attached."""
    return len(_ATTACHED)


# -- batch execution ---------------------------------------------------------


def _assemble(key: JobKey, config, trace: Trace, stats, phases) -> RunResult:
    """The tail of :meth:`Simulator.run`, replicated per batch member."""
    instructions = stats.demand_reads * trace.instructions_per_access
    if instructions <= 0:
        raise SimulationError(
            f"trace {trace.name!r} produced no post-warmup demand reads"
        )
    timing = IntervalTimingModel(config).evaluate(stats, instructions)
    return RunResult(
        design=key.design,
        workload=trace.name,
        stats=stats,
        timing=timing,
        instructions=instructions,
        phases=phases,
    )


def run_batch(keys: Sequence[JobKey], trace: Trace) -> List[RunResult]:
    """Run every job over one shared trace; results in member order.

    Per member this follows :meth:`Simulator.run` exactly — fresh
    cache, engine resolution, ``serial_segments`` measurement plan,
    stats/timing assembly — so each ``RunResult`` is bit-identical to
    the per-job path. The shared part is the drive: members resolving
    to the vector engine whose kernel plans share a fusion signature
    are evaluated in one multi-config pass
    (:func:`repro.sim.engines.multi.drive_fused`); everything else
    (replay/stream/loop designs, singleton signatures) runs
    sequentially over the same trace object, still sharing the step
    plan and split columns.
    """
    n = len(trace)
    results: List[Optional[RunResult]] = [None] * len(keys)
    fusable: Dict[Tuple, List[Tuple]] = {}
    sequential: List[Tuple] = []
    for index, key in enumerate(keys):
        config = scaled_system(ways=key.design.ways, scale=key.scale)
        # Lazy store: members that fuse (or vectorize) never touch the
        # tag store, so skip its multi-MB allocation; scalar-path
        # members materialize an identical prefilled store on demand.
        with lazy_tag_stores():
            cache = build_dram_cache(key.design, config, seed=key.seed)
        engine = resolve_engine(cache, requested=key.engine, design=key.design)
        warm = int(n * key.warmup)
        segments = serial_segments(trace, warm, key.epoch)
        member = (index, key, config, cache, engine, warm, segments)
        plan = fusion_plan(cache) if engine.name == "vector" else None
        if plan is None:
            sequential.append(member)
        else:
            fusable.setdefault(plan_signature(plan), []).append((member, plan))
    for group in fusable.values():
        if len(group) < 2:
            sequential.extend(member for member, _plan in group)
            continue
        runs = [
            FusedRun(
                plan=plan,
                warm=member[5],
                segments=member[6],
                epoch=member[1].epoch,
            )
            for member, plan in group
        ]
        geometry = group[0][0][3].geometry
        stream = TraceStream(trace, geometry)
        fused = drive_fused(runs, stream, geometry)
        for (member, _plan), (stats, phases) in zip(group, fused):
            index, key, config, cache = member[:4]
            results[index] = _assemble(key, config, trace, stats, phases)
    for member in sequential:
        index, key, config, cache, engine, warm, segments = member
        stream = TraceStream(trace, cache.geometry)
        phases = engine.drive(cache, stream, warm, segments, key.epoch)
        results[index] = _assemble(key, config, trace, cache.stats, phases)
    return results  # type: ignore[return-value]


def execute_batch(task: BatchTask) -> List[RunResult]:
    """Run a packed batch (worker entry point; picklable).

    Fault points fire per member with the member's own digest — chaos
    plans targeting one job's token hit it whether the job ran packed
    or alone — and the in-memory result corruption hook
    (``SITE_ENGINE_RESULT``) sees each member's result object, keeping
    batched jobs individually shadow-verifiable.
    """
    keys = task.jobs
    for key in keys:
        fault_point(SITE_JOB, token=key.digest())
    trace = None
    if task.trace_ref is not None:
        trace = attach_trace(task.trace_ref)
    if trace is None:
        trace = _trace_factory(keys[0]).trace_for(keys[0].workload)
    results = run_batch(keys, trace)
    if len(results) != len(keys):
        raise ExecutionError(
            f"{task.display}: batch returned {len(results)} results "
            f"for {len(keys)} jobs"
        )
    for key, result in zip(keys, results):
        fault_point(SITE_ENGINE_RESULT, token=key.digest(), obj=result)
    return results


def execute_batch_traced(task: BatchTask, claims_dir: str) -> List[RunResult]:
    """Batch worker entry with claim markers (see execute_job_traced)."""
    digest = task.digest()
    write_claim(claims_dir, digest)
    result = execute_batch(task)
    complete_claim(claims_dir, digest)
    return result


__all__ = [
    "BatchTask",
    "DEFAULT_BATCH_SIZE",
    "TraceRef",
    "attach_trace",
    "attached_segment_count",
    "batch_group",
    "execute_batch",
    "execute_batch_traced",
    "plan_batches",
    "publish_trace",
    "run_batch",
    "trace_key_for",
]
