"""Parallel sweep executor with memoization, retries, and a watchdog.

Jobs are independent (design, workload) simulations named by
:class:`JobKey`. The executor serves warm keys from a
:class:`ResultStore` (and, when resuming, from a
:class:`~repro.exec.resilience.SweepJournal`), fans the cold ones out
over a ``ProcessPoolExecutor`` (or runs them inline for ``jobs=1``),
and reports progress through an optional callback.

With ``shards > 1``, each cold job whose design declares the
``shardable`` capability is additionally split into set-range
:class:`~repro.exec.jobs.ShardTask` items that share the same pool —
intra-run parallelism, so even a single long simulation spreads over
the cores — and the shard outcomes merge into a result bit-identical
to the serial run (:func:`repro.sim.shard.merge_outcomes`). Completed
shards are journaled individually, so ``--resume`` restarts a
half-finished job from its surviving shards. Serial-only designs run
whole, with a one-time fallback warning.

Failure handling distinguishes three classes:

* **Deterministic simulation errors** (:class:`~repro.errors.ReproError`
  subclasses other than :class:`~repro.errors.TransientError`) are
  never retried — they would fail identically — and propagate.
* **Transient failures** (:class:`~repro.errors.TransientError`,
  ``OSError``) are retried up to ``retries`` times with exponential
  backoff and deterministic jitter (:class:`BackoffPolicy`).
* **Dead or stuck workers**: a crashed worker breaks the pool; a
  wall-clock watchdog (``timeout``) kills workers whose job overran.
  Worker-side claim markers (:func:`execute_job_traced`) let the
  executor attribute the break to the specific in-flight jobs of the
  dead worker, so only those are charged a retry — the rest of the
  batch is simply resubmitted. If the pool keeps breaking, execution
  degrades gracefully to serial in the main process.

Results are bit-identical to a fault-free serial run: every job
rebuilds its trace from the seeded generator, so neither scheduling,
retries, nor process boundaries can perturb the outcome.

With ``verify_fraction > 0`` a deterministic sample of executed jobs
is additionally *shadow-verified*: each sampled result is compared (by
:func:`~repro.verify.digest.result_digest`) against a re-execution on
the trusted ``verify_engine``. A mismatch quarantines both payloads,
trips the offending engine's circuit breaker
(:mod:`repro.verify.breaker`), and heals in place by recording the
reference result — the sweep still completes, bit-identically.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.errors import (
    ConfigError,
    ExecutionError,
    ReproError,
    TransientError,
    VerificationError,
)
from repro.exec.batching import (
    DEFAULT_BATCH_SIZE,
    BatchTask,
    TraceRef,
    execute_batch,
    execute_batch_traced,
    plan_batches,
    publish_trace,
    trace_key_for,
)
from repro.exec.jobs import (
    JobKey,
    ShardTask,
    _trace_factory,
    execute_job,
    execute_job_sharded,
    execute_job_traced,
    execute_shard,
    execute_shard_traced,
    plan_shards,
)
from repro.exec.resilience import (
    BackoffPolicy,
    SweepJournal,
    claim_done,
    clear_claim,
    read_claim,
)
from repro.exec.store import ResultStore
from repro.params.system import scaled_system
from repro.sim.shard import ShardOutcome, mark_worker_process, merge_outcomes
from repro.sim.system import RunResult

#: progress(done, total, key, source) with source in
#: {"cached", "run", "resumed"}.
ProgressFn = Callable[[int, int, JobKey, str], None]

#: on_verify(key, outcome, detail) with outcome in {"ok", "mismatch"};
#: detail carries the payload digests (and, on mismatch, the demoted
#: engine). The service streams these to subscribers.
VerifyFn = Callable[[JobKey, str, Dict[str, str]], None]

#: Exceptions worth retrying: the same job may succeed on a later
#: attempt. Everything else deterministic fails fast.
TRANSIENT_EXCEPTIONS = (TransientError, OSError)


@dataclass
class ExecutorStats:
    """What the most recent :meth:`Executor.run` call actually did."""

    executed: int = 0
    cached: int = 0
    resumed: int = 0
    retried: int = 0
    transient_retries: int = 0
    timeouts: int = 0
    pool_breaks: int = 0
    degraded_to_serial: bool = False
    #: Shadow-verification outcomes (``verify_fraction`` sampling):
    #: jobs whose reference re-run agreed, and mismatches that were
    #: quarantined + healed from the reference result.
    verified: int = 0
    mismatches: int = 0
    #: Packed same-trace batches dispatched (each covering >= 2 jobs).
    batches: int = 0


class _PoolBroken(Exception):
    """Internal: the pool died; ``suspects`` are the jobs to charge."""

    def __init__(self, suspects: List[JobKey]):
        super().__init__("process pool broke")
        self.suspects = suspects


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def _kill(pid: int) -> None:
    try:
        os.kill(pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        pass


class Executor:
    """Runs batches of jobs, warm-first, then parallel or serial."""

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        retries: int = 1,
        progress: Optional[ProgressFn] = None,
        timeout: Optional[float] = None,
        backoff: Optional[BackoffPolicy] = None,
        journal: Optional[SweepJournal] = None,
        pool_break_limit: Optional[int] = None,
        poll_interval: float = 0.2,
        shards: int = 1,
        verify_fraction: float = 0.0,
        verify_engine: str = "stream",
        on_verify: Optional[VerifyFn] = None,
        batch: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if batch_size < 2:
            raise ConfigError(f"batch_size must be >= 2, got {batch_size}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if not 0.0 <= verify_fraction <= 1.0:
            raise ConfigError(
                f"verify_fraction must be in [0, 1], got {verify_fraction}"
            )
        if verify_engine not in ("stream", "loop"):
            raise ConfigError(
                f"verify_engine must be 'stream' or 'loop', "
                f"got {verify_engine!r}"
            )
        if timeout is not None and timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {timeout}")
        if poll_interval <= 0:
            raise ConfigError(
                f"poll_interval must be positive, got {poll_interval}"
            )
        self.jobs = jobs
        self.shards = shards
        self.store = store
        self.retries = retries
        self.progress = progress
        self.timeout = timeout
        self.journal = journal
        self.pool_break_limit = (
            pool_break_limit if pool_break_limit is not None
            else max(3, retries + 2)
        )
        if self.pool_break_limit < 1:
            raise ConfigError(
                f"pool_break_limit must be >= 1, got {self.pool_break_limit}"
            )
        self._backoff = backoff if backoff is not None else BackoffPolicy()
        self._poll = poll_interval
        self.verify_fraction = verify_fraction
        self.verify_engine = verify_engine
        self.on_verify = on_verify
        self.batch = batch
        self.batch_size = batch_size
        #: trace token -> (SharedMemory, TraceRef). Published segments
        #: outlive pool breaks deliberately — the rebuilt pool's workers
        #: re-attach to the same bytes — and are unlinked when the run
        #: (or, for persistent owners, :meth:`shutdown`) ends.
        self._segments: Dict[str, tuple] = {}
        self.stats = ExecutorStats()
        self._forced_timeouts: Set[JobKey] = set()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_tainted = False
        self._persistent = False
        self._lock = threading.Lock()

    # -- lifecycle (long-lived owners: the sweep service) ------------------

    def start(self) -> "Executor":
        """Adopt long-lived ownership: keep the pool across ``run`` calls.

        Idempotent — calling it again is a no-op. The worker pool itself
        is created lazily on the first parallel batch and then reused,
        instead of being torn down at the end of every :meth:`run`.
        Batch (one-shot) callers never need this; without it the
        executor behaves exactly as before.
        """
        self._persistent = True
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Release the worker pool (idempotent; waits out a running batch).

        The executor stays usable: a later :meth:`run` simply rebuilds
        the pool (still persistent if :meth:`start` was called). Safe to
        call repeatedly and from a thread other than the one running
        batches — it serializes against :meth:`run`.
        """
        with self._lock:
            self._discard_pool(wait=wait)
            self._release_segments()

    def __enter__(self) -> "Executor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _acquire_pool(self, items: int) -> ProcessPoolExecutor:
        """The persistent pool if one is alive, else a fresh pool."""
        if self._pool is not None:
            return self._pool
        workers = self.jobs * self.shards
        if not self._persistent:
            workers = min(workers, items)
        self._pool = ProcessPoolExecutor(
            max_workers=workers, initializer=mark_worker_process
        )
        return self._pool

    def _discard_pool(self, wait: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    # -- shared-memory trace segments --------------------------------------

    #: Cap on concurrently published trace segments (a persistent
    #: service executor sweeps many workloads); oldest unlink first.
    _SEGMENT_LIMIT = 32

    def _publish_for(self, key: JobKey) -> Optional[TraceRef]:
        """Publish (or reuse) the shared-memory segment for a job's trace.

        Returns None — batches then fall back to worker-side trace
        factories — whenever shared memory is unavailable or the trace
        cannot be resolved here; publishing is an optimization, never a
        correctness dependency.
        """
        try:
            token = trace_key_for(key).digest()
        except ReproError:
            return None
        entry = self._segments.get(token)
        if entry is not None:
            return entry[1]
        try:
            trace = _trace_factory(key).trace_for(key.workload)
            shm, ref = publish_trace(trace, token)
        except (OSError, ValueError, ReproError) as exc:
            self._note("shm_degraded", key=key.digest(), error=str(exc))
            return None
        self._segments[token] = (shm, ref)
        while len(self._segments) > self._SEGMENT_LIMIT:
            oldest = next(iter(self._segments))
            self._unlink_segment(*self._segments.pop(oldest))
        return ref

    @staticmethod
    def _unlink_segment(shm, _ref) -> None:
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass

    def _release_segments(self) -> None:
        segments, self._segments = self._segments, {}
        for entry in segments.values():
            self._unlink_segment(*entry)

    def run(self, keys: Sequence[JobKey]) -> Dict[JobKey, RunResult]:
        """Resolve every key to a result; ``stats`` reflects this call.

        Reentrant-safe for long-lived owners: concurrent calls from
        other threads serialize on an internal lock rather than
        corrupting shared batch state.
        """
        with self._lock:
            return self._run_locked(keys)

    def _run_locked(self, keys: Sequence[JobKey]) -> Dict[JobKey, RunResult]:
        self.stats = ExecutorStats()
        unique: List[JobKey] = []
        seen = set()
        for key in keys:
            if key not in seen:
                seen.add(key)
                unique.append(key)
        self._total = len(unique)
        self._done = 0

        results: Dict[JobKey, RunResult] = {}
        pending: List[JobKey] = []
        for key in unique:
            resumed = self._from_journal(key)
            if resumed is not None:
                results[key] = resumed
                self.stats.resumed += 1
                if (
                    self.journal is not None
                    and self.journal.verify_outcome(key) == "ok"
                ):
                    # Carry journaled verification credit across the
                    # kill: the resumed sweep's summary still reflects
                    # every job the shadow check vouched for.
                    self.stats.verified += 1
                if self.store is not None:
                    # Replayed results are as good as executed ones:
                    # memoize them so later runs are warm without the
                    # journal (the service's restart-resume relies on
                    # this — batch journals are deleted once drained).
                    self.store.put(key, resumed)
                self._report(key, "resumed")
                continue
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None:
                # The store ignores cosmetic labels; hand back the
                # caller's exact design object.
                result = replace(cached, design=key.design)
                results[key] = result
                self.stats.cached += 1
                if self.journal is not None:
                    self.journal.record_done(key, result)
                self._report(key, "cached")
            else:
                pending.append(key)

        if not pending:
            return results
        if self.jobs == 1 or len(pending) == 1:
            # Inline batching still shares one trace + plan per group
            # (no shared memory needed in-process). With shards > 1 the
            # intra-job shard pool already owns the parallelism, so
            # jobs run whole.
            if self.batch and self.shards == 1 and len(pending) > 1:
                items = plan_batches(pending, self.batch_size)
            else:
                items = list(pending)
            for item in items:
                if isinstance(item, BatchTask):
                    self._absorb(item, self._execute_batch_inline(item),
                                 results)
                else:
                    self._record(item, self._execute_serial(item), results)
        else:
            self._run_parallel(pending, results)
        return results

    # -- internals --------------------------------------------------------

    def _from_journal(self, key: JobKey) -> Optional[RunResult]:
        if self.journal is None:
            return None
        record = self.journal.lookup(key)
        if record is None:
            return None
        try:
            result = RunResult.from_dict(record)
        except (ReproError, KeyError, TypeError, ValueError):
            return None  # malformed journal entry: just re-run the job
        return replace(result, design=key.design)

    def _record(
        self, key: JobKey, result: RunResult, results: Dict[JobKey, RunResult]
    ) -> None:
        result = self._maybe_verify(key, result)
        results[key] = result
        self.stats.executed += 1
        if self.store is not None:
            self.store.put(key, result)
        if self.journal is not None:
            self.journal.record_done(key, result)
        self._report(key, "run")

    def _report(self, key: JobKey, source: str) -> None:
        self._done += 1
        if self.progress is not None:
            self.progress(self._done, self._total, key, source)

    def _note(self, event: str, **fields) -> None:
        if self.journal is not None:
            self.journal.record_event(event, **fields)

    # -- shadow verification ----------------------------------------------

    def _maybe_verify(self, key: JobKey, result: RunResult) -> RunResult:
        """Shadow-verify a sampled executed result; returns what to trust.

        A clean comparison (or an unsampled key) hands back ``result``
        unchanged. A mismatch quarantines both payloads, trips the
        offending engine's circuit breaker, and returns the *reference*
        result, so the sweep heals in place and still finishes
        bit-identically; only an unhealable mismatch — the reference
        chain itself disagreeing — raises :class:`VerificationError`.
        """
        if self.verify_fraction <= 0.0:
            return result
        from repro.verify.shadow import should_verify

        if not should_verify(key.digest(), self.verify_fraction):
            return result
        if (
            self.journal is not None
            and self.journal.verify_outcome(key) == "ok"
        ):
            # Already vouched for by this sweep's journal (the job was
            # verified before a crash lost its done line): trust it.
            self.stats.verified += 1
            return result
        return self._shadow_verify(key, result)

    def _shadow_verify(self, key: JobKey, result: RunResult) -> RunResult:
        from repro.verify import breaker
        from repro.verify.digest import result_digest
        from repro.verify.shadow import (
            quarantine_mismatch,
            reference_result,
            resolve_job_engine,
        )

        if self.journal is not None:
            self.journal.record_verify(
                key, "sampled",
                fraction=self.verify_fraction, engine=self.verify_engine,
            )
        suspect_digest = result_digest(result)
        reference = reference_result(key, self.verify_engine)
        reference_digest = result_digest(reference)
        if suspect_digest == reference_digest:
            self.stats.verified += 1
            if self.journal is not None:
                self.journal.record_verify(key, "ok", digest=suspect_digest)
            if self.on_verify is not None:
                self.on_verify(key, "ok", {"digest": suspect_digest})
            return result
        # Attribute the wrong answer before tripping: the trip changes
        # what the request resolves to.
        engine = resolve_job_engine(key)
        self.stats.mismatches += 1
        if self.journal is not None:
            self.journal.record_verify(
                key, "mismatch",
                engine=engine, suspect=suspect_digest,
                reference=reference_digest,
                reference_engine=self.verify_engine,
            )
        if self.store is not None:
            quarantine_mismatch(
                self.store.root, key, engine, result, reference,
                suspect_digest, reference_digest, self.verify_engine,
            )
        if self.on_verify is not None:
            self.on_verify(key, "mismatch", {
                "engine": engine,
                "suspect": suspect_digest,
                "reference": reference_digest,
            })
        if engine in (self.verify_engine, "loop"):
            raise VerificationError(
                f"{key.display}: result from engine {engine!r} disagrees "
                f"with its own reference re-run ({suspect_digest[:12]} vs "
                f"{reference_digest[:12]}) — no trusted engine remains"
            )
        breaker.trip(
            engine,
            reason=f"shadow verification mismatch on {key.display}",
        )
        # Workers forked before the trip never saw the deny list; make
        # the next batch rebuild the pool (in-flight jobs finish on the
        # old pool — their sampled results still get verified).
        self._pool_tainted = True
        return reference

    # -- serial path (jobs=1, single pending job, or degraded) ------------

    def _execute_serial(
        self, key: JobKey, attempts: int = 0, allow_shards: bool = True
    ) -> RunResult:
        """Run a job inline, retrying transient failures with backoff.

        With ``shards > 1`` the single job still fans its set shards
        out over an intra-run pool (:func:`execute_job_sharded`) —
        unless ``allow_shards`` is False, which the degraded path uses
        to avoid spawning pools right after pools kept breaking.
        """
        use_shards = allow_shards and self.shards > 1
        while True:
            try:
                if use_shards:
                    return execute_job_sharded(key, self.shards)
                return execute_job(key)
            except TRANSIENT_EXCEPTIONS as exc:
                attempts += 1
                self.stats.transient_retries += 1
                self._note(
                    "retry", key=key.digest(), attempt=attempts,
                    error=str(exc),
                )
                if attempts > self.retries:
                    raise ExecutionError(
                        f"{key.display} kept failing transiently "
                        f"(gave up after {attempts} attempts): {exc}"
                    ) from exc
                self._backoff.sleep(attempts)

    def _execute_shard_inline(self, task: ShardTask, attempts: int = 0):
        """Run one shard in-process with the same transient-retry loop."""
        while True:
            try:
                return execute_shard(task)
            except TRANSIENT_EXCEPTIONS as exc:
                attempts += 1
                self.stats.transient_retries += 1
                self._note(
                    "retry", key=task.digest(), attempt=attempts,
                    error=str(exc),
                )
                if attempts > self.retries:
                    raise ExecutionError(
                        f"{task.display} kept failing transiently "
                        f"(gave up after {attempts} attempts): {exc}"
                    ) from exc
                self._backoff.sleep(attempts)

    def _execute_batch_inline(self, task: BatchTask, attempts: int = 0):
        """Run one packed batch in-process with the transient-retry loop."""
        while True:
            try:
                return execute_batch(task)
            except TRANSIENT_EXCEPTIONS as exc:
                attempts += 1
                self.stats.transient_retries += 1
                self._note(
                    "retry", key=task.digest(), attempt=attempts,
                    error=str(exc),
                )
                if attempts > self.retries:
                    raise ExecutionError(
                        f"{task.display} kept failing transiently "
                        f"(gave up after {attempts} attempts): {exc}"
                    ) from exc
                self._backoff.sleep(attempts)

    # -- parallel path ----------------------------------------------------

    def _flatten(
        self, pending: Sequence[JobKey], results: Dict[JobKey, RunResult]
    ) -> List:
        """Expand shardable jobs into per-shard work items.

        With ``shards > 1``, each job whose design declares the
        ``shardable`` capability becomes ``count`` :class:`ShardTask`
        items (shards of one job spread over the pool alongside other
        jobs); serial-only designs stay whole-job items. Journaled
        shard outcomes are absorbed up front — shard-granularity
        resume — and a job whose every shard was journaled merges on
        the spot without touching the pool.
        """
        self._shard_parts: Dict[JobKey, Dict[int, ShardOutcome]] = {}
        self._shard_counts: Dict[JobKey, int] = {}
        items: List = []
        whole: List[JobKey] = []
        for key in pending:
            count = plan_shards(key, self.shards)
            if count <= 1:
                whole.append(key)
                continue
            self._shard_counts[key] = count
            parts: Dict[int, ShardOutcome] = {}
            self._shard_parts[key] = parts
            todo = []
            for index in range(count):
                task = ShardTask(key, index, count)
                outcome = self._shard_from_journal(task)
                if outcome is not None:
                    parts[index] = outcome
                else:
                    todo.append(task)
            if todo:
                items.extend(todo)
            else:
                self._merge_job(key, results, source="resumed")
        if self.batch and len(whole) > 1:
            for item in plan_batches(whole, self.batch_size):
                if isinstance(item, BatchTask):
                    ref = self._publish_for(item.jobs[0])
                    if ref is not None:
                        item = replace(item, trace_ref=ref)
                items.append(item)
        else:
            items.extend(whole)
        return items

    def _shard_from_journal(self, task: ShardTask) -> Optional[ShardOutcome]:
        if self.journal is None:
            return None
        record = self.journal.lookup_shard(task)
        if record is None:
            return None
        try:
            return ShardOutcome.from_dict(record)
        except (ReproError, KeyError, TypeError, ValueError):
            return None  # malformed shard record: just re-run the shard

    def _merge_job(
        self,
        key: JobKey,
        results: Dict[JobKey, RunResult],
        source: str = "run",
    ) -> None:
        """All shards of ``key`` are in: merge them into its RunResult."""
        parts = self._shard_parts.pop(key)
        count = self._shard_counts.pop(key)
        outcomes = [parts[index] for index in range(count)]
        config = scaled_system(ways=key.design.ways, scale=key.scale)
        result = merge_outcomes(key.design, config, outcomes, epoch=key.epoch)
        if source == "resumed":
            results[key] = result
            self.stats.resumed += 1
            if self.store is not None:
                self.store.put(key, result)
            if self.journal is not None:
                self.journal.record_done(key, result)
            self._report(key, "resumed")
        else:
            self._record(key, result, results)

    def _absorb(self, item, result, results: Dict[JobKey, RunResult]) -> None:
        """Fold one completed work item into job-level results."""
        if isinstance(item, BatchTask):
            self._absorb_batch(item, result, results)
        elif isinstance(item, ShardTask):
            if self.journal is not None:
                self.journal.record_shard(item, result)
            key = item.job
            parts = self._shard_parts[key]
            parts[item.index] = result
            if len(parts) == self._shard_counts[key]:
                self._merge_job(key, results)
        else:
            self._record(item, result, results)

    def _absorb_batch(
        self,
        task: BatchTask,
        batch_results: Sequence[RunResult],
        results: Dict[JobKey, RunResult],
    ) -> None:
        """Absorb a packed batch member by member.

        Every member goes through :meth:`_record` individually, so
        verification sampling, the store, journal done-lines (and with
        them ``--resume`` granularity), and progress callbacks are
        per-``JobKey`` — batching never changes what a sweep records,
        only how the work was scheduled.
        """
        if len(batch_results) != len(task.jobs):
            raise ExecutionError(
                f"{task.display}: batch returned {len(batch_results)} "
                f"results for {len(task.jobs)} jobs"
            )
        self.stats.batches += 1
        self._note(
            "batch", key=task.digest(), jobs=len(task.jobs),
            members=[key.digest() for key in task.jobs],
        )
        for key, result in zip(task.jobs, batch_results):
            self._record(key, result, results)

    def _submit(self, pool: ProcessPoolExecutor, item, claims: str):
        if isinstance(item, BatchTask):
            return pool.submit(execute_batch_traced, item, claims)
        if isinstance(item, ShardTask):
            return pool.submit(execute_shard_traced, item, claims)
        return pool.submit(execute_job_traced, item, claims)

    def _run_parallel(
        self, pending: Sequence[JobKey], results: Dict[JobKey, RunResult]
    ) -> None:
        items = self._flatten(pending, results)
        if not items:
            return
        attempts: Dict[object, int] = {item: 0 for item in items}
        remaining: Dict[object, None] = dict.fromkeys(items)
        claims = tempfile.mkdtemp(prefix="repro-claims-")
        consecutive_breaks = 0
        try:
            while remaining:
                if consecutive_breaks >= self.pool_break_limit:
                    self._degrade_to_serial(remaining, results, attempts)
                    return
                self._forced_timeouts = set()
                try:
                    pool = self._acquire_pool(len(remaining))
                    for key in remaining:
                        clear_claim(claims, key.digest())
                    futures = {
                        self._submit(pool, item, claims): item
                        for item in remaining
                    }
                    try:
                        self._drain(
                            pool, futures, remaining, results, attempts,
                            claims,
                        )
                    except BrokenProcessPool:
                        # Inspect pids *before* pool shutdown finishes
                        # reaping, so live workers are still visible.
                        raise _PoolBroken(
                            self._suspects(claims, remaining)
                        ) from None
                    consecutive_breaks = 0
                except _PoolBroken as broken:
                    self._discard_pool()
                    consecutive_breaks += 1
                    self.stats.pool_breaks += 1
                    self._penalize(broken.suspects, attempts)
                    self._note(
                        "pool_break",
                        retried=[key.digest() for key in broken.suspects],
                    )
                    self._backoff.sleep(consecutive_breaks)
        finally:
            shutil.rmtree(claims, ignore_errors=True)
            if not self._persistent:
                # One-shot callers: published trace segments are scoped
                # to this run (persistent owners keep them warm across
                # runs and release on shutdown()).
                self._release_segments()
            if self._pool_tainted:
                # A verification trip happened while this pool's
                # workers were already forked (without the deny env);
                # retire it so the next batch resolves engines fresh.
                self._pool_tainted = False
                self._discard_pool(wait=True)
            elif not self._persistent:
                self._discard_pool(wait=True)

    def _drain(
        self,
        pool: ProcessPoolExecutor,
        futures: Dict,
        remaining: Dict[JobKey, None],
        results: Dict[JobKey, RunResult],
        attempts: Dict[JobKey, int],
        claims: str,
    ) -> None:
        """Collect results until the batch drains (or the pool breaks).

        Transient job failures are rescheduled onto the same pool after
        their backoff delay elapses (tracked as deadlines, so waiting
        out one job's backoff never blocks the others or the watchdog).
        """
        outstanding = set(futures)
        backoff_until: Dict[JobKey, float] = {}
        while outstanding or backoff_until:
            now = time.monotonic()
            for key, ready_at in list(backoff_until.items()):
                if now >= ready_at:
                    del backoff_until[key]
                    clear_claim(claims, key.digest())
                    future = self._submit(pool, key, claims)
                    futures[future] = key
                    outstanding.add(future)
            if not outstanding:
                soonest = min(backoff_until.values())
                time.sleep(max(0.0, min(soonest - time.monotonic(),
                                        self._poll)))
                continue
            poll = (
                self._poll
                if self.timeout is not None or backoff_until
                else None
            )
            done, outstanding = wait(outstanding, timeout=poll)
            for future in done:
                key = futures.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    raise
                except TRANSIENT_EXCEPTIONS as exc:
                    attempts[key] += 1
                    self.stats.transient_retries += 1
                    self._note(
                        "retry", key=key.digest(), attempt=attempts[key],
                        error=str(exc),
                    )
                    if attempts[key] > self.retries:
                        raise ExecutionError(
                            f"{key.display} kept failing transiently "
                            f"(gave up after {attempts[key]} attempts): {exc}"
                        ) from exc
                    backoff_until[key] = (
                        time.monotonic() + self._backoff.delay(attempts[key])
                    )
                    continue
                self._absorb(key, result, results)
                del remaining[key]
            if self.timeout is not None:
                self._watchdog(futures, attempts, claims)

    def _watchdog(
        self, futures: Dict, attempts: Dict[JobKey, int], claims: str
    ) -> None:
        """Kill workers whose current item overran the wall-clock budget.

        ``timeout`` is a per-*job* budget; a packed batch gets one
        budget per member, since it legitimately does that many jobs'
        work under a single claim marker.
        """
        now = time.time()
        for future, key in list(futures.items()):
            if future.done() or key in self._forced_timeouts:
                continue
            digest = key.digest()
            claim = read_claim(claims, digest)
            if claim is None or claim_done(claims, digest):
                continue  # queued, finished, or marker unreadable
            pid, started_at = claim
            budget = self.timeout
            if isinstance(key, BatchTask):
                budget = self.timeout * len(key.jobs)
            if now - started_at <= budget:
                continue
            self._forced_timeouts.add(key)
            self.stats.timeouts += 1
            attempts[key] += 1
            self._note(
                "timeout", key=key.digest(), attempt=attempts[key],
                timeout=budget,
            )
            _kill(pid)  # breaks the pool; the break handler reschedules
            if attempts[key] > self.retries:
                raise ExecutionError(
                    f"{key.display} exceeded the {budget:g}s job "
                    f"timeout (gave up after {attempts[key]} attempts)"
                )

    def _suspects(
        self, claims: str, remaining: Dict[JobKey, None]
    ) -> List[JobKey]:
        """Jobs to charge for a pool break.

        In-flight jobs whose claiming worker pid is dead are the
        culprits. When the break was forced by the watchdog, the killed
        job was already charged, so nobody else is. Only if attribution
        fails entirely does this fall back to the whole in-flight set
        (and last, the whole batch) so a repeatedly-poisonous job can
        still exhaust its retry budget instead of looping forever.
        """
        in_flight: List[JobKey] = []
        dead: List[JobKey] = []
        for key in remaining:
            if key in self._forced_timeouts:
                continue
            digest = key.digest()
            claim = read_claim(claims, digest)
            if claim is None or claim_done(claims, digest):
                continue
            in_flight.append(key)
            if not _pid_alive(claim[0]):
                dead.append(key)
        if dead:
            return dead
        if self._forced_timeouts:
            return []
        if in_flight:
            return in_flight
        return list(remaining)

    def _penalize(
        self, suspects: Sequence[JobKey], attempts: Dict[JobKey, int]
    ) -> None:
        for key in suspects:
            attempts[key] += 1
            if attempts[key] > self.retries:
                raise ExecutionError(
                    f"worker process died repeatedly on {key.display} "
                    f"(gave up after {attempts[key]} attempts)"
                )
        self.stats.retried += len(suspects)

    def _degrade_to_serial(
        self,
        remaining: Dict[JobKey, None],
        results: Dict[JobKey, RunResult],
        attempts: Dict[JobKey, int],
    ) -> None:
        """Last resort: finish the batch inline in the main process."""
        self.stats.degraded_to_serial = True
        warnings.warn(
            f"process pool broke {self.stats.pool_breaks} times in a row; "
            f"finishing the remaining {len(remaining)} job(s) serially",
            RuntimeWarning,
            stacklevel=3,
        )
        self._note("degraded_to_serial", remaining=len(remaining))
        for item in list(remaining):
            if isinstance(item, BatchTask):
                self._absorb(
                    item, self._execute_batch_inline(item, attempts[item]),
                    results,
                )
            elif isinstance(item, ShardTask):
                outcome = self._execute_shard_inline(item, attempts[item])
                self._absorb(item, outcome, results)
            else:
                self._record(
                    item,
                    self._execute_serial(
                        item, attempts[item], allow_shards=False
                    ),
                    results,
                )
            del remaining[item]
