"""Parallel sweep executor with memoization and crash retry.

Jobs are independent (design, workload) simulations named by
:class:`JobKey`. The executor serves warm keys from a
:class:`ResultStore`, fans the cold ones out over a
``ProcessPoolExecutor`` (or runs them inline for ``jobs=1``), retries
jobs whose worker *process* died (deterministic simulation errors are
not retried — they would fail identically), and reports progress
through an optional callback.

Results are bit-identical to a serial run: every job rebuilds its trace
from the seeded generator, so neither scheduling order nor process
boundaries can perturb the outcome.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigError, ExecutionError
from repro.exec.jobs import JobKey, execute_job
from repro.exec.store import ResultStore
from repro.sim.system import RunResult

#: progress(done, total, key, source) with source in {"cached", "run"}.
ProgressFn = Callable[[int, int, JobKey, str], None]


@dataclass
class ExecutorStats:
    """What the most recent :meth:`Executor.run` call actually did."""

    executed: int = 0
    cached: int = 0
    retried: int = 0


class Executor:
    """Runs batches of jobs, warm-first, then parallel or serial."""

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        retries: int = 1,
        progress: Optional[ProgressFn] = None,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.store = store
        self.retries = retries
        self.progress = progress
        self.stats = ExecutorStats()

    def run(self, keys: Sequence[JobKey]) -> Dict[JobKey, RunResult]:
        """Resolve every key to a result; ``stats`` reflects this call."""
        self.stats = ExecutorStats()
        unique: List[JobKey] = []
        seen = set()
        for key in keys:
            if key not in seen:
                seen.add(key)
                unique.append(key)
        self._total = len(unique)
        self._done = 0

        results: Dict[JobKey, RunResult] = {}
        pending: List[JobKey] = []
        for key in unique:
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None:
                # The store ignores cosmetic labels; hand back the
                # caller's exact design object.
                results[key] = replace(cached, design=key.design)
                self.stats.cached += 1
                self._report(key, "cached")
            else:
                pending.append(key)

        if not pending:
            return results
        if self.jobs == 1 or len(pending) == 1:
            for key in pending:
                self._record(key, execute_job(key), results)
        else:
            self._run_parallel(pending, results)
        return results

    # -- internals --------------------------------------------------------

    def _record(
        self, key: JobKey, result: RunResult, results: Dict[JobKey, RunResult]
    ) -> None:
        results[key] = result
        self.stats.executed += 1
        if self.store is not None:
            self.store.put(key, result)
        self._report(key, "run")

    def _report(self, key: JobKey, source: str) -> None:
        self._done += 1
        if self.progress is not None:
            self.progress(self._done, self._total, key, source)

    def _run_parallel(
        self, pending: Sequence[JobKey], results: Dict[JobKey, RunResult]
    ) -> None:
        remaining: Dict[JobKey, int] = {key: 0 for key in pending}
        while remaining:
            try:
                workers = min(self.jobs, len(remaining))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(execute_job, key): key for key in remaining
                    }
                    for future in as_completed(futures):
                        key = futures[future]
                        # Deterministic simulation errors propagate here;
                        # a dead worker raises BrokenProcessPool instead.
                        self._record(key, future.result(), results)
                        del remaining[key]
            except BrokenProcessPool:
                for key in remaining:
                    remaining[key] += 1
                dead = [k for k, tries in remaining.items() if tries > self.retries]
                if dead:
                    raise ExecutionError(
                        f"worker process died repeatedly on {dead[0].display} "
                        f"(gave up after {self.retries + 1} attempts)"
                    ) from None
                self.stats.retried += len(remaining)
