"""Deterministic fault injection for the sweep execution stack.

A :class:`FaultPlan` describes *which* failures to inject, *where*, and
*how many times*. The executor, result store, and trace cache each call
:func:`fault_point` at well-defined sites; when no plan is active the
call is a cheap no-op (one env lookup and a string compare), so the
production path pays nothing.

Fault kinds and the sites they bind to:

=============== =============== ====================================
kind            site            effect
=============== =============== ====================================
crash           job             worker process dies (``os._exit``)
hang            job             worker sleeps ``hang_secs`` seconds
os_error        job             raises a transient ``OSError``
corrupt_result  engine.result   silently perturbs an in-memory
                                result (a wrong answer, not an error)
disk_full       store.write     ``ENOSPC`` during a result-store put
corrupt_store   store.entry     garbles the JSON just written
corrupt_payload store.entry     perturbs a counter in the JSON just
                                written (stays valid JSON — only the
                                payload digest can catch it)
disk_full_why   quarantine.why  ``ENOSPC`` during a quarantine
                                ``.why`` sidecar write
disk_full_trace trace.write     ``ENOSPC`` during a trace-cache put
truncate_trace  trace.entry     truncates the ``.npz`` just written
=============== =============== ====================================

``crash`` and ``hang`` only fire inside pool worker processes — in the
main process they would kill or stall the harness itself, which is not
the failure mode they model.

Plans are *seeded*: whether a given opportunity fires is a pure
function of ``(seed, kind, token)``, so a run is reproducible. Budgets
(``times`` per kind) are enforced either per process (default) or
globally across all worker processes through a shared *ledger*
directory (``dir=``), where each firing atomically claims a slot file.
The ledger is what keeps a chaos run convergent: a crash budget of 2
means two crashes total, not two per freshly restarted worker.

Activate a plan via the ``REPRO_FAULT_PLAN`` environment variable (the
spec is inherited by worker processes) or programmatically with
:func:`install`. Spec grammar — ``;``-separated ``key=value`` pairs::

    REPRO_FAULT_PLAN="seed=13;rate=1.0;dir=/tmp/ledger;crash=2;hang=1;os_error=2"

where each fault kind maps to its ``times`` budget and the options are
``seed`` (decision seed, default 0), ``rate`` (per-opportunity firing
probability in [0, 1], default 1.0), ``hang_secs`` (default 120) and
``dir`` (the shared ledger directory).
"""

from __future__ import annotations

import errno
import hashlib
import json
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigError

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultRule",
    "KIND_SITES",
    "SITE_ENGINE_RESULT",
    "SITE_JOB",
    "SITE_QUARANTINE_WHY",
    "SITE_STORE_ENTRY",
    "SITE_STORE_WRITE",
    "SITE_TRACE_ENTRY",
    "SITE_TRACE_WRITE",
    "active_plan",
    "fault_point",
    "install",
    "suppressed",
    "uninstall",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

SITE_JOB = "job"
SITE_ENGINE_RESULT = "engine.result"
SITE_STORE_WRITE = "store.write"
SITE_STORE_ENTRY = "store.entry"
SITE_QUARANTINE_WHY = "quarantine.why"
SITE_TRACE_WRITE = "trace.write"
SITE_TRACE_ENTRY = "trace.entry"

#: Every fault kind fires at exactly one site.
KIND_SITES = {
    "crash": SITE_JOB,
    "hang": SITE_JOB,
    "os_error": SITE_JOB,
    "corrupt_result": SITE_ENGINE_RESULT,
    "disk_full": SITE_STORE_WRITE,
    "corrupt_store": SITE_STORE_ENTRY,
    "corrupt_payload": SITE_STORE_ENTRY,
    "disk_full_why": SITE_QUARANTINE_WHY,
    "disk_full_trace": SITE_TRACE_WRITE,
    "truncate_trace": SITE_TRACE_ENTRY,
}

#: Kinds that must not fire in the main process.
WORKER_ONLY_KINDS = frozenset({"crash", "hang"})


@dataclass(frozen=True)
class FaultRule:
    """One fault kind and its total firing budget."""

    kind: str
    times: int


class FaultPlan:
    """A seeded, budgeted schedule of injected failures."""

    def __init__(
        self,
        rules: Sequence[FaultRule],
        seed: int = 0,
        rate: float = 1.0,
        hang_secs: float = 120.0,
        ledger: Optional[str] = None,
        spec: str = "",
    ):
        for rule in rules:
            if rule.kind not in KIND_SITES:
                raise ConfigError(f"unknown fault kind {rule.kind!r}")
            if rule.times < 0:
                raise ConfigError(f"fault budget must be >= 0, got {rule.times}")
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {rate}")
        if hang_secs <= 0:
            raise ConfigError(f"hang_secs must be positive, got {hang_secs}")
        self.rules = [r for r in rules if r.times > 0]
        self.seed = seed
        self.rate = rate
        self.hang_secs = hang_secs
        self.ledger = Path(ledger) if ledger else None
        self.spec = spec
        #: Per-process count of faults this plan actually enacted.
        self.fired: Dict[str, int] = {}
        self._local_claims: Dict[str, int] = {}
        if self.ledger is not None:
            try:
                self.ledger.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise ConfigError(
                    f"fault plan ledger {self.ledger} is unusable: {exc}"
                ) from exc

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the ``REPRO_FAULT_PLAN`` spec grammar."""
        rules: List[FaultRule] = []
        seed, rate, hang_secs, ledger = 0, 1.0, 120.0, None
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigError(
                    f"fault plan {spec!r}: expected key=value, got {part!r}"
                )
            name, _, value = part.partition("=")
            name, value = name.strip(), value.strip()
            try:
                if name in KIND_SITES:
                    rules.append(FaultRule(name, int(value)))
                elif name == "seed":
                    seed = int(value)
                elif name == "rate":
                    rate = float(value)
                elif name == "hang_secs":
                    hang_secs = float(value)
                elif name == "dir":
                    ledger = value
                else:
                    raise ConfigError(
                        f"fault plan {spec!r}: unknown field {name!r}"
                    )
            except ValueError as exc:
                raise ConfigError(
                    f"fault plan {spec!r}: bad value for {name!r}"
                ) from exc
        return cls(
            rules, seed=seed, rate=rate, hang_secs=hang_secs,
            ledger=ledger, spec=spec,
        )

    # -- firing decisions --------------------------------------------------

    def rules_for(self, site: str) -> List[FaultRule]:
        return [r for r in self.rules if KIND_SITES[r.kind] == site]

    def _decide(self, kind: str, token: str) -> bool:
        """Seeded coin flip: pure function of (seed, kind, token)."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{token}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64 < self.rate

    def _claim(self, rule: FaultRule) -> bool:
        """Consume one unit of the rule's budget; False when exhausted."""
        if self.ledger is not None:
            for slot in range(rule.times):
                path = self.ledger / f"{rule.kind}.{slot}"
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                except OSError:
                    return False
                os.close(fd)
                return True
            return False
        count = self._local_claims.get(rule.kind, 0)
        if count >= rule.times:
            return False
        self._local_claims[rule.kind] = count + 1
        return True

    def fire(
        self,
        site: str,
        token: str = "",
        path: Optional[str] = None,
        obj: Any = None,
    ) -> None:
        """Enact at most one matching fault for this opportunity."""
        for rule in self.rules_for(site):
            if (
                rule.kind in WORKER_ONLY_KINDS
                and multiprocessing.parent_process() is None
            ):
                continue
            if not self._decide(rule.kind, token):
                continue
            if not self._claim(rule):
                continue
            self.fired[rule.kind] = self.fired.get(rule.kind, 0) + 1
            self._enact(rule.kind, site, path, obj)
            return

    def _enact(
        self, kind: str, site: str, path: Optional[str], obj: Any = None
    ) -> None:
        if kind == "crash":
            os._exit(3)
        elif kind == "hang":
            time.sleep(self.hang_secs)
        elif kind == "os_error":
            raise OSError(
                errno.EAGAIN, f"injected transient I/O error at {site}"
            )
        elif kind in ("disk_full", "disk_full_trace", "disk_full_why"):
            raise OSError(errno.ENOSPC, f"injected disk-full at {site}")
        elif kind == "corrupt_result" and obj is not None:
            # A silently wrong answer: no exception, no torn bytes —
            # only cross-engine shadow verification can catch it.
            obj.stats.hits += 1
        elif kind == "corrupt_store" and path is not None:
            Path(path).write_text('{"injected": "corruption', encoding="utf-8")
        elif kind == "corrupt_payload" and path is not None:
            # Bit-rot that keeps the JSON valid: perturb one counter in
            # the stored record, leaving schema and key intact. Only
            # the embedded payload digest can detect this on read.
            record = json.loads(Path(path).read_text(encoding="utf-8"))
            stats = record["result"]["stats"]
            stats["hits"] = int(stats.get("hits", 0)) + 1
            Path(path).write_text(
                json.dumps(record, sort_keys=True), encoding="utf-8"
            )
        elif kind == "truncate_trace" and path is not None:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))


# -- active-plan management -----------------------------------------------

_installed: Optional[FaultPlan] = None
_env_spec: Optional[str] = None
_env_plan: Optional[FaultPlan] = None
_suppress_depth = 0


@contextmanager
def suppressed():
    """Disable fault injection inside the block (process-wide).

    Wrapped around trusted paths that must see the pristine system —
    above all the shadow-verification reference re-execution, where an
    injected fault would poison the very answer the suspect result is
    being compared against.
    """
    global _suppress_depth
    _suppress_depth += 1
    try:
        yield
    finally:
        _suppress_depth -= 1


def install(plan: Optional[FaultPlan]) -> None:
    """Activate a plan for this process, overriding the environment."""
    global _installed
    _installed = plan


def uninstall() -> None:
    """Deactivate any programmatically installed plan."""
    install(None)


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else one parsed from ``REPRO_FAULT_PLAN``.

    The parsed plan is cached per spec string, so repeated fault points
    cost one env lookup; changing the variable takes effect immediately.
    Inside a :func:`suppressed` block there is no active plan.
    """
    if _suppress_depth > 0:
        return None
    if _installed is not None:
        return _installed
    spec = os.environ.get(FAULT_PLAN_ENV)
    global _env_spec, _env_plan
    if not spec:
        _env_spec = _env_plan = None
        return None
    if spec != _env_spec:
        _env_plan = FaultPlan.parse(spec)
        _env_spec = spec
    return _env_plan


def fault_point(
    site: str,
    token: str = "",
    path: Optional[str] = None,
    obj: Any = None,
) -> None:
    """Give the active plan (if any) a chance to inject a fault here.

    ``path`` names an on-disk artifact some kinds garble in place;
    ``obj`` hands in-memory state (a just-computed result) to kinds
    that model silent corruption rather than I/O failure.
    """
    plan = active_plan()
    if plan is not None:
        plan.fire(site, token, path, obj)
