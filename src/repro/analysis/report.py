"""Report formatting: paper-ordered per-workload tables.

The paper's per-workload figures (7, 10, 13, 14) list workloads in a
fixed order from least to most associativity-sensitive, with mixes and
the geometric mean at the end; reproducing that order makes visual
comparison against the paper direct.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.sim.runner import geometric_mean
from repro.sim.system import RunResult
from repro.utils.tables import format_table

FIGURE_WORKLOAD_ORDER: List[str] = [
    "milc", "sphinx", "nekbone", "cc_web", "pr_web", "mcf", "xalanc",
    "bc_twi", "pr_twi", "cc_twi", "omnet", "wrf", "zeusmp", "gcc",
    "libq", "leslie", "soplex", "mix1", "mix2", "mix3", "mix4",
]


def ordered_workloads(results: Dict[str, RunResult]) -> List[str]:
    """Workloads present in ``results``, in the paper's figure order."""
    ordered = [w for w in FIGURE_WORKLOAD_ORDER if w in results]
    ordered.extend(sorted(w for w in results if w not in FIGURE_WORKLOAD_ORDER))
    return ordered


def per_workload_table(
    columns: Dict[str, Dict[str, float]],
    title: str,
    value_format: str = "{:.3f}",
    gmean_row: bool = True,
) -> str:
    """Render {column -> {workload -> value}} as a paper-style table.

    Columns share a workload set; the final row is the geometric mean
    (the paper's aggregate for speedups; for rates the arithmetic mean
    is usually quoted — pass ``gmean_row=False`` and append your own).
    """
    if not columns:
        raise ValueError("no columns to render")
    names = list(columns)
    workloads: List[str] = []
    seen = set()
    for per_wl in columns.values():
        for wl in per_wl:
            if wl not in seen:
                seen.add(wl)
                workloads.append(wl)
    ordered = [w for w in FIGURE_WORKLOAD_ORDER if w in seen]
    ordered.extend(w for w in workloads if w not in FIGURE_WORKLOAD_ORDER)

    rows = []
    for wl in ordered:
        rows.append(
            [wl] + [value_format.format(columns[c].get(wl, float("nan"))) for c in names]
        )
    if gmean_row:
        gmeans = []
        for c in names:
            values = [v for v in columns[c].values() if v > 0]
            gmeans.append(value_format.format(geometric_mean(values)) if values else "-")
        rows.append(["Gmean"] + gmeans)
    return format_table(["workload"] + names, rows, title=title)


def collect(
    results: Dict[str, RunResult], metric: Callable[[RunResult], float]
) -> Dict[str, float]:
    """Apply a metric to every workload's result."""
    return {wl: metric(r) for wl, r in results.items()}
