"""SRAM storage accounting for way predictors (Tables II, IX, X).

All storage is computed from geometry, so the same functions back both
the paper-scale numbers (4GB cache: MRU 4MB, partial-tag 32MB, ACCORD
320B) and the scaled experiment geometries.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.gws import DEFAULT_ENTRIES, REGION_TAG_BITS, VALID_BITS
from repro.core.steering import ways_bits
from repro.errors import PolicyError
from repro.utils.bitops import ceil_div


def mru_storage_bits(geometry: CacheGeometry) -> int:
    """Per-set MRU way pointer."""
    return geometry.num_sets * max(ways_bits(geometry.ways), 1)


def partial_tag_storage_bits(geometry: CacheGeometry, bits: int = 4) -> int:
    """Per-line partial tags."""
    return geometry.num_lines * bits


def gws_storage_bits(ways: int, entries: int = DEFAULT_ENTRIES) -> int:
    """RIT + RLT: 2 tables x entries x (valid + region tag + way)."""
    per_entry = VALID_BITS + REGION_TAG_BITS + max(ways_bits(ways), 1)
    return 2 * entries * per_entry


def predictor_storage_bytes(name: str, geometry: CacheGeometry) -> int:
    """Storage in bytes for a named predictor on a given geometry."""
    lowered = name.lower()
    if lowered in ("rand", "random", "preferred", "pws", "sws", "ca", "ca_cache"):
        return 0
    if lowered == "mru":
        return ceil_div(mru_storage_bits(geometry), 8)
    if lowered in ("partial_tag", "partial-tag", "partial"):
        return ceil_div(partial_tag_storage_bits(geometry), 8)
    if lowered in ("gws", "accord"):
        return ceil_div(gws_storage_bits(geometry.ways), 8)
    raise PolicyError(f"unknown predictor {name!r}")


def accord_storage_bytes(ways: int = 2, entries: int = DEFAULT_ENTRIES) -> int:
    """Total ACCORD overhead (Table IX): PWS 0 + GWS tables + SWS 0."""
    return ceil_div(gws_storage_bits(ways, entries), 8)


def storage_table(geometry: CacheGeometry):
    """Rows of (component, bytes) reproducing Table IX."""
    return [
        ("Probabilistic Way-Steering", 0),
        ("Ganged Way-Steering", accord_storage_bytes(geometry.ways)),
        ("Skewed Way-Steering", 0),
        ("ACCORD", accord_storage_bytes(geometry.ways)),
    ]
