"""Analytic models, storage accounting, energy model, report helpers."""

from repro.analysis.analytic import (
    LookupCost,
    cyclic_pws_hit_rate,
    lookup_cost_table,
)
from repro.analysis.storage import (
    accord_storage_bytes,
    predictor_storage_bytes,
    storage_table,
)
from repro.analysis.energy import EnergyModel, EnergyReport
from repro.analysis.report import FIGURE_WORKLOAD_ORDER, per_workload_table

__all__ = [
    "LookupCost",
    "lookup_cost_table",
    "cyclic_pws_hit_rate",
    "predictor_storage_bytes",
    "accord_storage_bytes",
    "storage_table",
    "EnergyModel",
    "EnergyReport",
    "FIGURE_WORKLOAD_ORDER",
    "per_workload_table",
]
