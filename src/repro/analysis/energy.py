"""Off-chip memory-system energy model (Figure 15).

Event energies follow the usual stacked-DRAM / PCM modelling the paper
cites ([6], [36], [37]): stacked-DRAM access energy is charged per 72B
transfer plus a per-activation cost; NVM reads cost a few times a DRAM
access and NVM writes an order of magnitude more; both devices burn
static power for the whole runtime. Absolute joules are model
constants — Figure 15 is a *relative* comparison, which is what the
reproduction asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.stats import CacheStats


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (nanojoules) and static power (watts)."""

    dram_transfer_nj: float = 2.4  # one 72B tag+data unit on the HBM bus
    dram_activate_nj: float = 1.2  # row activation (first probe of a read)
    nvm_read_nj: float = 6.0  # one 64B line read from PCM
    nvm_write_nj: float = 24.0  # one 64B line written to PCM
    dram_static_w: float = 1.8
    nvm_static_w: float = 2.5


@dataclass(frozen=True)
class EnergyReport:
    """Energy outcome of one run."""

    dynamic_dram_nj: float
    dynamic_nvm_nj: float
    static_nj: float
    runtime_ns: float

    @property
    def total_nj(self) -> float:
        return self.dynamic_dram_nj + self.dynamic_nvm_nj + self.static_nj

    @property
    def power_w(self) -> float:
        """Average power in watts (nJ / ns == W)."""
        return self.total_nj / self.runtime_ns

    @property
    def edp(self) -> float:
        """Energy-delay product (nJ * ns)."""
        return self.total_nj * self.runtime_ns

    def relative_to(self, baseline: "EnergyReport") -> dict:
        """Normalized power/energy/EDP, as Figure 15 plots them."""
        return {
            "power": self.power_w / baseline.power_w,
            "energy": self.total_nj / baseline.total_nj,
            "edp": self.edp / baseline.edp,
            "speedup": baseline.runtime_ns / self.runtime_ns,
        }


class EnergyModel:
    """Turns cache counters + runtime into an :class:`EnergyReport`."""

    def __init__(self, params: EnergyParams = EnergyParams(), num_cores: int = 16):
        if num_cores <= 0:
            raise SimulationError("need at least one core")
        self.params = params
        self.num_cores = num_cores

    def evaluate(self, stats: CacheStats, runtime_ns: float) -> EnergyReport:
        if runtime_ns <= 0:
            raise SimulationError("runtime must be positive")
        p = self.params
        cores = self.num_cores
        dram = cores * (
            stats.total_cache_transfers * p.dram_transfer_nj
            + stats.first_probes * p.dram_activate_nj
        )
        nvm = cores * (
            stats.nvm_reads * p.nvm_read_nj + stats.nvm_writes * p.nvm_write_nj
        )
        static = (p.dram_static_w + p.nvm_static_w) * runtime_ns
        return EnergyReport(
            dynamic_dram_nj=dram,
            dynamic_nvm_nj=nvm,
            static_nj=static,
            runtime_ns=runtime_ns,
        )
