"""Closed-form / exact-probabilistic models from the paper.

* :func:`lookup_cost_table` — Table I: accesses and transfers per hit
  and per miss for each lookup organization.
* :func:`cyclic_pws_hit_rate` — the cyclic-reference model of Section
  IV-B.1 (Figure 6): exact hit-rate of the (a,b)^N kernel on a 2-way
  cache under PWS with a given PIP, computed by dynamic programming
  over the Markov chain of line placements (no sampling noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import PolicyError


@dataclass(frozen=True)
class LookupCost:
    """Expected lookup costs for one cache organization (Table I)."""

    organization: str
    hit_accesses: float
    hit_transfers: float
    miss_accesses: float
    miss_transfers: float


def lookup_cost_table(ways: int) -> List[LookupCost]:
    """Reproduce Table I for an N-way cache.

    Serial lookup's expected hit cost assumes the line is equally likely
    in each way: (N+1)/2 — the paper rounds this to N/2.
    """
    if ways < 1:
        raise PolicyError("ways must be >= 1")
    n = float(ways)
    return [
        LookupCost("Direct-mapped", 1, 1, 1, 1),
        LookupCost(f"Parallel Lookup ({ways}-way)", 1, n, 1, n),
        LookupCost(f"Serial Lookup ({ways}-way)", (n + 1) / 2, (n + 1) / 2, n, n),
        LookupCost(f"Way Predicted ({ways}-way)", 1, 1, n, n),
        LookupCost(f"Way Predicted SWS({ways},2)", 1, 1, 2, 2),
    ]


# --- Cyclic reference model --------------------------------------------------

# State: (loc_a, loc_b) where loc in {-1 (absent), 0, 1}; both lines can
# never share a way.
_State = Tuple[int, int]


def _install(dist: Dict[_State, float], which: int, pip: float) -> Dict[_State, float]:
    """Install line ``which`` (0 = a, 1 = b) into the preferred way 0
    with probability ``pip`` else way 1, evicting any occupant."""
    out: Dict[_State, float] = {}
    for (loc_a, loc_b), prob in dist.items():
        locs = [loc_a, loc_b]
        if locs[which] != -1:
            out[(loc_a, loc_b)] = out.get((loc_a, loc_b), 0.0) + prob
            continue
        for way, way_prob in ((0, pip), (1, 1.0 - pip)):
            if way_prob <= 0.0:
                continue
            new = list(locs)
            other = 1 - which
            if new[other] == way:
                new[other] = -1  # evicted
            new[which] = way
            key = (new[0], new[1])
            out[key] = out.get(key, 0.0) + prob * way_prob
    return out


def cyclic_pws_hit_rate(pip: float, iterations: int) -> float:
    """Exact expected hit-rate of (a,b)^N on a 2-way PWS cache.

    Both lines prefer way 0 (the conflicting-pair case the paper
    analyzes). PIP=1.0 degenerates to a direct-mapped cache (0% hits);
    PIP=0.5 is unbiased random install.
    """
    if not 0.0 <= pip <= 1.0:
        raise PolicyError(f"PIP must be in [0, 1], got {pip}")
    if iterations < 1:
        raise PolicyError("iterations must be >= 1")

    dist: Dict[_State, float] = {(-1, -1): 1.0}
    expected_hits = 0.0
    for _ in range(iterations):
        for which in (0, 1):
            hit_prob = sum(
                prob
                for (loc_a, loc_b), prob in dist.items()
                if (loc_a if which == 0 else loc_b) != -1
            )
            expected_hits += hit_prob
            dist = _install(dist, which, pip)
    return expected_hits / (2.0 * iterations)


def cyclic_direct_mapped_hit_rate(iterations: int) -> float:
    """The kernel on a direct-mapped cache always thrashes: 0%."""
    if iterations < 1:
        raise PolicyError("iterations must be >= 1")
    return 0.0
