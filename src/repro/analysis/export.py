"""CSV export of experiment data.

Each per-workload experiment produces series keyed by workload; this
module writes them in a tidy (long) CSV layout —
``workload,series,value`` — that any plotting tool ingests directly, so
the paper's bar charts can be regenerated outside this repo.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Optional

from repro.analysis.report import FIGURE_WORKLOAD_ORDER
from repro.errors import SimulationError


def series_to_csv(
    columns: Dict[str, Dict[str, float]],
    value_name: str = "value",
) -> str:
    """Render {series -> {workload -> value}} as tidy CSV text."""
    if not columns:
        raise SimulationError("no series to export")
    workloads = []
    seen = set()
    for per_wl in columns.values():
        for workload in per_wl:
            if workload not in seen:
                seen.add(workload)
                workloads.append(workload)
    ordered = [w for w in FIGURE_WORKLOAD_ORDER if w in seen]
    ordered.extend(w for w in workloads if w not in FIGURE_WORKLOAD_ORDER)

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["workload", "series", value_name])
    for workload in ordered:
        for series, per_wl in columns.items():
            if workload in per_wl:
                writer.writerow([workload, series, repr(per_wl[workload])])
    return buffer.getvalue()


def save_series_csv(
    columns: Dict[str, Dict[str, float]],
    path: str,
    value_name: str = "value",
) -> None:
    """Write :func:`series_to_csv` output to a file."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(series_to_csv(columns, value_name))


def load_series_csv(path: str) -> Dict[str, Dict[str, float]]:
    """Inverse of :func:`save_series_csv`."""
    columns: Dict[str, Dict[str, float]] = {}
    with open(path, "r", encoding="ascii") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header or header[0] != "workload" or header[1] != "series":
            raise SimulationError(f"{path}: not a repro series CSV")
        for row in reader:
            if len(row) != 3:
                raise SimulationError(f"{path}: malformed row {row!r}")
            workload, series, value = row
            columns.setdefault(series, {})[workload] = float(value)
    return columns


def runs_to_csv(
    results: Dict[str, "RunResult"],  # noqa: F821 - documented duck type
    metrics: Optional[Dict[str, str]] = None,
) -> str:
    """Export RunResults as CSV: one row per workload, one column per
    metric. ``metrics`` maps column name -> a key path into
    :meth:`RunResult.to_dict` (supports ``stats.<field>`` and
    ``timing.<field>`` plus the derived top-level values)."""
    if not results:
        raise SimulationError("no results to export")
    metrics = metrics or {
        "hit_rate": "hit_rate",
        "prediction_accuracy": "prediction_accuracy",
        "runtime_ns": "runtime_ns",
        "nvm_reads": "stats.nvm_reads",
        "dram_utilization": "timing.dram_utilization",
    }

    def resolve(record, path: str):
        value = record
        for part in path.split("."):
            try:
                value = value[part]
            except (KeyError, TypeError):
                raise SimulationError(f"unknown metric path {path!r}") from None
        return value

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["workload"] + list(metrics))
    for workload in sorted(results):
        record = results[workload].to_dict()
        row = [workload]
        for path in metrics.values():
            row.append(repr(resolve(record, path)))
        writer.writerow(row)
    return buffer.getvalue()


# Columns of the phase-resolved CSV, in order. Raw counters come first,
# then the derived per-epoch rates.
PHASE_CSV_COLUMNS = (
    "series", "workload", "epoch_index", "start_access", "accesses",
    "hits", "predicted_hits", "correct_predictions",
    "nvm_reads", "nvm_writes", "writebacks",
    "hit_rate", "prediction_accuracy",
)


def phases_to_csv(columns: Dict[str, Dict[str, "RunResult"]]) -> str:  # noqa: F821
    """Render phase-resolved runs as tidy CSV, one row per epoch.

    ``columns`` maps series label (usually a design name) -> workload ->
    :class:`~repro.sim.system.RunResult`. Runs without recorded phases
    (``--epoch-metrics`` off, or the CA-cache baseline) are skipped; if
    *no* run carries phases the export fails loudly rather than writing
    an empty file.
    """
    if not columns:
        raise SimulationError("no series to export")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(PHASE_CSV_COLUMNS)
    rows = 0
    for series, per_workload in columns.items():
        for workload, result in per_workload.items():
            phases = getattr(result, "phases", None)
            if phases is None:
                continue
            for sample in phases:
                writer.writerow([
                    series, workload, sample.index, sample.start_access,
                    sample.accesses, sample.hits, sample.predicted_hits,
                    sample.correct_predictions, sample.nvm_reads,
                    sample.nvm_writes, sample.writebacks,
                    repr(sample.hit_rate), repr(sample.prediction_accuracy),
                ])
                rows += 1
    if not rows:
        raise SimulationError(
            "no phase-resolved results to export (run with --epoch-metrics)"
        )
    return buffer.getvalue()


def save_phases_csv(
    columns: Dict[str, Dict[str, "RunResult"]], path: str  # noqa: F821
) -> None:
    """Write :func:`phases_to_csv` output to a file.

    Renders before opening so a failed export never truncates ``path``.
    """
    text = phases_to_csv(columns)
    with open(path, "w", encoding="ascii") as handle:
        handle.write(text)
