"""Cross-validation between the timing engines.

The interval model drives every experiment; these utilities check its
latency and queueing assumptions against the cycle-level engines on
small traces, and are exercised by tests (`tests/test_validation.py`)
so a regression in either engine's assumptions fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.geometry import CacheGeometry
from repro.core.accord import AccordDesign, make_design
from repro.errors import SimulationError
from repro.params.system import SystemConfig
from repro.sim.detailed import DetailedEngine
from repro.sim.scheduled import ScheduledEngine
from repro.sim.timing_model import IntervalTimingModel


@dataclass(frozen=True)
class ValidationReport:
    """Comparison of one quantity across engines."""

    quantity: str
    interval_value: float
    detailed_value: float

    @property
    def ratio(self) -> float:
        if self.detailed_value == 0:
            raise SimulationError("detailed value is zero; ratio undefined")
        return self.interval_value / self.detailed_value

    def within(self, factor: float) -> bool:
        """True if the two engines agree within a multiplicative factor."""
        return 1.0 / factor <= self.ratio <= factor


def validate_hit_latency(
    config: SystemConfig, num_lines: int = 256
) -> ValidationReport:
    """Compare the unloaded hit latency of the two engines.

    Fills a direct-mapped cache, then measures re-read latency in the
    detailed engine at low load and compares it against the interval
    model's hit-path components (first probe + transfer).
    """
    from repro.sim.trace import trace_from_arrays

    geometry = CacheGeometry(config.dram_cache.capacity_bytes, 1)
    cache = make_design(AccordDesign(kind="direct", ways=1), geometry)
    engine = DetailedEngine(config, cache)
    addrs = [i * 64 for i in range(num_lines)]
    engine.replay(trace_from_arrays("fill", addrs, [0] * num_lines, 40.0))

    measure_engine = DetailedEngine(config, cache)
    result = measure_engine.replay(
        trace_from_arrays("measure", addrs, [0] * num_lines, 40.0),
        issue_interval_ns=500.0,
    )

    model = IntervalTimingModel(config)
    interval_hit = model.first_probe_ns + model.dram_service_ns
    return ValidationReport("hit_latency_ns", interval_hit, result.avg_read_latency_ns)


def validate_queueing_growth(
    config: SystemConfig, requests: int = 2000
) -> List[ValidationReport]:
    """Check that FR-FCFS latency grows with offered load the way the
    interval model's utilization term predicts (directionally).

    Returns reports at low/medium/high load; callers assert that the
    detailed latencies are monotonically increasing and that the
    interval queueing term is too.
    """
    model = IntervalTimingModel(config)
    reports = []
    sets = [((i * 37) % 4096) * 8 for i in range(requests)]
    for label, interval_ns in (("low", 50.0), ("mid", 8.0), ("high", 2.5)):
        engine = ScheduledEngine(config)
        result = engine.replay_sets(list(sets), arrival_interval_ns=interval_ns)
        offered = TRANSFER_BYTES_PER_REQ / interval_ns  # bytes per ns
        rho = min(
            offered / model.config.dram_bus.sustainable_bandwidth_gbps, 0.98
        )
        q_model = model.dram_service_ns * rho / (1.0 - rho)
        reports.append(
            ValidationReport(f"queue_{label}", q_model, result.avg_latency_ns)
        )
    return reports


TRANSFER_BYTES_PER_REQ = 72
