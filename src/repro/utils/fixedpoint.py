"""Fixed-point solving used by the interval timing model.

The runtime of a workload depends on bus queueing delays, which depend
on bus utilization, which depends on the runtime. The interval model
therefore solves ``T = f(T)``.

``f`` is monotonically non-increasing in ``T`` (longer runtime → lower
utilization → less queueing → shorter predicted runtime), so
``g(T) = f(T) - T`` is strictly decreasing and has a unique root, which
bisection finds robustly even near bus saturation where damped
iteration oscillates.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError


def solve_fixed_point(
    func: Callable[[float], float],
    initial: float,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Solve ``x = func(x)`` for positive ``x`` by bracketing + bisection."""
    if initial <= 0.0:
        raise SimulationError(f"initial guess must be positive, got {initial}")

    lo = initial
    # Ensure g(lo) >= 0, i.e. func(lo) >= lo; shrink lo until it brackets.
    for _ in range(200):
        if func(lo) >= lo:
            break
        lo /= 2.0
    else:
        raise SimulationError("could not bracket the fixed point from below")

    hi = max(lo * 2.0, initial)
    for _ in range(200):
        if func(hi) <= hi:
            break
        hi *= 2.0
    else:
        raise SimulationError("could not bracket the fixed point from above")

    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        value = func(mid)
        if value <= 0.0:
            raise SimulationError(
                f"fixed-point function returned non-positive value {value}"
            )
        if abs(value - mid) <= tolerance * max(1.0, mid):
            return mid
        if value > mid:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tolerance * max(1.0, hi):
            return 0.5 * (lo + hi)
    return 0.5 * (lo + hi)
