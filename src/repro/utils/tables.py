"""Plain-text table rendering for experiment reports.

The experiment harness prints results in the same row/column layout as
the paper's tables so paper-vs-measured comparison is a visual diff.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table.

    ``rows`` may contain any mix of strings and numbers; floats are
    rendered with three decimals.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_percent(value: float, digits: int = 1) -> str:
    """Format a ratio in [0, 1] as a percentage string like '74.2%'."""
    return f"{100.0 * value:.{digits}f}%"


def format_speedup(value: float, digits: int = 3) -> str:
    """Format a speedup ratio like '1.073'."""
    return f"{value:.{digits}f}"
