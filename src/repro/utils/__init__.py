"""Shared low-level utilities: bit manipulation, deterministic RNG, tables.

These helpers are intentionally dependency-free (except numpy) so every
other subpackage can use them without import cycles.
"""

from repro.utils.bitops import (
    bit_field,
    ceil_div,
    ilog2,
    is_pow2,
    mask,
    popcount,
)
from repro.utils.rng import XorShift64
from repro.utils.tables import format_table
from repro.utils.fixedpoint import solve_fixed_point
from repro.utils.charts import bar_chart, histogram, sparkline

__all__ = [
    "bit_field",
    "ceil_div",
    "ilog2",
    "is_pow2",
    "mask",
    "popcount",
    "XorShift64",
    "format_table",
    "solve_fixed_point",
    "bar_chart",
    "histogram",
    "sparkline",
]
