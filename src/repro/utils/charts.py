"""ASCII bar charts for per-workload figures.

The paper's per-workload results are bar charts (Figures 7, 10, 12,
13, 14); rendering them as horizontal ASCII bars makes experiment
output directly comparable by eye without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

_BAR = "#"
_DEFAULT_WIDTH = 50


def bar_chart(
    values: Dict[str, float],
    title: Optional[str] = None,
    width: int = _DEFAULT_WIDTH,
    baseline: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """Render labeled values as horizontal bars.

    If ``baseline`` is given (e.g. 1.0 for speedups), bars grow from
    the baseline: values above it render as ``#`` bars to the right of
    a ``|`` pivot, values below as ``-`` bars to the left — mirroring
    how the paper's speedup charts read around 1.0.
    """
    if not values:
        raise ValueError("no values to chart")
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")

    label_width = max(len(label) for label in values)
    lines = []
    if title:
        lines.append(title)

    if baseline is None:
        maximum = max(values.values())
        if maximum <= 0:
            raise ValueError("bar chart needs at least one positive value")
        for label, value in values.items():
            bar = _BAR * max(int(round(width * value / maximum)), 0)
            lines.append(f"{label.ljust(label_width)} |{bar} {fmt.format(value)}")
        return "\n".join(lines)

    # Diverging mode around the baseline.
    half = width // 2
    spread = max(abs(v - baseline) for v in values.values()) or 1.0
    for label, value in values.items():
        delta = value - baseline
        length = min(int(round(half * abs(delta) / spread)), half)
        if delta >= 0:
            left = " " * half
            right = _BAR * length
        else:
            left = (" " * (half - length)) + "-" * length
            right = ""
        lines.append(
            f"{label.ljust(label_width)} {left}|{right.ljust(half)} {fmt.format(value)}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend glyph string (used in sweep summaries)."""
    if not values:
        raise ValueError("no values")
    glyphs = " .:-=+*#%@"
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return glyphs[len(glyphs) // 2] * len(values)
    out = []
    for value in values:
        index = int((value - lo) / (hi - lo) * (len(glyphs) - 1))
        out.append(glyphs[index])
    return "".join(out)


def histogram(
    samples: Iterable[float],
    bins: int = 10,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Bucket samples into equal-width bins and render bar counts."""
    data = list(samples)
    if not data:
        raise ValueError("no samples")
    if bins < 1:
        raise ValueError("need at least one bin")
    lo = min(data)
    hi = max(data)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for sample in data:
        index = min(int((sample - lo) / span * bins), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        low_edge = lo + span * i / bins
        high_edge = lo + span * (i + 1) / bins
        bar = _BAR * int(round(width * count / peak)) if peak else ""
        lines.append(f"[{low_edge:10.2f}, {high_edge:10.2f}) |{bar} {count}")
    return "\n".join(lines)
