"""Deterministic pseudo-random number generation.

The simulator needs randomness in three places: the random replacement
policy, the PWS install coin flip, and workload generation. All of them
use :class:`XorShift64` so results are reproducible across runs and
platforms, and independent streams can be derived from a single
experiment seed.

xorshift64* is used rather than :mod:`random` because it is cheap, has a
tiny state we can snapshot, and its determinism does not depend on the
stdlib's Mersenne Twister implementation details.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_MULT = 0x2545F4914F6CDD1D


class XorShift64:
    """A small, fast, deterministic PRNG (xorshift64* variant)."""

    __slots__ = ("_state",)

    def __init__(self, seed: int = 1):
        # A zero state would make xorshift degenerate to all zeros.
        self._state = (seed & _MASK64) or 0x9E3779B97F4A7C15

    def fork(self, stream_id: int) -> "XorShift64":
        """Derive an independent generator for a named sub-stream.

        Mixing the stream id through one xorshift step decorrelates the
        child from the parent even for small consecutive ids.
        """
        mixed = (self._state ^ ((stream_id + 1) * 0xBF58476D1CE4E5B9)) & _MASK64
        child = XorShift64(mixed)
        child.next_u64()
        return child

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned pseudo-random integer."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * _MULT) & _MASK64

    def next_float(self) -> float:
        """Return a float uniformly distributed in [0, 1)."""
        return self.next_u64() / float(1 << 64)

    def next_below(self, bound: int) -> int:
        """Return an integer uniformly distributed in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound

    def next_bool(self, probability: float) -> bool:
        """Return True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self.next_float() < probability

    def choice(self, items):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.next_below(len(items))]

    def getstate(self) -> int:
        """Return the internal 64-bit state (for snapshot/restore)."""
        return self._state

    def setstate(self, state: int) -> None:
        """Restore a state previously returned by :meth:`getstate`."""
        self._state = (state & _MASK64) or 0x9E3779B97F4A7C15


def mix64(value: int) -> int:
    """A stateless 64-bit finalizer (splitmix64) for hashing integers.

    Used where a policy needs a deterministic pseudo-random function of
    an address (e.g. workload generators spreading pages over memory).
    """
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)
