"""Deterministic pseudo-random number generation.

The simulator needs randomness in three places: the random replacement
policy, the PWS install coin flip, and workload generation. All of them
use :class:`XorShift64` so results are reproducible across runs and
platforms, and independent streams can be derived from a single
experiment seed.

xorshift64* is used rather than :mod:`random` because it is cheap, has a
tiny state we can snapshot, and its determinism does not depend on the
stdlib's Mersenne Twister implementation details.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_MULT = 0x2545F4914F6CDD1D


class XorShift64:
    """A small, fast, deterministic PRNG (xorshift64* variant)."""

    __slots__ = ("_state",)

    def __init__(self, seed: int = 1):
        # A zero state would make xorshift degenerate to all zeros.
        self._state = (seed & _MASK64) or 0x9E3779B97F4A7C15

    def fork(self, stream_id: int) -> "XorShift64":
        """Derive an independent generator for a named sub-stream.

        Mixing the stream id through one xorshift step decorrelates the
        child from the parent even for small consecutive ids.
        """
        mixed = (self._state ^ ((stream_id + 1) * 0xBF58476D1CE4E5B9)) & _MASK64
        child = XorShift64(mixed)
        child.next_u64()
        return child

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned pseudo-random integer."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * _MULT) & _MASK64

    def next_float(self) -> float:
        """Return a float uniformly distributed in [0, 1)."""
        return self.next_u64() / float(1 << 64)

    def next_below(self, bound: int) -> int:
        """Return an integer uniformly distributed in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound

    def next_bool(self, probability: float) -> bool:
        """Return True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self.next_float() < probability

    def choice(self, items):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.next_below(len(items))]

    def getstate(self) -> int:
        """Return the internal 64-bit state (for snapshot/restore)."""
        return self._state

    def setstate(self, state: int) -> None:
        """Restore a state previously returned by :meth:`getstate`."""
        self._state = (state & _MASK64) or 0x9E3779B97F4A7C15


class SetLocalRng:
    """Deterministic per-set random streams.

    Policies that draw randomness per cache set (random victim picks,
    the PWS install coin) must produce the same values for set *s*
    regardless of how accesses to *other* sets interleave with it —
    otherwise splitting a run into set shards changes the outcome. A
    single sequential :class:`XorShift64` stream breaks that: every
    draw advances one global state, so removing another set's accesses
    shifts every subsequent value.

    Here each set gets its own splitmix64 stream: the per-set seed is
    ``mix64(base ^ s * K)`` and the *n*-th draw is ``mix64(seed + n)``
    — a pure function of ``(base_seed, s, n)``, counter-based and
    interleaving-invariant. The only mutable state is a per-set
    ``[seed, counter]`` pair.
    """

    __slots__ = ("_base", "_streams")

    _STREAM_MULT = 0xBF58476D1CE4E5B9

    def __init__(self, seed: int = 1):
        self._base = mix64((seed & _MASK64) or 0x9E3779B97F4A7C15)
        self._streams: dict = {}

    @classmethod
    def from_stream(cls, rng: "XorShift64") -> "SetLocalRng":
        """Derive a set-local generator seeded from a sequential one.

        Keeps policy constructors backwards compatible: callers keep
        passing an :class:`XorShift64` and the set-local base seed is
        read from its state without consuming any draws.
        """
        return cls(rng.getstate())

    def next_u64(self, set_index: int) -> int:
        """Return the next 64-bit value of ``set_index``'s stream."""
        stream = self._streams.get(set_index)
        if stream is None:
            stream = [
                mix64(self._base ^ (set_index * self._STREAM_MULT & _MASK64)), 0
            ]
            self._streams[set_index] = stream
        count = stream[1]
        stream[1] = count + 1
        return mix64(stream[0] + count)

    def next_float(self, set_index: int) -> float:
        """Return the stream's next float uniform in [0, 1)."""
        return self.next_u64(set_index) / float(1 << 64)

    def next_below(self, set_index: int, bound: int) -> int:
        """Return the stream's next integer uniform in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64(set_index) % bound

    def next_bool(self, set_index: int, probability: float) -> bool:
        """Return True with the given probability for this stream."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self.next_float(set_index) < probability


def mix64(value: int) -> int:
    """A stateless 64-bit finalizer (splitmix64) for hashing integers.

    Used where a policy needs a deterministic pseudo-random function of
    an address (e.g. workload generators spreading pages over memory).
    """
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


# -- vectorized counterparts (numpy) ----------------------------------------
#
# The vector simulation engine (repro.sim.engines.vector) replays the
# per-set counter-based streams of SetLocalRng as whole-array numpy
# operations. These helpers are the array forms of mix64 / the stream
# seeding / the draw formula above; the scalar and vectorized paths are
# asserted bit-identical by the test suite. All arithmetic is uint64
# with silent wraparound (numpy's native behavior), matching the
# ``& _MASK64`` masking of the scalar code.


def mix64_array(values):
    """Vectorized :func:`mix64` over a uint64 numpy array."""
    import numpy as np

    z = (values + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def set_stream_seeds(base: int, set_indices):
    """Vectorized per-set stream seeds of :class:`SetLocalRng`.

    ``base`` is the generator's ``_base``; ``set_indices`` is an integer
    numpy array. Element *i* equals the scalar
    ``mix64(base ^ (set_indices[i] * _STREAM_MULT & MASK64))``.
    """
    import numpy as np

    sets = set_indices.astype(np.uint64, copy=False)
    mixed = np.uint64(base) ^ (sets * np.uint64(SetLocalRng._STREAM_MULT))
    return mix64_array(mixed)


def stream_draws(seeds, counts):
    """Vectorized *n*-th draw of per-set streams: ``mix64(seed + n)``.

    ``seeds`` are per-element stream seeds (:func:`set_stream_seeds`);
    ``counts`` the 0-based draw ordinals. Returns the same uint64 values
    :meth:`SetLocalRng.next_u64` would produce on its ``counts[i]``-th
    call for that set.
    """
    import numpy as np

    return mix64_array(seeds + counts.astype(np.uint64, copy=False))
