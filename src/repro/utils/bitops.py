"""Bit-level helpers used by address mapping and policy hashing.

All functions operate on arbitrary-precision Python integers, which lets
the cache geometry code handle byte addresses for gigascale memories
without overflow concerns.
"""

from __future__ import annotations

from repro.errors import GeometryError


def is_pow2(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Return log2 of a power-of-two integer.

    Raises :class:`GeometryError` for values that are not powers of two,
    because every caller in this library requires exact bit widths.
    """
    if not is_pow2(value):
        raise GeometryError(f"expected a power of two, got {value!r}")
    return value.bit_length() - 1


def mask(width: int) -> int:
    """Return an integer with the low ``width`` bits set."""
    if width < 0:
        raise GeometryError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_field(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``."""
    if low < 0:
        raise GeometryError(f"bit offset must be non-negative, got {low}")
    return (value >> low) & mask(width)


def popcount(value: int) -> int:
    """Return the number of set bits in ``value``."""
    if value < 0:
        raise GeometryError("popcount is defined for non-negative values")
    return bin(value).count("1")


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer division rounding up."""
    if denominator <= 0:
        raise GeometryError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)
