"""Tag-store backing for the functional cache models.

A numpy-backed (sets x ways) array keeps tags, valid and dirty bits.
For gigascale unscaled geometries this would be several hundred MB of
host memory, so the store also supports a sparse dict mode that only
materializes touched sets; the dense mode is the default for the scaled
experiment geometries.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.errors import GeometryError

_INVALID = -1
_DENSE_LIMIT_LINES = 64 * 1024 * 1024  # above this, switch to sparse storage

# Tag used by prefill_junk(): far above any tag a real (<=2^52-byte)
# address space can produce, so it never matches a lookup.
JUNK_TAG = 1 << 60


class _JunkDefaultDict(dict):
    """Sparse backing store whose unmaterialized sets read as junk-filled."""

    def __init__(self, ways: int):
        super().__init__()
        self._ways = ways

    def __missing__(self, set_index):
        entry = [[JUNK_TAG, 0] for _ in range(self._ways)]
        self[set_index] = entry
        return entry


class TagStore:
    """Valid/dirty/tag state for every (set, way) slot."""

    def __init__(self, geometry: CacheGeometry, dense: Optional[bool] = None):
        self.geometry = geometry
        if dense is None:
            dense = geometry.num_lines <= _DENSE_LIMIT_LINES
        self.dense = dense
        if dense:
            self._tags = np.full((geometry.num_sets, geometry.ways), _INVALID, dtype=np.int64)
            self._dirty = np.zeros((geometry.num_sets, geometry.ways), dtype=bool)
            self._sparse: Optional[Dict[int, List[List[int]]]] = None
        else:
            self._tags = None
            self._dirty = None
            self._sparse = {}
        self.valid_lines = 0

    # -- set access -------------------------------------------------------

    def _sparse_set(self, set_index: int) -> List[List[int]]:
        if isinstance(self._sparse, _JunkDefaultDict):
            return self._sparse[set_index]
        entry = self._sparse.get(set_index)
        if entry is None:
            entry = [[_INVALID, 0] for _ in range(self.geometry.ways)]
            self._sparse[set_index] = entry
        return entry

    def tag_at(self, set_index: int, way: int) -> int:
        """Tag stored in a slot, or -1 if invalid."""
        if self.dense:
            return int(self._tags[set_index, way])
        return self._sparse_set(set_index)[way][0]

    def is_valid(self, set_index: int, way: int) -> bool:
        return self.tag_at(set_index, way) != _INVALID

    def is_dirty(self, set_index: int, way: int) -> bool:
        if self.dense:
            return bool(self._dirty[set_index, way])
        return bool(self._sparse_set(set_index)[way][1])

    def set_dirty(self, set_index: int, way: int, dirty: bool = True) -> None:
        if self.dense:
            self._dirty[set_index, way] = dirty
        else:
            self._sparse_set(set_index)[way][1] = 1 if dirty else 0

    # -- lookup -----------------------------------------------------------

    def find_way(self, set_index: int, tag: int) -> Optional[int]:
        """Way holding ``tag`` in this set, or None."""
        if self.dense:
            row = self._tags[set_index]
            for way in range(self.geometry.ways):
                if row[way] == tag:
                    return way
            return None
        entry = self._sparse.get(set_index)
        if entry is None:
            return None
        for way, (stored, _dirty) in enumerate(entry):
            if stored == tag:
                return way
        return None

    def find_way_among(self, set_index: int, tag: int, ways) -> Optional[int]:
        """Like :meth:`find_way` but restricted to candidate ways."""
        for way in ways:
            if self.tag_at(set_index, way) == tag:
                return way
        return None

    def invalid_ways(self, set_index: int) -> List[int]:
        """Ways of a set that currently hold no line."""
        return [
            way
            for way in range(self.geometry.ways)
            if self.tag_at(set_index, way) == _INVALID
        ]

    # -- mutation ---------------------------------------------------------

    def install(self, set_index: int, way: int, tag: int, dirty: bool = False) -> None:
        """Place ``tag`` into a slot, overwriting whatever was there."""
        if tag < 0:
            raise GeometryError(f"tags must be non-negative, got {tag}")
        if not self.is_valid(set_index, way):
            self.valid_lines += 1
        if self.dense:
            self._tags[set_index, way] = tag
            self._dirty[set_index, way] = dirty
        else:
            slot = self._sparse_set(set_index)[way]
            slot[0] = tag
            slot[1] = 1 if dirty else 0

    def invalidate(self, set_index: int, way: int) -> None:
        if self.is_valid(set_index, way):
            self.valid_lines -= 1
        if self.dense:
            self._tags[set_index, way] = _INVALID
            self._dirty[set_index, way] = False
        else:
            slot = self._sparse_set(set_index)[way]
            slot[0] = _INVALID
            slot[1] = 0

    def occupancy(self) -> float:
        """Fraction of slots holding a valid line."""
        return self.valid_lines / self.geometry.num_lines

    def prefill_junk(self) -> None:
        """Mark every slot valid with a never-matching tag.

        Models the warm state of a long-running DRAM cache: a gigascale
        cache is effectively always full, so replacement decisions start
        from "evict something" rather than "use an empty way". Junk
        lines are clean and never hit, so they only influence victim
        selection.
        """
        if self.dense:
            self._tags[:, :] = JUNK_TAG
            self._dirty[:, :] = False
            self._sparse = None
        else:
            self._sparse = _JunkDefaultDict(self.geometry.ways)
        self.valid_lines = self.geometry.num_lines
