"""Tag-store backing for the functional cache models.

The dense mode backs tags with a flat Python ``list`` and dirty bits
with a ``bytearray``, indexed as ``set_index * ways + way``. An earlier
revision used a numpy ``(sets x ways)`` array; per-slot scalar indexing
into a numpy array costs roughly an order of magnitude more than a list
index in this access pattern (every access is a handful of single-slot
reads), so plain lists are the fast representation for the hot loop.

For gigascale unscaled geometries a dense store would be several
hundred MB of host memory, so the store also supports a sparse dict
mode that only materializes touched sets; the dense mode is the default
for the scaled experiment geometries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.errors import GeometryError

_INVALID = -1
_DENSE_LIMIT_LINES = 64 * 1024 * 1024  # above this, switch to sparse storage

# Tag used by prefill_junk(): far above any tag a real (<=2^52-byte)
# address space can produce, so it never matches a lookup.
JUNK_TAG = 1 << 60


class _JunkDefaultDict(dict):
    """Sparse backing store whose unmaterialized sets read as junk-filled."""

    def __init__(self, ways: int):
        super().__init__()
        self._ways = ways

    def __missing__(self, set_index):
        entry = [[JUNK_TAG, 0] for _ in range(self._ways)]
        self[set_index] = entry
        return entry


class TagStore:
    """Valid/dirty/tag state for every (set, way) slot."""

    def __init__(self, geometry: CacheGeometry, dense: Optional[bool] = None):
        self.geometry = geometry
        self.ways = geometry.ways
        if dense is None:
            dense = geometry.num_lines <= _DENSE_LIMIT_LINES
        self.dense = dense
        if dense:
            self._tags: Optional[List[int]] = [_INVALID] * geometry.num_lines
            self._dirty: Optional[bytearray] = bytearray(geometry.num_lines)
            self._sparse: Optional[Dict[int, List[List[int]]]] = None
        else:
            self._tags = None
            self._dirty = None
            self._sparse = {}
        self.valid_lines = 0

    # -- set access -------------------------------------------------------

    def _sparse_set(self, set_index: int) -> List[List[int]]:
        if isinstance(self._sparse, _JunkDefaultDict):
            return self._sparse[set_index]
        entry = self._sparse.get(set_index)
        if entry is None:
            entry = [[_INVALID, 0] for _ in range(self.geometry.ways)]
            self._sparse[set_index] = entry
        return entry

    def tag_at(self, set_index: int, way: int) -> int:
        """Tag stored in a slot, or -1 if invalid."""
        if self.dense:
            return self._tags[set_index * self.ways + way]
        return self._sparse_set(set_index)[way][0]

    def is_valid(self, set_index: int, way: int) -> bool:
        return self.tag_at(set_index, way) != _INVALID

    def is_dirty(self, set_index: int, way: int) -> bool:
        if self.dense:
            return bool(self._dirty[set_index * self.ways + way])
        return bool(self._sparse_set(set_index)[way][1])

    def set_dirty(self, set_index: int, way: int, dirty: bool = True) -> None:
        if self.dense:
            self._dirty[set_index * self.ways + way] = 1 if dirty else 0
        else:
            self._sparse_set(set_index)[way][1] = 1 if dirty else 0

    # -- lookup -----------------------------------------------------------

    def find_way(self, set_index: int, tag: int) -> Optional[int]:
        """Way holding ``tag`` in this set, or None."""
        if self.dense:
            tags = self._tags
            base = set_index * self.ways
            for way in range(self.ways):
                if tags[base + way] == tag:
                    return way
            return None
        entry = self._sparse.get(set_index)
        if entry is None:
            return None
        for way, (stored, _dirty) in enumerate(entry):
            if stored == tag:
                return way
        return None

    def find_way_among(self, set_index: int, tag: int, ways) -> Optional[int]:
        """Like :meth:`find_way` but restricted to candidate ways."""
        if self.dense:
            tags = self._tags
            base = set_index * self.ways
            for way in ways:
                if tags[base + way] == tag:
                    return way
            return None
        for way in ways:
            if self.tag_at(set_index, way) == tag:
                return way
        return None

    def invalid_ways(self, set_index: int) -> List[int]:
        """Ways of a set that currently hold no line."""
        return [
            way
            for way in range(self.geometry.ways)
            if self.tag_at(set_index, way) == _INVALID
        ]

    # -- mutation ---------------------------------------------------------

    def install(self, set_index: int, way: int, tag: int, dirty: bool = False) -> None:
        """Place ``tag`` into a slot, overwriting whatever was there."""
        if tag < 0:
            raise GeometryError(f"tags must be non-negative, got {tag}")
        if self.dense:
            slot = set_index * self.ways + way
            if self._tags[slot] == _INVALID:
                self.valid_lines += 1
            self._tags[slot] = tag
            self._dirty[slot] = 1 if dirty else 0
        else:
            entry = self._sparse_set(set_index)[way]
            if entry[0] == _INVALID:
                self.valid_lines += 1
            entry[0] = tag
            entry[1] = 1 if dirty else 0

    def evict_slot(self, set_index: int, way: int) -> "Tuple[int, bool]":
        """Read and invalidate one slot in a single call.

        Returns the ``(tag, dirty)`` pair the slot held (``(-1, False)``
        if it was already invalid). Equivalent to ``tag_at`` +
        ``is_dirty`` + ``invalidate`` but resolves the slot once — the
        access path's eviction sequence is a hot-loop miss cost.
        """
        if self.dense:
            slot = set_index * self.ways + way
            tag = self._tags[slot]
            if tag == _INVALID:
                return _INVALID, False
            dirty = bool(self._dirty[slot])
            self._tags[slot] = _INVALID
            self._dirty[slot] = 0
            self.valid_lines -= 1
            return tag, dirty
        entry = self._sparse_set(set_index)[way]
        tag = entry[0]
        if tag == _INVALID:
            return _INVALID, False
        dirty = bool(entry[1])
        entry[0] = _INVALID
        entry[1] = 0
        self.valid_lines -= 1
        return tag, dirty

    def invalidate(self, set_index: int, way: int) -> None:
        if self.dense:
            slot = set_index * self.ways + way
            if self._tags[slot] != _INVALID:
                self.valid_lines -= 1
            self._tags[slot] = _INVALID
            self._dirty[slot] = 0
        else:
            entry = self._sparse_set(set_index)[way]
            if entry[0] != _INVALID:
                self.valid_lines -= 1
            entry[0] = _INVALID
            entry[1] = 0

    def occupancy(self) -> float:
        """Fraction of slots holding a valid line."""
        return self.valid_lines / self.geometry.num_lines

    def prefill_junk(self) -> None:
        """Mark every slot valid with a never-matching tag.

        Models the warm state of a long-running DRAM cache: a gigascale
        cache is effectively always full, so replacement decisions start
        from "evict something" rather than "use an empty way". Junk
        lines are clean and never hit, so they only influence victim
        selection.
        """
        if self.dense:
            self._tags = [JUNK_TAG] * self.geometry.num_lines
            self._dirty = bytearray(self.geometry.num_lines)
            self._sparse = None
        else:
            self._sparse = _JunkDefaultDict(self.geometry.ways)
        self.valid_lines = self.geometry.num_lines
