"""DRAM-cache presence (DCP) directory with way information.

The paper extends the DCP scheme (presence bits kept alongside L3
lines) to also record *which way* a line occupies, so writebacks to a
set-associative DRAM cache need no probe (Section II-B.3). We model the
directory as an exact map from resident line address to way; its
storage lives in the L3 tag array, so it contributes no DRAM-cache SRAM
overhead.
"""

from __future__ import annotations

from typing import Dict, Optional


class DcpDirectory:
    """Exact line-address -> way map kept coherent by the DRAM cache.

    ``authoritative`` is True: a miss in this directory means the line
    is definitely not in the DRAM cache, so writebacks may bypass
    straight to NVM without probing.
    """

    authoritative = True
    # Each line address maps to exactly one set, so the exact directory
    # partitions cleanly by set range — safe to shard. It mirrors the
    # tag store exactly, so the vector kernel models it as residency in
    # its own tag arrays.
    shardable = True
    vectorizable = True

    def __init__(self):
        self._way_of: Dict[int, int] = {}
        self.lookups = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._way_of)

    def lookup(self, line_addr: int) -> Optional[int]:
        """Way holding the line, or None if not resident."""
        self.lookups += 1
        way = self._way_of.get(line_addr)
        if way is not None:
            self.hits += 1
        return way

    def insert(self, line_addr: int, way: int) -> None:
        self._way_of[line_addr] = way

    def remove(self, line_addr: int) -> None:
        self._way_of.pop(line_addr, None)

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class FiniteDcpDirectory:
    """Capacity-limited DCP: way bits co-located with L3 lines.

    The paper stores DCP (presence + way) bits alongside lines in the
    L3, so the information exists only while the line is L3-resident.
    This model keeps an LRU-bounded map: entries beyond ``capacity``
    fall off, after which a writeback no longer knows its way and must
    probe (``authoritative = False`` tells the cache a miss here is
    inconclusive).
    """

    authoritative = False
    # The LRU capacity bound is global: whether set s's entry survives
    # depends on every other set's insertions, so sharding would change
    # which writebacks must probe. Falls back to the serial path.
    shardable = False

    def __init__(self, capacity: int = 128 * 1024):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        from collections import OrderedDict

        self.capacity = capacity
        self._way_of: "OrderedDict[int, int]" = OrderedDict()
        self.lookups = 0
        self.hits = 0
        self.capacity_evictions = 0

    def __len__(self) -> int:
        return len(self._way_of)

    def lookup(self, line_addr: int) -> Optional[int]:
        """Way holding the line, or None (absent OR forgotten)."""
        self.lookups += 1
        way = self._way_of.get(line_addr)
        if way is None:
            return None
        self._way_of.move_to_end(line_addr)
        self.hits += 1
        return way

    def insert(self, line_addr: int, way: int) -> None:
        if line_addr in self._way_of:
            self._way_of.move_to_end(line_addr)
        self._way_of[line_addr] = way
        while len(self._way_of) > self.capacity:
            self._way_of.popitem(last=False)
            self.capacity_evictions += 1

    def remove(self, line_addr: int) -> None:
        self._way_of.pop(line_addr, None)

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
