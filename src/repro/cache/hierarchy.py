"""Four-level cache hierarchy glue (Table III: L1, L2, L3, L4=DRAM cache).

Raw CPU accesses flow through the SRAM levels; L3 misses become DRAM
cache reads, and L3 dirty evictions become DRAM cache writebacks (the
paper's writeback-probe discussion). Used by integration tests and the
quickstart example; the experiment harness drives the DRAM cache with
pre-filtered traces for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.sram import SramCache


@dataclass
class HierarchyStats:
    cpu_accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_cache_reads: int = 0
    dram_cache_writebacks: int = 0


class CacheHierarchy:
    """L1 -> L2 -> L3 -> DRAM cache, inclusive-of-nothing (simple miss path)."""

    def __init__(
        self,
        dram_cache,
        l1_geometry: Optional[CacheGeometry] = None,
        l2_geometry: Optional[CacheGeometry] = None,
        l3_geometry: Optional[CacheGeometry] = None,
    ):
        self.l1 = SramCache(l1_geometry or CacheGeometry(32 * 1024, 8), "L1")
        self.l2 = SramCache(l2_geometry or CacheGeometry(256 * 1024, 8), "L2")
        self.l3 = SramCache(l3_geometry or CacheGeometry(8 * 1024 * 1024, 16), "L3")
        self.dram_cache = dram_cache
        self.stats = HierarchyStats()

    def access(self, addr: int, is_write: bool = False) -> None:
        """Send one CPU access down the hierarchy."""
        stats = self.stats
        stats.cpu_accesses += 1
        if self.l1.access(addr, is_write).hit:
            stats.l1_hits += 1
            return
        if self.l2.access(addr, is_write).hit:
            stats.l2_hits += 1
            return
        l3_result = self.l3.access(addr, is_write)
        if l3_result.evicted_dirty_addr is not None:
            stats.dram_cache_writebacks += 1
            self.dram_cache.writeback(l3_result.evicted_dirty_addr)
        if l3_result.hit:
            stats.l3_hits += 1
            return
        stats.dram_cache_reads += 1
        self.dram_cache.read(addr)

    def l3_miss_rate(self) -> float:
        return 1.0 - self.l3.hit_rate()
