"""The DRAM cache: functional model with full cost accounting.

Combines a tag store, a lookup flow, an install-steering policy, a way
predictor and a replacement policy. Every access updates
:class:`repro.sim.stats.CacheStats`; the timing models turn those
counters into runtime, and the tests assert the Table I cost identities
directly against them.

Writebacks from the LLC use the paper's extended DCP scheme (Section
II-B.3): the L3 keeps a presence bit *plus way bits* per line, so a
writeback to a resident line goes straight to the correct way with one
write transfer, and a writeback to a non-resident line bypasses to NVM.
Setting ``dcp=None`` models a cache without the extension, which must
probe candidate ways to locate the line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.cache.dcp import DcpDirectory
from repro.cache.geometry import CacheGeometry
from repro.cache.lookup import LookupResult, WayPredictedLookup
from repro.cache.replacement import RandomReplacement, ReplacementPolicy
from repro.cache.storage import TagStore
from repro.errors import PolicyError
from repro.sim.stats import CacheStats

if TYPE_CHECKING:  # import direction is core -> cache; hints only here
    from repro.core.prediction import WayPredictor
    from repro.core.steering import InstallSteering


@dataclass
class AccessOutcome:
    """What one demand access did (returned to the caller/simulator)."""

    hit: bool
    way: Optional[int]
    serialized_accesses: int
    nvm_read: bool
    prediction_used: bool
    prediction_correct: bool


class DramCache:
    """Functional set-associative DRAM cache with tags-in-ECC layout."""

    def __init__(
        self,
        geometry: CacheGeometry,
        lookup,
        steering: "InstallSteering",
        predictor: Optional["WayPredictor"],
        replacement: Optional[ReplacementPolicy] = None,
        dcp: Optional[DcpDirectory] = "default",
        stats: Optional[CacheStats] = None,
        prefill: bool = True,
    ):
        if steering.geometry.ways != geometry.ways:
            raise PolicyError("steering geometry does not match the cache")
        if isinstance(lookup, WayPredictedLookup) and predictor is None:
            raise PolicyError("way-predicted lookup needs a predictor")
        self.geometry = geometry
        self.store = TagStore(geometry)
        self.lookup = lookup
        self.steering = steering
        self.predictor = predictor
        self.replacement = replacement or RandomReplacement()
        self.dcp = DcpDirectory() if dcp == "default" else dcp
        self.stats = stats or CacheStats()
        if prefill:
            # A gigascale cache in steady state is full; start warm so
            # replacement (not empty-way filling) governs installs.
            self.store.prefill_junk()

    # -- demand reads -------------------------------------------------------

    def read(self, addr: int) -> AccessOutcome:
        """Service one demand read; fills the line on a miss."""
        stats = self.stats
        stats.demand_reads += 1
        set_index, tag = self.geometry.split(addr)
        candidates = self.steering.candidate_ways(set_index, tag)
        result = self.lookup.lookup(
            set_index, tag, addr, self.store, candidates, self.predictor
        )
        self._charge_lookup(result)
        if result.hit:
            self._note_hit(set_index, tag, addr, result)
            return AccessOutcome(
                hit=True,
                way=result.way,
                serialized_accesses=result.serialized_accesses,
                nvm_read=False,
                prediction_used=result.predicted_way is not None,
                prediction_correct=result.prediction_correct,
            )
        way = self._fill(set_index, tag, addr, dirty=False)
        return AccessOutcome(
            hit=False,
            way=way,
            serialized_accesses=result.serialized_accesses,
            nvm_read=True,
            prediction_used=result.predicted_way is not None,
            prediction_correct=False,
        )

    # -- LLC writebacks -----------------------------------------------------

    def writeback(self, addr: int) -> bool:
        """Absorb a dirty writeback from the LLC.

        Returns True if the line was written into the cache, False if it
        bypassed to main memory.
        """
        stats = self.stats
        stats.writebacks_in += 1
        set_index, tag = self.geometry.split(addr)
        line = self.geometry.line_addr(addr)
        way = None
        if self.dcp is not None:
            way = self.dcp.lookup(line)
            if way is None and getattr(self.dcp, "authoritative", True):
                # An exact directory's miss proves absence: bypass.
                stats.writeback_bypass += 1
                stats.nvm_writes += 1
                return False
            if way is not None and self.store.tag_at(set_index, way) != tag:
                raise PolicyError("DCP directory out of sync with the tag store")
        if way is None:
            # No way information (no DCP, or a finite DCP forgot the
            # line): the writeback must probe the candidate ways.
            candidates = self.steering.candidate_ways(set_index, tag)
            way = self.store.find_way_among(set_index, tag, candidates)
            probes = (
                len(candidates) if way is None else list(candidates).index(way) + 1
            )
            stats.writeback_probe_accesses += probes
            stats.cache_read_transfers += probes
            if way is None:
                stats.writeback_bypass += 1
                stats.nvm_writes += 1
                return False
            if self.dcp is not None:
                self.dcp.insert(line, way)  # re-learn the way
        self.store.set_dirty(set_index, way, True)
        stats.writeback_direct += 1
        stats.cache_write_transfers += 1
        self.replacement.on_hit(set_index, way)
        return True

    # -- internals ----------------------------------------------------------

    def _charge_lookup(self, result: LookupResult) -> None:
        stats = self.stats
        stats.first_probes += 1
        if result.hit:
            stats.hit_extra_probes += result.serialized_accesses - 1
        else:
            stats.miss_extra_probes += result.serialized_accesses - 1
        stats.cache_read_transfers += result.transfers

    def _note_hit(self, set_index: int, tag: int, addr: int, result: LookupResult) -> None:
        stats = self.stats
        stats.hits += 1
        if result.predicted_way is not None:
            stats.predicted_hits += 1
            if result.prediction_correct:
                stats.correct_predictions += 1
        self.replacement.on_hit(set_index, result.way)
        stats.replacement_update_transfers += self.replacement.update_transfers_on_hit
        if self.predictor is not None:
            self.predictor.on_access(set_index, tag, addr, result.way, True)

    def _fill(self, set_index: int, tag: int, addr: int, dirty: bool) -> int:
        """Fetch the line from NVM and install it."""
        stats = self.stats
        stats.misses += 1
        stats.nvm_reads += 1
        if self.predictor is not None:
            self.predictor.on_access(set_index, tag, addr, None, False)
        way = self.steering.choose_install_way(
            set_index, tag, addr, self.store, self.replacement
        )
        if way not in self.steering.candidate_ways(set_index, tag):
            raise PolicyError(
                f"steering installed into way {way}, outside its candidate set"
            )
        self._evict(set_index, way)
        self.store.install(set_index, way, tag, dirty=dirty)
        stats.installs += 1
        stats.cache_write_transfers += 1
        self.replacement.on_install(set_index, way)
        self.steering.on_install(set_index, tag, addr, way)
        if self.predictor is not None:
            self.predictor.on_install(set_index, tag, addr, way)
        if self.dcp is not None:
            self.dcp.insert(self.geometry.line_addr(addr), way)
        return way

    def _evict(self, set_index: int, way: int) -> None:
        stats = self.stats
        if not self.store.is_valid(set_index, way):
            return
        victim_tag = self.store.tag_at(set_index, way)
        stats.evictions += 1
        if self.store.is_dirty(set_index, way):
            stats.dirty_evictions += 1
            stats.nvm_writes += 1
        if self.predictor is not None:
            self.predictor.on_evict(set_index, victim_tag, way)
        if self.dcp is not None:
            victim_addr = self.geometry.addr_of(set_index, victim_tag)
            self.dcp.remove(self.geometry.line_addr(victim_addr))
        self.store.invalidate(set_index, way)

    # -- introspection ------------------------------------------------------

    def contains(self, addr: int) -> bool:
        """True if the line holding ``addr`` is resident."""
        set_index, tag = self.geometry.split(addr)
        return self.store.find_way(set_index, tag) is not None

    def resident_way(self, addr: int) -> Optional[int]:
        set_index, tag = self.geometry.split(addr)
        return self.store.find_way(set_index, tag)

    def storage_overhead_bits(self) -> int:
        """SRAM overhead of steering + prediction (Table IX)."""
        total = self.steering.storage_bits()
        if self.predictor is not None:
            total += self.predictor.storage_bits()
        return total
