"""The DRAM cache: functional model with full cost accounting.

Combines a tag store, a lookup flow, an install-steering policy, a way
predictor and a replacement policy. The lookup/fill/writeback *flow*
lives in :class:`~repro.cache.access_path.AccessPath`; this class owns
the components and exposes the stable ``read``/``writeback``/``stats``
surface the simulators drive. Every access updates
:class:`repro.sim.stats.CacheStats`; the timing models turn those
counters into runtime, and the tests assert the Table I cost identities
directly against them.

Observers (:mod:`repro.cache.events`) can be attached to see the typed
event stream of every access — per-phase metrics, alternative stats
sinks, policy debugging — without touching the counters-only fast path:
with no observer registered the hot loop builds no event objects.

Writebacks from the LLC use the paper's extended DCP scheme (Section
II-B.3): the L3 keeps a presence bit *plus way bits* per line, so a
writeback to a resident line goes straight to the correct way with one
write transfer, and a writeback to a non-resident line bypasses to NVM.
Setting ``dcp=None`` models a cache without the extension, which must
probe candidate ways to locate the line.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterable, Optional

from repro.cache.access_path import AccessOutcome, AccessPath
from repro.cache.dcp import DcpDirectory
from repro.cache.geometry import CacheGeometry
from repro.cache.lookup import WayPredictedLookup
from repro.cache.replacement import RandomReplacement, ReplacementPolicy
from repro.cache.storage import TagStore
from repro.errors import PolicyError
from repro.sim.stats import CacheStats

if TYPE_CHECKING:  # import direction is core -> cache; hints only here
    from repro.cache.events import AccessObserver
    from repro.core.prediction import WayPredictor
    from repro.core.steering import InstallSteering

__all__ = ["AccessOutcome", "DramCache", "lazy_tag_stores"]

# When set (via lazy_tag_stores), new DramCaches defer building their
# TagStore until something actually touches ``cache.store``.
_LAZY_STORE = False


@contextlib.contextmanager
def lazy_tag_stores():
    """Build caches whose tag store materializes on first touch.

    The array engines (:mod:`repro.sim.engines.vector` and the fused
    multi-config kernel) keep all resident-line state in their own
    arrays and never read ``cache.store``; for them the eager dense
    store is two multi-megabyte allocations per cache build. Inside
    this context the store is created lazily, so vector-driven builds
    skip it entirely while any scalar-path access transparently
    materializes the identical prefilled store. Not thread-safe: the
    flag is module-global and meant for batch build loops.
    """
    global _LAZY_STORE
    previous = _LAZY_STORE
    _LAZY_STORE = True
    try:
        yield
    finally:
        _LAZY_STORE = previous


class DramCache:
    """Functional set-associative DRAM cache with tags-in-ECC layout."""

    def __init__(
        self,
        geometry: CacheGeometry,
        lookup,
        steering: "InstallSteering",
        predictor: Optional["WayPredictor"],
        replacement: Optional[ReplacementPolicy] = None,
        dcp: Optional[DcpDirectory] = "default",
        stats: Optional[CacheStats] = None,
        prefill: bool = True,
        observers: Iterable["AccessObserver"] = (),
    ):
        if steering.geometry.ways != geometry.ways:
            raise PolicyError("steering geometry does not match the cache")
        if isinstance(lookup, WayPredictedLookup) and predictor is None:
            raise PolicyError("way-predicted lookup needs a predictor")
        self.geometry = geometry
        self._prefill = prefill
        if not _LAZY_STORE:
            self.store = TagStore(geometry)
        self.lookup = lookup
        self.steering = steering
        self.predictor = predictor
        self.replacement = replacement or RandomReplacement()
        self.dcp = DcpDirectory() if dcp == "default" else dcp
        self.stats = stats or CacheStats()
        self.path = AccessPath(self)
        for observer in observers:
            self.path.add_observer(observer)
        if prefill and "store" in self.__dict__:
            # A gigascale cache in steady state is full; start warm so
            # replacement (not empty-way filling) governs installs.
            self.store.prefill_junk()

    def __getattr__(self, name):
        # Lazily materialize the tag store for caches built under
        # lazy_tag_stores(); identical state to an eager build.
        if name == "store" and "geometry" in self.__dict__:
            store = TagStore(self.geometry)
            if self._prefill:
                store.prefill_junk()
            self.store = store
            return store
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # -- observers ----------------------------------------------------------

    @property
    def observers(self):
        """Observers currently attached to the access path."""
        return tuple(self.path.observers)

    def add_observer(self, observer: "AccessObserver") -> None:
        """Attach an event observer (see :mod:`repro.cache.events`)."""
        self.path.add_observer(observer)

    def remove_observer(self, observer: "AccessObserver") -> None:
        """Detach an event observer (no-op if not attached)."""
        self.path.remove_observer(observer)

    # -- accesses -----------------------------------------------------------

    def read(self, addr: int) -> AccessOutcome:
        """Service one demand read; fills the line on a miss."""
        return self.path.read(addr)

    def read_split(self, set_index: int, tag: int, addr: int) -> AccessOutcome:
        """:meth:`read` with the (set, tag) split precomputed.

        Hot-loop entry point for drivers that batch-split the address
        stream (:meth:`repro.sim.trace.Trace.split_columns`)."""
        return self.path.read_split(set_index, tag, addr)

    def writeback_split(self, set_index: int, tag: int, addr: int) -> bool:
        """:meth:`writeback` with the (set, tag) split precomputed."""
        return self.path.writeback_split(set_index, tag, addr)

    def writeback(self, addr: int) -> bool:
        """Absorb a dirty writeback from the LLC.

        Returns True if the line was written into the cache, False if it
        bypassed to main memory.
        """
        return self.path.writeback(addr)

    # -- introspection ------------------------------------------------------

    def contains(self, addr: int) -> bool:
        """True if the line holding ``addr`` is resident."""
        set_index, tag = self.geometry.split(addr)
        return self.store.find_way(set_index, tag) is not None

    def resident_way(self, addr: int) -> Optional[int]:
        set_index, tag = self.geometry.split(addr)
        return self.store.find_way(set_index, tag)

    def storage_overhead_bits(self) -> int:
        """SRAM overhead of steering + prediction (Table IX)."""
        total = self.steering.storage_bits()
        if self.predictor is not None:
            total += self.predictor.storage_bits()
        return total
