"""The access path: executes the DRAM cache's lookup/fill/writeback flow.

Decomposed out of :class:`~repro.cache.dram_cache.DramCache` so that the
*flow* (which policies are consulted, in what order, with what cost
identities) lives in one place and is observable. The path emits typed
events (:mod:`repro.cache.events`) to registered observers; the cache's
own :class:`~repro.sim.stats.CacheStats` accounting is the inlined
counters-only fast path — when no observer is registered, no event
object is ever constructed, so the hot loop runs at seed speed. The
inlined accounting is, line for line, the
:class:`~repro.cache.events.StatsObserver` specification; the
equivalence tests assert the two bit-identical for every design.

The path reads its components (store, lookup flow, steering, predictor,
replacement, DCP, stats) from the owning cache *at call time*, because
design factories and the simulator legitimately swap them after
construction (``cache.predictor = PerfectPredictor(...)``,
``cache.stats = CacheStats()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.cache.events import (
    AccessObserver,
    EvictEvent,
    FillEvent,
    LookupEvent,
    WritebackEvent,
)
from repro.cache.lookup import LookupResult
from repro.errors import PolicyError

if TYPE_CHECKING:  # owning-cache hint only; no runtime cycle
    from repro.cache.dram_cache import DramCache


@dataclass
class AccessOutcome:
    """What one demand access did (returned to the caller/simulator)."""

    hit: bool
    way: Optional[int]
    serialized_accesses: int
    nvm_read: bool
    prediction_used: bool
    prediction_correct: bool


class AccessPath:
    """Executes accesses for one :class:`DramCache`, emitting events."""

    def __init__(self, cache: "DramCache"):
        self.cache = cache
        self.observers: List[AccessObserver] = []

    # -- observer registry --------------------------------------------------

    def add_observer(self, observer: AccessObserver) -> None:
        """Register an observer; events arrive in registration order."""
        self.observers.append(observer)

    def remove_observer(self, observer: AccessObserver) -> None:
        """Unregister an observer (no-op if it was never registered)."""
        try:
            self.observers.remove(observer)
        except ValueError:
            pass

    # -- demand reads -------------------------------------------------------

    def read(self, addr: int) -> AccessOutcome:
        """Service one demand read; fills the line on a miss."""
        cache = self.cache
        stats = cache.stats
        stats.demand_reads += 1
        set_index, tag = cache.geometry.split(addr)
        candidates = cache.steering.candidate_ways(set_index, tag)
        result = cache.lookup.lookup(
            set_index, tag, addr, cache.store, candidates, cache.predictor
        )
        self._charge_lookup(result)
        if result.hit:
            update_transfers = self._note_hit(set_index, tag, addr, result)
            if self.observers:
                self._emit_lookup(addr, set_index, tag, result, update_transfers)
            return AccessOutcome(
                hit=True,
                way=result.way,
                serialized_accesses=result.serialized_accesses,
                nvm_read=False,
                prediction_used=result.predicted_way is not None,
                prediction_correct=result.prediction_correct,
            )
        if self.observers:
            self._emit_lookup(addr, set_index, tag, result, 0)
        way = self._fill(set_index, tag, addr, dirty=False)
        return AccessOutcome(
            hit=False,
            way=way,
            serialized_accesses=result.serialized_accesses,
            nvm_read=True,
            prediction_used=result.predicted_way is not None,
            prediction_correct=False,
        )

    # -- LLC writebacks -----------------------------------------------------

    def writeback(self, addr: int) -> bool:
        """Absorb a dirty writeback from the LLC.

        Returns True if the line was written into the cache, False if it
        bypassed to main memory.
        """
        cache = self.cache
        stats = cache.stats
        stats.writebacks_in += 1
        set_index, tag = cache.geometry.split(addr)
        line = cache.geometry.line_addr(addr)
        dcp = cache.dcp
        way: Optional[int] = None
        probes = 0
        dcp_hit = False
        if dcp is not None:
            way = dcp.lookup(line)
            dcp_hit = way is not None
            if way is None and dcp.authoritative:
                # An exact directory's miss proves absence: bypass.
                stats.writeback_bypass += 1
                stats.nvm_writes += 1
                if self.observers:
                    self._emit_writeback(
                        addr, set_index, tag, absorbed=False, way=None,
                        probes=0, dcp_hit=False, bypassed_by_dcp=True,
                    )
                return False
            if way is not None and cache.store.tag_at(set_index, way) != tag:
                raise PolicyError("DCP directory out of sync with the tag store")
        if way is None:
            # No way information (no DCP, or a finite DCP forgot the
            # line): the writeback must probe the candidate ways. The
            # steering policy may hand back any iterable; materialize it
            # once so probe counting (len / index) is well-defined.
            candidates = tuple(cache.steering.candidate_ways(set_index, tag))
            way = cache.store.find_way_among(set_index, tag, candidates)
            probes = len(candidates) if way is None else candidates.index(way) + 1
            stats.writeback_probe_accesses += probes
            stats.cache_read_transfers += probes
            if way is None:
                stats.writeback_bypass += 1
                stats.nvm_writes += 1
                if self.observers:
                    self._emit_writeback(
                        addr, set_index, tag, absorbed=False, way=None,
                        probes=probes, dcp_hit=False, bypassed_by_dcp=False,
                    )
                return False
            if dcp is not None:
                dcp.insert(line, way)  # re-learn the way
        cache.store.set_dirty(set_index, way, True)
        stats.writeback_direct += 1
        stats.cache_write_transfers += 1
        cache.replacement.on_hit(set_index, way)
        if self.observers:
            self._emit_writeback(
                addr, set_index, tag, absorbed=True, way=way,
                probes=probes, dcp_hit=dcp_hit, bypassed_by_dcp=False,
            )
        return True

    # -- internals ----------------------------------------------------------

    def _charge_lookup(self, result: LookupResult) -> None:
        stats = self.cache.stats
        stats.first_probes += 1
        if result.hit:
            stats.hit_extra_probes += result.serialized_accesses - 1
        else:
            stats.miss_extra_probes += result.serialized_accesses - 1
        stats.cache_read_transfers += result.transfers

    def _note_hit(
        self, set_index: int, tag: int, addr: int, result: LookupResult
    ) -> int:
        """Account a demand hit; returns the replacement transfers charged."""
        cache = self.cache
        stats = cache.stats
        stats.hits += 1
        if result.predicted_way is not None:
            stats.predicted_hits += 1
            if result.prediction_correct:
                stats.correct_predictions += 1
        cache.replacement.on_hit(set_index, result.way)
        update_transfers = cache.replacement.update_transfers_on_hit
        stats.replacement_update_transfers += update_transfers
        if cache.predictor is not None:
            cache.predictor.on_access(set_index, tag, addr, result.way, True)
        return update_transfers

    def _fill(self, set_index: int, tag: int, addr: int, dirty: bool) -> int:
        """Fetch the line from NVM and install it."""
        cache = self.cache
        stats = cache.stats
        stats.misses += 1
        stats.nvm_reads += 1
        if cache.predictor is not None:
            cache.predictor.on_access(set_index, tag, addr, None, False)
        way = cache.steering.choose_install_way(
            set_index, tag, addr, cache.store, cache.replacement
        )
        if way not in cache.steering.candidate_ways(set_index, tag):
            raise PolicyError(
                f"steering installed into way {way}, outside its candidate set"
            )
        self._evict(set_index, way)
        cache.store.install(set_index, way, tag, dirty=dirty)
        stats.installs += 1
        stats.cache_write_transfers += 1
        cache.replacement.on_install(set_index, way)
        cache.steering.on_install(set_index, tag, addr, way)
        if cache.predictor is not None:
            cache.predictor.on_install(set_index, tag, addr, way)
        if cache.dcp is not None:
            cache.dcp.insert(cache.geometry.line_addr(addr), way)
        if self.observers:
            event = FillEvent(
                addr=addr, set_index=set_index, tag=tag, way=way, dirty=dirty
            )
            for observer in self.observers:
                observer.on_fill(event)
        return way

    def _evict(self, set_index: int, way: int) -> None:
        cache = self.cache
        stats = cache.stats
        if not cache.store.is_valid(set_index, way):
            return
        victim_tag = cache.store.tag_at(set_index, way)
        dirty = cache.store.is_dirty(set_index, way)
        stats.evictions += 1
        if dirty:
            stats.dirty_evictions += 1
            stats.nvm_writes += 1
        if cache.predictor is not None:
            cache.predictor.on_evict(set_index, victim_tag, way)
        if cache.dcp is not None:
            victim_addr = cache.geometry.addr_of(set_index, victim_tag)
            cache.dcp.remove(cache.geometry.line_addr(victim_addr))
        cache.store.invalidate(set_index, way)
        if self.observers:
            event = EvictEvent(
                set_index=set_index, way=way, victim_tag=victim_tag, dirty=dirty
            )
            for observer in self.observers:
                observer.on_evict(event)

    # -- event emission -----------------------------------------------------

    def _emit_lookup(
        self,
        addr: int,
        set_index: int,
        tag: int,
        result: LookupResult,
        update_transfers: int,
    ) -> None:
        event = LookupEvent(
            addr=addr,
            set_index=set_index,
            tag=tag,
            hit=result.hit,
            way=result.way,
            serialized_accesses=result.serialized_accesses,
            transfers=result.transfers,
            predicted_way=result.predicted_way,
            prediction_correct=result.prediction_correct,
            replacement_update_transfers=update_transfers,
        )
        for observer in self.observers:
            observer.on_lookup(event)

    def _emit_writeback(
        self,
        addr: int,
        set_index: int,
        tag: int,
        absorbed: bool,
        way: Optional[int],
        probes: int,
        dcp_hit: bool,
        bypassed_by_dcp: bool,
    ) -> None:
        event = WritebackEvent(
            addr=addr,
            set_index=set_index,
            tag=tag,
            absorbed=absorbed,
            way=way,
            probes=probes,
            dcp_hit=dcp_hit,
            bypassed_by_dcp=bypassed_by_dcp,
        )
        for observer in self.observers:
            observer.on_writeback(event)
