"""The access path: executes the DRAM cache's lookup/fill/writeback flow.

Decomposed out of :class:`~repro.cache.dram_cache.DramCache` so that the
*flow* (which policies are consulted, in what order, with what cost
identities) lives in one place and is observable. The path emits typed
events (:mod:`repro.cache.events`) to registered observers; the cache's
own :class:`~repro.sim.stats.CacheStats` accounting is the inlined
counters-only fast path — when no observer is registered, no event
object is ever constructed, so the hot loop runs at seed speed. The
inlined accounting is, line for line, the
:class:`~repro.cache.events.StatsObserver` specification; the
equivalence tests assert the two bit-identical for every design.

The path reads its components (store, lookup flow, steering, predictor,
replacement, DCP, stats) from the owning cache *at call time*, because
design factories and the simulator legitimately swap them after
construction (``cache.predictor = PerfectPredictor(...)``,
``cache.stats = CacheStats()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.cache.events import (
    AccessObserver,
    EvictEvent,
    FillEvent,
    LookupEvent,
    WritebackEvent,
)
from repro.cache.lookup import LookupResult
from repro.cache.replacement import RandomReplacement
from repro.errors import PolicyError

if TYPE_CHECKING:  # owning-cache hint only; no runtime cycle
    from repro.cache.dram_cache import DramCache


@dataclass
class AccessOutcome:
    """What one demand access did (returned to the caller/simulator)."""

    __slots__ = (
        "hit", "way", "serialized_accesses", "nvm_read",
        "prediction_used", "prediction_correct",
    )

    hit: bool
    way: Optional[int]
    serialized_accesses: int
    nvm_read: bool
    prediction_used: bool
    prediction_correct: bool


class AccessPath:
    """Executes accesses for one :class:`DramCache`, emitting events."""

    def __init__(self, cache: "DramCache"):
        self.cache = cache
        self.observers: List[AccessObserver] = []

    # -- observer registry --------------------------------------------------

    def add_observer(self, observer: AccessObserver) -> None:
        """Register an observer; events arrive in registration order."""
        self.observers.append(observer)

    def remove_observer(self, observer: AccessObserver) -> None:
        """Unregister an observer (no-op if it was never registered)."""
        try:
            self.observers.remove(observer)
        except ValueError:
            pass

    # -- demand reads -------------------------------------------------------

    def read(self, addr: int) -> AccessOutcome:
        """Service one demand read; fills the line on a miss."""
        set_index, tag = self.cache.geometry.split(addr)
        return self.read_split(set_index, tag, addr)

    def read_split(self, set_index: int, tag: int, addr: int) -> AccessOutcome:
        """:meth:`read` with the (set, tag) split precomputed.

        The hot-loop entry point: :class:`~repro.sim.system.Simulator`
        splits the whole trace vectorized once per geometry
        (:meth:`~repro.sim.trace.Trace.split_columns`) and drives this
        method directly, so ``geometry.split`` never runs per access.
        The inlined counter updates below are, line for line, the
        :class:`~repro.cache.events.StatsObserver` specification.
        """
        cache = self.cache
        stats = cache.stats
        stats.demand_reads += 1
        steering = cache.steering
        # static_candidates is a required protocol member, validated at
        # build time (ensure_policy_conformance): the constant candidate
        # set, or None when candidates vary per tag. When set it saves a
        # method call per access.
        candidates = steering.static_candidates
        if candidates is None:
            candidates = steering.candidate_ways(set_index, tag)
            if type(candidates) not in (tuple, list):
                # A policy may hand back any iterable (even one-shot);
                # materialize once so the lookup and the fill's
                # containment check both see the same sequence.
                candidates = tuple(candidates)
        result = cache.lookup.lookup(
            set_index, tag, addr, cache.store, candidates, cache.predictor
        )
        stats.first_probes += 1
        stats.cache_read_transfers += result.transfers
        if result.hit:
            way = result.way
            predicted = result.predicted_way
            stats.hit_extra_probes += result.serialized_accesses - 1
            stats.hits += 1
            prediction_correct = False
            if predicted is not None:
                stats.predicted_hits += 1
                prediction_correct = way == predicted
                if prediction_correct:
                    stats.correct_predictions += 1
            cache.replacement.on_hit(set_index, way)
            update_transfers = cache.replacement.update_transfers_on_hit
            stats.replacement_update_transfers += update_transfers
            if cache.predictor is not None:
                cache.predictor.on_access(set_index, tag, addr, way, True)
            if self.observers:
                self._emit_lookup(addr, set_index, tag, result, update_transfers)
            return AccessOutcome(
                hit=True,
                way=way,
                serialized_accesses=result.serialized_accesses,
                nvm_read=False,
                prediction_used=predicted is not None,
                prediction_correct=prediction_correct,
            )
        stats.miss_extra_probes += result.serialized_accesses - 1
        if self.observers:
            self._emit_lookup(addr, set_index, tag, result, 0)
        way = self._fill(set_index, tag, addr, dirty=False, candidates=candidates)
        return AccessOutcome(
            hit=False,
            way=way,
            serialized_accesses=result.serialized_accesses,
            nvm_read=True,
            prediction_used=result.predicted_way is not None,
            prediction_correct=False,
        )

    # -- batched stream driving ---------------------------------------------

    def run_stream(
        self,
        writes: Sequence[int],
        set_indices: Sequence[int],
        tags: Sequence[int],
        addrs: Sequence[int],
        start: int,
        stop: int,
    ) -> None:
        """Drive ``[start, stop)`` of a pre-split access stream.

        Bit-identical to calling :meth:`read_split` /
        :meth:`writeback_split` per record (the equivalence tests assert
        this for every design), but with the per-access constant work
        hoisted out of the loop: component attribute loads, the
        candidate-set fetch for static-candidate steering policies, and
        the :class:`AccessOutcome` allocation (a batch driver has no
        caller to return it to). Additive counters accumulate in locals
        and flush to :class:`CacheStats` once at the end.

        With observers registered the batch specialization is invalid
        (events must fire per access, interleaved with counter updates),
        so the loop falls back to the per-access methods.
        """
        if self.observers:
            read_split = self.read_split
            writeback_split = self.writeback_split
            for w, s, t, a in zip(
                writes[start:stop],
                set_indices[start:stop],
                tags[start:stop],
                addrs[start:stop],
            ):
                if w:
                    writeback_split(s, t, a)
                else:
                    read_split(s, t, a)
            return
        cache = self.cache
        stats = cache.stats
        steering = cache.steering
        store = cache.store
        lookup = cache.lookup.lookup
        predictor = cache.predictor
        predictor_on_access = predictor.on_access if predictor is not None else None
        replacement = cache.replacement
        update_transfers = replacement.update_transfers_on_hit
        # RandomReplacement's on_hit is a no-op; skip the call entirely.
        on_hit = None if type(replacement) is RandomReplacement else replacement.on_hit
        static = steering.static_candidates
        candidate_ways = steering.candidate_ways
        fill = self._fill
        writeback_split = self.writeback_split
        demand_reads = 0
        read_transfers = 0
        hits = 0
        hit_extra = 0
        predicted_hits = 0
        correct_predictions = 0
        miss_extra = 0
        for w, set_index, tag, addr in zip(
            writes[start:stop],
            set_indices[start:stop],
            tags[start:stop],
            addrs[start:stop],
        ):
            if w:
                writeback_split(set_index, tag, addr)
                continue
            demand_reads += 1
            if static is None:
                candidates = candidate_ways(set_index, tag)
                if type(candidates) not in (tuple, list):
                    candidates = tuple(candidates)
            else:
                candidates = static
            result = lookup(set_index, tag, addr, store, candidates, predictor)
            read_transfers += result.transfers
            if result.hit:
                way = result.way
                predicted = result.predicted_way
                hit_extra += result.serialized_accesses - 1
                hits += 1
                if predicted is not None:
                    predicted_hits += 1
                    if way == predicted:
                        correct_predictions += 1
                if on_hit is not None:
                    on_hit(set_index, way)
                if predictor_on_access is not None:
                    predictor_on_access(set_index, tag, addr, way, True)
            else:
                miss_extra += result.serialized_accesses - 1
                fill(set_index, tag, addr, False, candidates)
        stats.demand_reads += demand_reads
        stats.first_probes += demand_reads
        stats.cache_read_transfers += read_transfers
        stats.hits += hits
        stats.hit_extra_probes += hit_extra
        stats.predicted_hits += predicted_hits
        stats.correct_predictions += correct_predictions
        stats.replacement_update_transfers += hits * update_transfers
        stats.miss_extra_probes += miss_extra

    # -- LLC writebacks -----------------------------------------------------

    def writeback(self, addr: int) -> bool:
        """Absorb a dirty writeback from the LLC.

        Returns True if the line was written into the cache, False if it
        bypassed to main memory.
        """
        set_index, tag = self.cache.geometry.split(addr)
        return self.writeback_split(set_index, tag, addr)

    def writeback_split(self, set_index: int, tag: int, addr: int) -> bool:
        """:meth:`writeback` with the (set, tag) split precomputed."""
        cache = self.cache
        stats = cache.stats
        stats.writebacks_in += 1
        line = addr >> cache.geometry.offset_bits
        dcp = cache.dcp
        way: Optional[int] = None
        probes = 0
        dcp_hit = False
        if dcp is not None:
            way = dcp.lookup(line)
            dcp_hit = way is not None
            if way is None and dcp.authoritative:
                # An exact directory's miss proves absence: bypass.
                stats.writeback_bypass += 1
                stats.nvm_writes += 1
                if self.observers:
                    self._emit_writeback(
                        addr, set_index, tag, absorbed=False, way=None,
                        probes=0, dcp_hit=False, bypassed_by_dcp=True,
                    )
                return False
            if way is not None and cache.store.tag_at(set_index, way) != tag:
                raise PolicyError("DCP directory out of sync with the tag store")
        if way is None:
            # No way information (no DCP, or a finite DCP forgot the
            # line): the writeback must probe the candidate ways. The
            # steering policy may hand back any iterable; materialize it
            # once so probe counting (len / index) is well-defined.
            steering = cache.steering
            candidates = steering.static_candidates
            if candidates is None:
                candidates = steering.candidate_ways(set_index, tag)
                if type(candidates) not in (tuple, list):
                    candidates = tuple(candidates)
            way = cache.store.find_way_among(set_index, tag, candidates)
            probes = len(candidates) if way is None else candidates.index(way) + 1
            stats.writeback_probe_accesses += probes
            stats.cache_read_transfers += probes
            if way is None:
                stats.writeback_bypass += 1
                stats.nvm_writes += 1
                if self.observers:
                    self._emit_writeback(
                        addr, set_index, tag, absorbed=False, way=None,
                        probes=probes, dcp_hit=False, bypassed_by_dcp=False,
                    )
                return False
            if dcp is not None:
                dcp.insert(line, way)  # re-learn the way
        cache.store.set_dirty(set_index, way, True)
        stats.writeback_direct += 1
        stats.cache_write_transfers += 1
        cache.replacement.on_hit(set_index, way)
        if self.observers:
            self._emit_writeback(
                addr, set_index, tag, absorbed=True, way=way,
                probes=probes, dcp_hit=dcp_hit, bypassed_by_dcp=False,
            )
        return True

    # -- internals ----------------------------------------------------------

    def _fill(
        self,
        set_index: int,
        tag: int,
        addr: int,
        dirty: bool,
        candidates: Optional[Sequence[int]] = None,
    ) -> int:
        """Fetch the line from NVM and install it.

        ``candidates`` is the steering policy's candidate set for this
        (set, tag), already computed by the lookup that missed; passing
        it avoids recomputing what :meth:`read_split` holds. The
        install-way containment check validates against it directly.
        """
        cache = self.cache
        stats = cache.stats
        stats.misses += 1
        stats.nvm_reads += 1
        if cache.predictor is not None:
            cache.predictor.on_access(set_index, tag, addr, None, False)
        way = cache.steering.choose_install_way(
            set_index, tag, addr, cache.store, cache.replacement
        )
        if candidates is None:
            candidates = cache.steering.candidate_ways(set_index, tag)
        if way not in candidates:
            raise PolicyError(
                f"steering installed into way {way}, outside its candidate set"
            )
        self._evict(set_index, way)
        cache.store.install(set_index, way, tag, dirty=dirty)
        stats.installs += 1
        stats.cache_write_transfers += 1
        cache.replacement.on_install(set_index, way)
        cache.steering.on_install(set_index, tag, addr, way)
        if cache.predictor is not None:
            cache.predictor.on_install(set_index, tag, addr, way)
        if cache.dcp is not None:
            cache.dcp.insert(addr >> cache.geometry.offset_bits, way)
        if self.observers:
            event = FillEvent(
                addr=addr, set_index=set_index, tag=tag, way=way, dirty=dirty
            )
            for observer in self.observers:
                observer.on_fill(event)
        return way

    def _evict(self, set_index: int, way: int) -> None:
        cache = self.cache
        victim_tag, dirty = cache.store.evict_slot(set_index, way)
        if victim_tag == -1:  # invalid slot: nothing to displace
            return
        stats = cache.stats
        stats.evictions += 1
        if dirty:
            stats.dirty_evictions += 1
            stats.nvm_writes += 1
        if cache.predictor is not None:
            cache.predictor.on_evict(set_index, victim_tag, way)
        if cache.dcp is not None:
            # line_addr(addr_of(set, tag)) without the byte-addr detour.
            victim_line = (victim_tag << cache.geometry.index_bits) | set_index
            cache.dcp.remove(victim_line)
        if self.observers:
            event = EvictEvent(
                set_index=set_index, way=way, victim_tag=victim_tag, dirty=dirty
            )
            for observer in self.observers:
                observer.on_evict(event)

    # -- event emission -----------------------------------------------------

    def _emit_lookup(
        self,
        addr: int,
        set_index: int,
        tag: int,
        result: LookupResult,
        update_transfers: int,
    ) -> None:
        event = LookupEvent(
            addr=addr,
            set_index=set_index,
            tag=tag,
            hit=result.hit,
            way=result.way,
            serialized_accesses=result.serialized_accesses,
            transfers=result.transfers,
            predicted_way=result.predicted_way,
            prediction_correct=result.prediction_correct,
            replacement_update_transfers=update_transfers,
        )
        for observer in self.observers:
            observer.on_lookup(event)

    def _emit_writeback(
        self,
        addr: int,
        set_index: int,
        tag: int,
        absorbed: bool,
        way: Optional[int],
        probes: int,
        dcp_hit: bool,
        bypassed_by_dcp: bool,
    ) -> None:
        event = WritebackEvent(
            addr=addr,
            set_index=set_index,
            tag=tag,
            absorbed=absorbed,
            way=way,
            probes=probes,
            dcp_hit=dcp_hit,
            bypassed_by_dcp=bypassed_by_dcp,
        )
        for observer in self.observers:
            observer.on_writeback(event)
