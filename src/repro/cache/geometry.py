"""Address <-> (set, tag) arithmetic for set-associative caches."""

from __future__ import annotations

from repro.errors import GeometryError
from repro.utils.bitops import ilog2, is_pow2, mask


class CacheGeometry:
    """Maps byte addresses to cache coordinates.

    The DRAM cache indexes with the low line-address bits (as the alloy
    cache / KNL design does): ``set = line_addr mod num_sets`` and
    ``tag = line_addr div num_sets``. Two lines conflict iff their line
    addresses are congruent modulo ``num_sets``.
    """

    __slots__ = (
        "capacity_bytes",
        "ways",
        "line_size",
        "num_lines",
        "num_sets",
        "offset_bits",
        "index_bits",
        "_index_mask",
    )

    def __init__(self, capacity_bytes: int, ways: int, line_size: int = 64):
        if capacity_bytes <= 0:
            raise GeometryError(f"capacity must be positive, got {capacity_bytes}")
        if ways <= 0:
            raise GeometryError(f"ways must be positive, got {ways}")
        if not is_pow2(line_size):
            raise GeometryError(f"line size must be a power of two, got {line_size}")
        num_lines = capacity_bytes // line_size
        if num_lines * line_size != capacity_bytes:
            raise GeometryError("capacity must be a multiple of line size")
        if num_lines % ways != 0:
            raise GeometryError(f"{num_lines} lines not divisible by {ways} ways")
        num_sets = num_lines // ways
        if not is_pow2(num_sets):
            raise GeometryError(f"number of sets must be a power of two, got {num_sets}")

        self.capacity_bytes = capacity_bytes
        self.ways = ways
        self.line_size = line_size
        self.num_lines = num_lines
        self.num_sets = num_sets
        self.offset_bits = ilog2(line_size)
        self.index_bits = ilog2(num_sets)
        self._index_mask = mask(self.index_bits)

    def line_addr(self, addr: int) -> int:
        """Byte address -> line address (address divided by line size)."""
        return addr >> self.offset_bits

    def set_index(self, addr: int) -> int:
        """Byte address -> set index."""
        return (addr >> self.offset_bits) & self._index_mask

    def tag(self, addr: int) -> int:
        """Byte address -> tag (line-address bits above the index)."""
        return addr >> (self.offset_bits + self.index_bits)

    def split(self, addr: int) -> tuple:
        """Byte address -> (set_index, tag) in one call (hot path)."""
        line = addr >> self.offset_bits
        return line & self._index_mask, line >> self.index_bits

    def addr_of(self, set_index: int, tag: int) -> int:
        """Reconstruct the base byte address of a cached line."""
        if not 0 <= set_index < self.num_sets:
            raise GeometryError(f"set index {set_index} out of range")
        return ((tag << self.index_bits) | set_index) << self.offset_bits

    def conflicts(self, addr_a: int, addr_b: int) -> bool:
        """True if two addresses compete for the same set."""
        return self.set_index(addr_a) == self.set_index(addr_b)

    def way_span_bytes(self) -> int:
        """Byte distance after which set indices repeat (one way's span).

        Two lines whose addresses differ by a multiple of this span map
        to the same set — used by workload generators to construct
        deliberate conflict (thrash) groups.
        """
        return self.num_sets * self.line_size

    def with_ways(self, ways: int) -> "CacheGeometry":
        """Same capacity reorganized with a different associativity."""
        return CacheGeometry(self.capacity_bytes, ways, self.line_size)

    def __repr__(self) -> str:
        return (
            f"CacheGeometry(capacity={self.capacity_bytes}, ways={self.ways}, "
            f"sets={self.num_sets}, line={self.line_size})"
        )
