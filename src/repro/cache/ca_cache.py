"""Column-Associative (hash-rehash) cache baseline (Section VII).

The CA-cache keeps a direct-mapped organization but gives each line two
possible *indices*: the preferred index and a rehash index (preferred
XOR the top index bit). A read checks the preferred index first; on a
tag mismatch it checks the rehash index; a hit there triggers a *swap*
of the two lines so the next access hits first-try. Swaps keep the
effective "prediction" accuracy high (comparable to a 2-way MRU
predictor) but cost bus bandwidth even when associativity brings no
benefit — the behaviour Figure 14 punishes (e.g. sphinx).

The model exposes the same read/writeback interface as
:class:`repro.cache.dram_cache.DramCache` so it plugs into the same
simulator and timing model; its "way prediction" accuracy is the
fraction of hits serviced at the preferred index.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.dcp import DcpDirectory
from repro.cache.dram_cache import AccessOutcome
from repro.cache.geometry import CacheGeometry
from repro.errors import PolicyError
from repro.sim.stats import CacheStats


class ColumnAssociativeCache:
    """Direct-mapped cache with hash-rehash lookup and swapping."""

    # No AccessPath, so the cache opts into sparse-replay as a whole
    # (see repro.core.protocols.unreplayable_roles): lookups are a pure
    # two-index probe and the only cross-set state mutation is the
    # displacement on a fill, which the replay engine reproduces.
    replay_vectorizable = True

    def __init__(self, geometry: CacheGeometry, stats: Optional[CacheStats] = None):
        if geometry.ways != 1:
            raise PolicyError("the CA-cache is a direct-mapped organization")
        if geometry.num_sets < 2:
            raise PolicyError("CA-cache needs at least two sets to rehash")
        self.geometry = geometry
        self.stats = stats or CacheStats()
        # One tag per set (direct mapped); -1 means invalid. We store the
        # *line address* rather than the tag because a line's tag differs
        # between its two indices.
        self._lines = {}
        self._dirty = set()
        self.dcp = DcpDirectory()  # presence only; "way" is the index bit
        self._rehash_bit = 1 << (geometry.index_bits - 1)

    # -- index math ---------------------------------------------------------

    def preferred_index(self, addr: int) -> int:
        return self.geometry.set_index(addr)

    def rehash_index(self, addr: int) -> int:
        return self.preferred_index(addr) ^ self._rehash_bit

    # -- demand reads -------------------------------------------------------

    def read(self, addr: int) -> AccessOutcome:
        stats = self.stats
        stats.demand_reads += 1
        line = self.geometry.line_addr(addr)
        first = self.preferred_index(addr)
        second = self.rehash_index(addr)

        stats.first_probes += 1
        stats.cache_read_transfers += 1
        if self._lines.get(first) == line:
            stats.hits += 1
            stats.predicted_hits += 1
            stats.correct_predictions += 1
            return AccessOutcome(True, 0, 1, False, True, True)

        stats.cache_read_transfers += 1
        if self._lines.get(second) == line:
            stats.hit_extra_probes += 1
            stats.hits += 1
            stats.predicted_hits += 1
            self._swap(first, second)
            return AccessOutcome(True, 0, 2, False, True, False)
        stats.miss_extra_probes += 1

        self._fill(addr, line, first, second)
        return AccessOutcome(False, 0, 2, True, True, False)

    def _swap(self, first: int, second: int) -> None:
        """Swap the lines at the two indices (2 reads + 2 writes on the bus).

        The read of both lines already happened during lookup, so the
        charged swap cost is the two write transfers.
        """
        stats = self.stats
        self._lines[first], self._lines[second] = (
            self._lines.get(second),
            self._lines.get(first),
        )
        dirty_first = first in self._dirty
        dirty_second = second in self._dirty
        self._set_dirty(first, dirty_second)
        self._set_dirty(second, dirty_first)
        stats.swap_transfers += 2

    def _set_dirty(self, index: int, dirty: bool) -> None:
        if dirty:
            self._dirty.add(index)
        else:
            self._dirty.discard(index)

    def _fill(self, addr: int, line: int, first: int, second: int) -> None:
        stats = self.stats
        stats.misses += 1
        stats.nvm_reads += 1
        # Classic CA-cache install: the incoming line takes its
        # preferred slot; the displaced occupant moves to the rehash
        # slot (which is also the occupant's own rehash slot, since the
        # two addresses share both index hashes), evicting whatever was
        # there. The displacement is an extra line write on the bus.
        displaced = self._lines.get(first)
        if displaced is not None:
            former = self._lines.get(second)
            if former is not None:
                self._evict(second, former)
            self._lines[second] = displaced
            self._set_dirty(second, first in self._dirty)
            self._dirty.discard(first)
            stats.swap_transfers += 1
        self._lines[first] = line
        self._set_dirty(first, False)
        stats.installs += 1
        stats.cache_write_transfers += 1
        self.dcp.insert(line, 0)

    def _evict(self, index: int, victim_line: int) -> None:
        stats = self.stats
        stats.evictions += 1
        if index in self._dirty:
            stats.dirty_evictions += 1
            stats.nvm_writes += 1
            self._dirty.discard(index)
        self.dcp.remove(victim_line)

    # -- writebacks ---------------------------------------------------------

    def writeback(self, addr: int) -> bool:
        stats = self.stats
        stats.writebacks_in += 1
        line = self.geometry.line_addr(addr)
        for index in (self.preferred_index(addr), self.rehash_index(addr)):
            if self._lines.get(index) == line:
                self._set_dirty(index, True)
                stats.writeback_direct += 1
                stats.cache_write_transfers += 1
                return True
        stats.writeback_bypass += 1
        stats.nvm_writes += 1
        return False

    # -- introspection ------------------------------------------------------

    def contains(self, addr: int) -> bool:
        line = self.geometry.line_addr(addr)
        return (
            self._lines.get(self.preferred_index(addr)) == line
            or self._lines.get(self.rehash_index(addr)) == line
        )

    def storage_overhead_bits(self) -> int:
        return 0  # hash-rehash needs no SRAM metadata (Table X)
