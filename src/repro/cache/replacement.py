"""Victim selection policies for the DRAM cache.

The paper (Section II-B.4) argues that any replacement policy whose
state must be updated on *hits* is a net loss for a tags-with-data DRAM
cache, because the state lives in DRAM next to the line and each update
is an extra DRAM write transfer. Random replacement is update-free and
is the paper's default; LRU is provided to reproduce the "LRU is 9%
worse than random" observation, and NRU as a cheaper intermediate.

``update_transfers_on_hit`` reports how many extra 72B write transfers
a policy performs per hit so the timing model can charge them.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.storage import TagStore
from repro.utils.rng import SetLocalRng, XorShift64


@runtime_checkable
class ReplacementPolicy(Protocol):
    """Chooses a victim way among candidates; tracks recency if needed."""

    update_transfers_on_hit: int

    def victim(
        self, set_index: int, candidates: Sequence[int], store: TagStore
    ) -> int:
        """Return the way to evict (candidates is never empty)."""

    def on_hit(self, set_index: int, way: int) -> None:
        """Notify that ``way`` of ``set_index`` was hit."""

    def on_install(self, set_index: int, way: int) -> None:
        """Notify that a line was installed into ``way``."""


class RandomReplacement:
    """Update-free random victim selection (the paper's default).

    Victim draws come from a per-set counter-based stream
    (:class:`SetLocalRng`), so the choice sequence for one set does not
    depend on accesses to other sets — the property set-sharded runs
    rely on for bit-identical merges.
    """

    update_transfers_on_hit = 0
    shardable = True
    vectorizable = True  # counter-based per-set stream, replayed exactly

    def __init__(self, rng: Optional[XorShift64] = None):
        self._rng = SetLocalRng.from_stream(rng or XorShift64(0xACC0))

    def victim(self, set_index: int, candidates: Sequence[int], store: TagStore) -> int:
        invalid = [w for w in candidates if not store.is_valid(set_index, w)]
        if invalid:
            return invalid[0]
        return candidates[self._rng.next_below(set_index, len(candidates))]

    def on_hit(self, set_index: int, way: int) -> None:
        pass

    def on_install(self, set_index: int, way: int) -> None:
        pass


class LruReplacement:
    """True LRU; each hit rewrites recency state stored with the line.

    The recency order itself is modelled in host memory (numpy), but the
    bandwidth cost of persisting it is charged via
    ``update_transfers_on_hit = 1`` (one extra line write per hit).
    """

    update_transfers_on_hit = 1
    # The global clock is shared across sets, but victim() only compares
    # stamps *within* one set, and within a set their relative order is
    # exactly the set's own touch order — interleaving-invariant.
    shardable = True

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        # stamp[set, way]: larger = more recently used
        self._stamps = np.zeros((geometry.num_sets, geometry.ways), dtype=np.int64)
        self._clock = 0

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index, way] = self._clock

    def victim(self, set_index: int, candidates: Sequence[int], store: TagStore) -> int:
        invalid = [w for w in candidates if not store.is_valid(set_index, w)]
        if invalid:
            return invalid[0]
        row = self._stamps[set_index]
        return min(candidates, key=lambda w: int(row[w]))

    def on_hit(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_install(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)


class NruReplacement:
    """Not-recently-used: one reference bit per line, cleared lazily.

    Cheaper than LRU but still needs a state write per first-touch hit;
    we charge the worst case of one transfer per hit.
    """

    update_transfers_on_hit = 1
    shardable = True

    def __init__(self, geometry: CacheGeometry, rng: Optional[XorShift64] = None):
        self.geometry = geometry
        self._referenced = np.zeros((geometry.num_sets, geometry.ways), dtype=bool)
        self._rng = SetLocalRng.from_stream(rng or XorShift64(0x0879))

    def victim(self, set_index: int, candidates: Sequence[int], store: TagStore) -> int:
        invalid = [w for w in candidates if not store.is_valid(set_index, w)]
        if invalid:
            return invalid[0]
        row = self._referenced[set_index]
        not_recent = [w for w in candidates if not row[w]]
        if not not_recent:
            # Epoch rollover: clear the set's reference bits.
            self._referenced[set_index, :] = False
            not_recent = list(candidates)
        return not_recent[self._rng.next_below(set_index, len(not_recent))]

    def on_hit(self, set_index: int, way: int) -> None:
        self._referenced[set_index, way] = True

    def on_install(self, set_index: int, way: int) -> None:
        self._referenced[set_index, way] = True


def make_replacement(
    name: str, geometry: CacheGeometry, rng: Optional[XorShift64] = None
) -> ReplacementPolicy:
    """Factory keyed by policy name ('random', 'lru', 'nru')."""
    lowered = name.lower()
    if lowered == "random":
        return RandomReplacement(rng)
    if lowered == "lru":
        return LruReplacement(geometry)
    if lowered == "nru":
        return NruReplacement(geometry, rng)
    if lowered in ("rrip", "srrip"):
        return RripReplacement(geometry, rng=rng)
    raise ValueError(f"unknown replacement policy {name!r}")


class RripReplacement:
    """Static RRIP (SRRIP) with re-reference interval counters.

    The paper's Section II-B.4 cites counter-update policies [23] as
    examples of replacement that needs state writes on hits; SRRIP is
    the canonical one. Inserted lines get a long re-reference
    prediction (max-1); hits promote to 0; victims are lines at the
    maximum value, aging everyone when none exists. Each hit's
    counter update is a line write to the tags-with-data array, so
    ``update_transfers_on_hit = 1``.
    """

    update_transfers_on_hit = 1
    shardable = True

    def __init__(self, geometry: CacheGeometry, bits: int = 2,
                 rng: Optional[XorShift64] = None):
        if bits < 1:
            raise ValueError(f"RRIP needs at least 1 bit, got {bits}")
        self.geometry = geometry
        self.max_rrpv = (1 << bits) - 1
        self._rrpv = np.full(
            (geometry.num_sets, geometry.ways), self.max_rrpv, dtype=np.int8
        )
        self._rng = SetLocalRng.from_stream(rng or XorShift64(0x5121))

    def victim(self, set_index: int, candidates: Sequence[int], store: TagStore) -> int:
        invalid = [w for w in candidates if not store.is_valid(set_index, w)]
        if invalid:
            return invalid[0]
        row = self._rrpv[set_index]
        while True:
            stale = [w for w in candidates if row[w] >= self.max_rrpv]
            if stale:
                return stale[self._rng.next_below(set_index, len(stale))]
            for way in candidates:
                row[way] += 1

    def on_hit(self, set_index: int, way: int) -> None:
        self._rrpv[set_index, way] = 0

    def on_install(self, set_index: int, way: int) -> None:
        # "Long" re-reference prediction: max - 1.
        self._rrpv[set_index, way] = self.max_rrpv - 1
