"""Cache substrate: geometry, tag storage, lookup flows, DRAM cache.

The DRAM cache here is the paper's "practical" organization: 64B lines,
tags co-located with data in unused ECC bits (72B streamed per line
access), all ways of one set in the same row buffer.
"""

from repro.cache.geometry import CacheGeometry
from repro.cache.storage import TagStore
from repro.cache.replacement import (
    LruReplacement,
    NruReplacement,
    RandomReplacement,
    ReplacementPolicy,
)
from repro.cache.lookup import (
    LookupKind,
    LookupResult,
    ParallelLookup,
    SerialLookup,
    WayPredictedLookup,
)
from repro.cache.access_path import AccessPath
from repro.cache.dram_cache import AccessOutcome, DramCache
from repro.cache.events import (
    AccessObserver,
    EvictEvent,
    FillEvent,
    LookupEvent,
    StatsObserver,
    WritebackEvent,
)
from repro.cache.ca_cache import ColumnAssociativeCache
from repro.cache.sram import SramCache
from repro.cache.dcp import DcpDirectory
from repro.cache.hierarchy import CacheHierarchy

__all__ = [
    "CacheGeometry",
    "TagStore",
    "ReplacementPolicy",
    "RandomReplacement",
    "LruReplacement",
    "NruReplacement",
    "LookupKind",
    "LookupResult",
    "ParallelLookup",
    "SerialLookup",
    "WayPredictedLookup",
    "AccessOutcome",
    "AccessPath",
    "AccessObserver",
    "LookupEvent",
    "FillEvent",
    "EvictEvent",
    "WritebackEvent",
    "StatsObserver",
    "DramCache",
    "ColumnAssociativeCache",
    "SramCache",
    "DcpDirectory",
    "CacheHierarchy",
]
