"""Typed access events emitted by the DRAM-cache access path.

Every demand read, fill, eviction and LLC writeback the access path
executes is describable as one of four events. Observers registered on
an :class:`~repro.cache.access_path.AccessPath` receive them in flow
order — for a missing read: ``LookupEvent``, then ``EvictEvent`` (if a
valid victim was displaced), then ``FillEvent`` — which is what lets
per-access dynamics (the paper's install-way vs. later-prediction
story) be observed without instrumenting the hot loop itself.

:class:`StatsObserver` is the reference observer: it reconstructs every
:class:`~repro.sim.stats.CacheStats` counter from the event stream
alone. The access path keeps an inlined copy of exactly this accounting
as its counters-only fast path (no event objects are built when no
observers are registered); the two are asserted bit-identical by the
equivalence tests, so StatsObserver doubles as the executable
specification of the counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from repro.sim.stats import CacheStats


@dataclass(frozen=True)
class LookupEvent:
    """One demand read's lookup outcome (hit or miss-confirmation)."""

    addr: int
    set_index: int
    tag: int
    hit: bool
    way: Optional[int]  # way that hit, None on a miss
    serialized_accesses: int  # dependent DRAM accesses (latency dimension)
    transfers: int  # 72B tag+data bus transfers (bandwidth dimension)
    predicted_way: Optional[int]  # first-probe way, None without a predictor
    prediction_correct: bool
    # Extra write transfers the replacement policy charged for this hit
    # (0 on misses and for update-free policies like random).
    replacement_update_transfers: int = 0


@dataclass(frozen=True)
class EvictEvent:
    """A valid line displaced ahead of a fill."""

    set_index: int
    way: int
    victim_tag: int
    dirty: bool  # dirty victims cost one NVM write


@dataclass(frozen=True)
class FillEvent:
    """A line fetched from NVM and installed."""

    addr: int
    set_index: int
    tag: int
    way: int
    dirty: bool  # installed dirty (writeback-allocate paths)


@dataclass(frozen=True)
class WritebackEvent:
    """An LLC writeback absorbed by the cache or bypassed to NVM."""

    addr: int
    set_index: int
    tag: int
    absorbed: bool  # True: written into the cache; False: sent to NVM
    way: Optional[int]  # way written, None when bypassed
    probes: int  # candidate ways probed (0 when the DCP supplied the way)
    dcp_hit: bool  # way came straight from the DCP directory
    bypassed_by_dcp: bool  # authoritative DCP miss proved absence


@runtime_checkable
class AccessObserver(Protocol):
    """Receives the typed event stream of one access path."""

    def on_lookup(self, event: LookupEvent) -> None: ...

    def on_fill(self, event: FillEvent) -> None: ...

    def on_evict(self, event: EvictEvent) -> None: ...

    def on_writeback(self, event: WritebackEvent) -> None: ...


class StatsObserver:
    """Rebuilds :class:`CacheStats` counters from events alone.

    The executable specification of the counter semantics: attaching a
    ``StatsObserver`` with a fresh stats block alongside the access
    path's own (inlined) accounting must yield bit-identical counters.
    """

    def __init__(self, stats: Optional[CacheStats] = None):
        self.stats = stats if stats is not None else CacheStats()

    def on_lookup(self, event: LookupEvent) -> None:
        stats = self.stats
        stats.demand_reads += 1
        stats.first_probes += 1
        stats.cache_read_transfers += event.transfers
        if event.hit:
            stats.hit_extra_probes += event.serialized_accesses - 1
            stats.hits += 1
            if event.predicted_way is not None:
                stats.predicted_hits += 1
                if event.prediction_correct:
                    stats.correct_predictions += 1
            stats.replacement_update_transfers += event.replacement_update_transfers
        else:
            stats.miss_extra_probes += event.serialized_accesses - 1

    def on_fill(self, event: FillEvent) -> None:
        stats = self.stats
        stats.misses += 1
        stats.nvm_reads += 1
        stats.installs += 1
        stats.cache_write_transfers += 1

    def on_evict(self, event: EvictEvent) -> None:
        stats = self.stats
        stats.evictions += 1
        if event.dirty:
            stats.dirty_evictions += 1
            stats.nvm_writes += 1

    def on_writeback(self, event: WritebackEvent) -> None:
        stats = self.stats
        stats.writebacks_in += 1
        if event.probes:
            stats.writeback_probe_accesses += event.probes
            stats.cache_read_transfers += event.probes
        if event.absorbed:
            stats.writeback_direct += 1
            stats.cache_write_transfers += 1
        else:
            stats.writeback_bypass += 1
            stats.nvm_writes += 1


__all__ = [
    "LookupEvent",
    "EvictEvent",
    "FillEvent",
    "WritebackEvent",
    "AccessObserver",
    "StatsObserver",
]
