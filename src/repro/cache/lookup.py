"""Lookup flows for a tags-with-data DRAM cache (paper Section II-C).

Each flow decides the probe order on a read and accounts two costs that
the paper's Table I separates:

* **serialized accesses** — dependent DRAM reads: each adds latency;
* **transfers** — 72B tag+data units streamed on the bus: each adds
  bandwidth.

Because all ways of a set share a row buffer (Figure 2b), follow-up
probes after the first are row-buffer hits; the timing model charges
them a shorter latency. The flow records them as ``extra`` accesses.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cache.storage import TagStore
from repro.errors import PolicyError

if TYPE_CHECKING:  # import direction is core -> cache; hints only here
    from repro.core.prediction import WayPredictor


class LookupKind(enum.Enum):
    PARALLEL = "parallel"
    SERIAL = "serial"
    WAY_PREDICTED = "way_predicted"


class LookupResult:
    """Outcome and cost of one read lookup.

    A plain ``__slots__`` class rather than a dataclass: one is
    allocated per access in the hot loop, and slot storage plus a
    hand-written ``__init__`` shaves measurable per-access overhead.
    """

    __slots__ = ("hit", "way", "serialized_accesses", "transfers", "predicted_way")

    def __init__(
        self,
        hit: bool,
        way: Optional[int],
        serialized_accesses: int,
        transfers: int,
        predicted_way: Optional[int] = None,
    ):
        self.hit = hit
        self.way = way
        self.serialized_accesses = serialized_accesses
        self.transfers = transfers
        self.predicted_way = predicted_way

    @property
    def prediction_correct(self) -> bool:
        """True when a predicted first probe found the line."""
        return self.hit and self.predicted_way is not None and self.way == self.predicted_way

    def __repr__(self) -> str:
        return (
            f"LookupResult(hit={self.hit!r}, way={self.way!r}, "
            f"serialized_accesses={self.serialized_accesses!r}, "
            f"transfers={self.transfers!r}, predicted_way={self.predicted_way!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LookupResult):
            return NotImplemented
        return (
            self.hit == other.hit
            and self.way == other.way
            and self.serialized_accesses == other.serialized_accesses
            and self.transfers == other.transfers
            and self.predicted_way == other.predicted_way
        )


class ParallelLookup:
    """Stream all candidate ways with one access (Figure 3a).

    One row activation serves the whole set, so latency is a single
    access, but every candidate way is transferred — N transfers per
    read, hit or miss.
    """

    kind = LookupKind.PARALLEL
    shardable = True  # stateless flow
    vectorizable = True  # fixed-cost flow, replayed as array ops

    def lookup(
        self,
        set_index: int,
        tag: int,
        addr: int,
        store: TagStore,
        candidates: Sequence[int],
        predictor: Optional["WayPredictor"] = None,
    ) -> LookupResult:
        way = store.find_way_among(set_index, tag, candidates)
        return LookupResult(
            hit=way is not None,
            way=way,
            serialized_accesses=1,
            transfers=len(candidates),
        )


class SerialLookup:
    """Probe candidate ways one-by-one in index order (Figure 3b).

    A hit in the k-th probed way costs k dependent accesses and k
    transfers ((N+1)/2 on average); a miss costs N of each.
    """

    kind = LookupKind.SERIAL
    shardable = True  # stateless flow
    vectorizable = True  # probe costs are a pure function of the hit way

    def lookup(
        self,
        set_index: int,
        tag: int,
        addr: int,
        store: TagStore,
        candidates: Sequence[int],
        predictor: Optional["WayPredictor"] = None,
    ) -> LookupResult:
        probes = 0
        for way in candidates:
            probes += 1
            if store.tag_at(set_index, way) == tag:
                return LookupResult(
                    hit=True, way=way, serialized_accesses=probes, transfers=probes
                )
        return LookupResult(
            hit=False, way=None, serialized_accesses=probes, transfers=probes
        )


class WayPredictedLookup:
    """Probe a predicted way first, then the rest serially (Figure 3c).

    With an accurate predictor, hits cost one access/transfer like a
    direct-mapped cache; misses still probe every candidate way
    (miss confirmation) — the cost SWS attacks by shrinking the
    candidate set to two.
    """

    kind = LookupKind.WAY_PREDICTED
    shardable = True  # stateless flow
    vectorizable = True  # probe costs derive from (prediction, hit way)

    def lookup(
        self,
        set_index: int,
        tag: int,
        addr: int,
        store: TagStore,
        candidates: Sequence[int],
        predictor: Optional["WayPredictor"] = None,
    ) -> LookupResult:
        if predictor is None:
            raise PolicyError("way-predicted lookup requires a predictor")
        predicted = predictor.predict(set_index, tag, addr)
        if predicted not in candidates:
            # A stateful predictor (e.g. MRU) may name a way the steering
            # policy forbids for this tag; probe a legal way instead.
            predicted = candidates[0]
        probes = 1
        if store.tag_at(set_index, predicted) == tag:
            return LookupResult(
                hit=True,
                way=predicted,
                serialized_accesses=1,
                transfers=1,
                predicted_way=predicted,
            )
        for way in candidates:
            if way == predicted:
                continue
            probes += 1
            if store.tag_at(set_index, way) == tag:
                return LookupResult(
                    hit=True,
                    way=way,
                    serialized_accesses=probes,
                    transfers=probes,
                    predicted_way=predicted,
                )
        return LookupResult(
            hit=False,
            way=None,
            serialized_accesses=probes,
            transfers=probes,
            predicted_way=predicted,
        )


def make_lookup(kind: LookupKind):
    """Factory for lookup flows."""
    if kind is LookupKind.PARALLEL:
        return ParallelLookup()
    if kind is LookupKind.SERIAL:
        return SerialLookup()
    if kind is LookupKind.WAY_PREDICTED:
        return WayPredictedLookup()
    raise PolicyError(f"unknown lookup kind {kind!r}")
