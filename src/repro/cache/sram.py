"""On-chip SRAM caches (L1/L2/L3) for driving the DRAM cache with a
filtered miss stream.

The paper's experiments feed the DRAM cache with L3 miss traffic. Our
synthetic workloads generate that traffic directly, but the SRAM models
let integration tests and examples start from a raw CPU access stream
and reproduce the filtering effect (loss of temporal locality) that
makes MRU way prediction poor at the DRAM-cache level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.errors import PolicyError


@dataclass
class SramAccessResult:
    hit: bool
    evicted_dirty_addr: Optional[int]  # base address of a dirty victim, if any


class SramCache:
    """Set-associative writeback SRAM cache with true-LRU replacement."""

    def __init__(self, geometry: CacheGeometry, name: str = "sram"):
        self.geometry = geometry
        self.name = name
        # Per set: list of [tag, dirty] in LRU order (index 0 = LRU).
        self._sets = {}
        self.hits = 0
        self.misses = 0
        self.writebacks_out = 0

    def _set(self, index: int):
        entry = self._sets.get(index)
        if entry is None:
            entry = []
            self._sets[index] = entry
        return entry

    def access(self, addr: int, is_write: bool = False) -> SramAccessResult:
        """Access one line; fills on miss; returns dirty victim if evicted."""
        set_index, tag = self.geometry.split(addr)
        ways = self._set(set_index)
        for position, slot in enumerate(ways):
            if slot[0] == tag:
                self.hits += 1
                ways.append(ways.pop(position))  # move to MRU
                if is_write:
                    slot[1] = True
                return SramAccessResult(hit=True, evicted_dirty_addr=None)

        self.misses += 1
        victim_addr = None
        if len(ways) >= self.geometry.ways:
            victim_tag, victim_dirty = ways.pop(0)
            if victim_dirty:
                self.writebacks_out += 1
                victim_addr = self.geometry.addr_of(set_index, victim_tag)
        ways.append([tag, is_write])
        return SramAccessResult(hit=False, evicted_dirty_addr=victim_addr)

    def contains(self, addr: int) -> bool:
        set_index, tag = self.geometry.split(addr)
        return any(slot[0] == tag for slot in self._set(set_index))

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction given an instruction count."""
        if instructions <= 0:
            raise PolicyError("instruction count must be positive")
        return 1000.0 * self.misses / instructions
