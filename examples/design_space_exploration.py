#!/usr/bin/env python3
"""Design-space exploration: tune ACCORD's knobs for a target workload.

Sweeps the three ACCORD design parameters on one workload —

* PIP (preferred-way install probability),
* associativity with SWS (ways x 2 hashes),
* GWS table size (RIT/RLT entries)

— and reports the best configuration by estimated speedup over the
direct-mapped baseline, illustrating how a system architect would use
this library to specialize the design.

Usage:
    python examples/design_space_exploration.py [--workload soplex]
"""

import argparse

from repro import AccordDesign, TraceFactory, scaled_system
from repro.sim.runner import run_design
from repro.utils.tables import format_table


def evaluate(design, workload, traces, accesses):
    config = scaled_system(ways=design.ways)
    return run_design(design, workload, config=config, traces=traces,
                      num_accesses=accesses)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="soplex")
    parser.add_argument("--accesses", type=int, default=120_000)
    args = parser.parse_args()

    base_config = scaled_system(ways=1)
    traces = TraceFactory(base_config, num_accesses=args.accesses, seed=33)
    baseline = evaluate(AccordDesign(kind="direct", ways=1), args.workload,
                        traces, args.accesses)

    candidates = []
    for pip in (0.75, 0.85, 0.95):
        for ways in (2, 4, 8):
            for entries in (32, 64, 128):
                kind = "accord" if ways == 2 else "sws"
                candidates.append(AccordDesign(
                    kind=kind, ways=ways, pip=pip,
                    rit_entries=entries, rlt_entries=entries,
                ))

    rows = []
    best = None
    for design in candidates:
        result = evaluate(design, args.workload, traces, args.accesses)
        speedup = result.speedup_over(baseline)
        rows.append([
            design.display_name, f"{design.pip:.2f}", design.rit_entries,
            f"{result.hit_rate:.1%}", f"{result.prediction_accuracy:.1%}",
            f"{speedup:.3f}",
        ])
        if best is None or speedup > best[1]:
            best = (design, speedup)

    rows.sort(key=lambda r: float(r[-1]), reverse=True)
    print(format_table(
        ["design", "PIP", "RIT/RLT", "hit rate", "WP acc", "speedup"],
        rows[:12],
        title=f"Top ACCORD configurations for '{args.workload}' "
              f"({len(candidates)} evaluated)",
    ))
    design, speedup = best
    print(f"\nbest: {design.display_name} @ PIP={design.pip:.2f}, "
          f"{design.rit_entries}-entry tables -> {speedup:.3f}x")


if __name__ == "__main__":
    main()
