#!/usr/bin/env python3
"""Row-buffer micro-study on the cycle-level engines.

The paper's Figure 2(b) places all ways of one set in the same row
buffer so that checking a second way after a mispredict is a row-buffer
hit rather than a full activation. This study measures, on the
scheduler-driven detailed engine:

1. the latency gap between row-hit and row-miss access patterns,
2. how FR-FCFS latency grows as one channel's offered load rises —
   the congestion behaviour the interval timing model's queueing term
   approximates.

Usage:
    python examples/row_buffer_study.py
"""

from repro.params.system import scaled_system
from repro.sim.scheduled import ScheduledEngine
from repro.utils.charts import bar_chart, sparkline
from repro.utils.tables import format_table


def main() -> None:
    config = scaled_system(ways=1, scale=1.0 / 1024.0)

    # -- 1. Row-hit vs row-miss latency -----------------------------------
    hot = ScheduledEngine(config)
    hot_result = hot.replay_sets([0] * 400, arrival_interval_ns=80.0)
    cold = ScheduledEngine(config)
    # Stride across rows of a single bank: every access precharges.
    row_stride = 32 * 8 * 16  # sets per row x channels x banks
    cold_result = cold.replay_sets(
        [(i * row_stride) % (1 << 18) for i in range(400)],
        arrival_interval_ns=80.0,
    )
    print(format_table(
        ["pattern", "row-hit rate", "avg latency (ns)"],
        [
            ["same row (ways share a row buffer)",
             f"{hot_result.row_hit_rate:.2f}",
             f"{hot_result.avg_latency_ns:.1f}"],
            ["row-thrashing stride",
             f"{cold_result.row_hit_rate:.2f}",
             f"{cold_result.avg_latency_ns:.1f}"],
        ],
        title="1. Why SWS keeps the skew inside one row buffer",
    ))

    # -- 2. Latency vs offered load on one channel -------------------------
    sets = [(i % 16) * 32 * 8 for i in range(1000)]  # all on channel 0
    latencies = {}
    for interval in (20.0, 10.0, 6.0, 4.0, 3.0, 2.0):
        engine = ScheduledEngine(config)
        result = engine.replay_sets(list(sets), arrival_interval_ns=interval)
        load = 72.0 / interval  # offered bytes/ns on the channel
        latencies[f"{load:5.1f} B/ns"] = result.avg_latency_ns

    print()
    print(bar_chart(latencies, title="2. FR-FCFS latency vs offered load "
                                     "(one channel)", fmt="{:.1f}ns"))
    print(f"\ntrend: {sparkline(list(latencies.values()))}")
    print("The super-linear tail is the congestion the interval model's")
    print("M/M/1 queueing term reproduces for the full-suite sweeps.")


if __name__ == "__main__":
    main()
