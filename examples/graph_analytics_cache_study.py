#!/usr/bin/env python3
"""Case study: DRAM-cache design for graph analytics (GAP suite).

The paper's motivation: NVM-backed systems running irregular,
large-footprint workloads need DRAM-cache hit-rate, but graph kernels
have poor spatial locality, which breaks region-based predictors. This
study runs the six GAP workloads (pagerank / connected-components /
betweenness-centrality on twitter and web graphs) across four designs
and shows where each mechanism helps or fails:

* GWS alone mispredicts heavily (sparse regions -> RLT misses),
* PWS alone holds a steady ~PIP accuracy,
* combined ACCORD recovers robustness,
* SWS(8,2) adds associativity without miss-confirmation blowup.

Usage:
    python examples/graph_analytics_cache_study.py [--accesses N]
"""

import argparse

from repro import AccordDesign, TraceFactory, scaled_system
from repro.sim.runner import run_suite, speedups_vs_baseline
from repro.utils.tables import format_table

GAP_WORKLOADS = ["pr_twi", "cc_twi", "bc_twi", "pr_web", "cc_web", "bc_web"]

DESIGNS = {
    "GWS only": AccordDesign(kind="gws", ways=2),
    "PWS only": AccordDesign(kind="pws", ways=2),
    "ACCORD 2-way": AccordDesign(kind="accord", ways=2),
    "ACCORD SWS(8,2)": AccordDesign(kind="sws", ways=8, hashes=2),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=150_000)
    args = parser.parse_args()

    base_config = scaled_system(ways=1)
    traces = TraceFactory(base_config, num_accesses=args.accesses, seed=21)
    baseline = run_suite(
        AccordDesign(kind="direct", ways=1), GAP_WORKLOADS,
        config=base_config, traces=traces, num_accesses=args.accesses,
    )

    rows = []
    for label, design in DESIGNS.items():
        results = run_suite(
            design, GAP_WORKLOADS,
            config=scaled_system(ways=design.ways),
            traces=traces, num_accesses=args.accesses,
        )
        speedups = speedups_vs_baseline(results, baseline)
        for workload in GAP_WORKLOADS:
            result = results[workload]
            rows.append([
                label,
                workload,
                f"{result.hit_rate:.1%}",
                f"{result.prediction_accuracy:.1%}",
                f"{speedups[workload]:.3f}",
            ])
        rows.append(["-"] * 5)
    rows.pop()

    print(format_table(
        ["design", "workload", "hit rate", "WP accuracy", "speedup vs DM"],
        rows,
        title="DRAM-cache design study on GAP graph analytics",
    ))
    print("\nReading: GWS's RLT misses on sparse graph regions drop its")
    print("accuracy toward random; PWS's stateless bias keeps ~85%; the")
    print("combination is the paper's robustness argument (Section IV-C).")


if __name__ == "__main__":
    main()
