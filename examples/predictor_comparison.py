#!/usr/bin/env python3
"""Way-predictor bake-off: accuracy vs SRAM cost (Tables II and X).

Compares every predictor in the library — random, MRU, partial-tag,
CA-cache's implicit hash-rehash prediction, PWS, GWS, full ACCORD and
the perfect oracle — on a mixed mini-suite, and prints accuracy next to
what each would cost in SRAM at the paper's 4GB scale. The punchline is
the paper's: ACCORD's 320 bytes lands within a few points of the 32MB
partial-tag design.

Usage:
    python examples/predictor_comparison.py
"""

from repro import AccordDesign, CacheGeometry, TraceFactory, scaled_system
from repro.analysis.storage import predictor_storage_bytes
from repro.sim.runner import mean_prediction_accuracy, run_suite
from repro.utils.tables import format_table

SUITE = ["libq", "soplex", "mcf", "omnet"]
PAPER_GEOMETRY = CacheGeometry(4 * 1024 * 1024 * 1024, 2)

PREDICTORS = [
    ("Random", AccordDesign(kind="unbiased", ways=2), "rand"),
    ("CA-cache", AccordDesign(kind="ca", ways=1), "ca"),
    ("MRU", AccordDesign(kind="mru", ways=2), "mru"),
    ("Partial-tag (4b)", AccordDesign(kind="partial_tag", ways=2), "partial_tag"),
    ("PWS (stateless)", AccordDesign(kind="pws", ways=2), "pws"),
    ("GWS (RIT+RLT)", AccordDesign(kind="gws", ways=2), "gws"),
    ("ACCORD (PWS+GWS)", AccordDesign(kind="accord", ways=2), "accord"),
    ("Perfect (oracle)", AccordDesign(kind="perfect", ways=2), "rand"),
]


def pretty_bytes(n: int) -> str:
    if n == 0:
        return "0"
    if n >= 1024 * 1024:
        return f"{n // (1024 * 1024)}MB"
    if n >= 1024:
        return f"{n // 1024}KB"
    return f"{n}B"


def main() -> None:
    accesses = 120_000
    base_config = scaled_system(ways=1)
    traces = TraceFactory(base_config, num_accesses=accesses, seed=13)

    rows = []
    for label, design, storage_key in PREDICTORS:
        results = run_suite(
            design, SUITE,
            config=scaled_system(ways=design.ways),
            traces=traces, num_accesses=accesses,
        )
        accuracy = mean_prediction_accuracy(results)
        storage = predictor_storage_bytes(storage_key, PAPER_GEOMETRY)
        rows.append([label, f"{accuracy:.1%}", pretty_bytes(storage)])

    print(format_table(
        ["predictor", "accuracy (2-way)", "SRAM @ 4GB cache"],
        rows,
        title=f"Way-predictor comparison over {SUITE}",
    ))
    print("\nPaper reference (Table X): CA 85.2%, MRU 85.7%, partial-tag")
    print("97.3%, ACCORD 90.4% — at 0B / 4MB / 32MB / 320B respectively.")


if __name__ == "__main__":
    main()
