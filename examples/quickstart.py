#!/usr/bin/env python3
"""Quickstart: build an ACCORD DRAM cache and measure it on one workload.

Runs the paper's headline configuration — a 2-way ACCORD (PWS+GWS)
cache — against the libquantum-like workload, next to the direct-mapped
baseline, and prints hit-rate, way-prediction accuracy, estimated
speedup and the SRAM overhead that makes ACCORD practical.

Usage:
    python examples/quickstart.py
"""

import argparse

from repro import AccordDesign, TraceFactory, scaled_system
from repro.sim.runner import run_design

WORKLOAD = "libq"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=150_000)
    args = parser.parse_args()
    ACCESSES = args.accesses
    # One system config per associativity; traces depend only on the
    # cache capacity, so both designs replay the identical trace.
    base_config = scaled_system(ways=1)
    traces = TraceFactory(base_config, num_accesses=ACCESSES, seed=7)

    baseline = run_design(
        AccordDesign(kind="direct", ways=1),
        WORKLOAD,
        config=base_config,
        traces=traces,
    )
    accord = run_design(
        AccordDesign(kind="accord", ways=2),
        WORKLOAD,
        config=scaled_system(ways=2),
        traces=traces,
    )

    print(f"workload: {WORKLOAD} ({ACCESSES} L3-miss-level accesses)")
    print(f"cache: {base_config.dram_cache.capacity_bytes // 2**20}MB "
          f"(paper 4GB scaled by {base_config.scale:.5f})")
    print()
    print(f"{'':24s}{'direct-mapped':>16s}{'ACCORD 2-way':>16s}")
    print(f"{'hit rate':24s}{baseline.hit_rate:>15.1%}{accord.hit_rate:>15.1%}")
    print(f"{'way-pred accuracy':24s}{'n/a':>16s}{accord.prediction_accuracy:>15.1%}")
    print(f"{'runtime (ms/core)':24s}"
          f"{baseline.runtime_ns / 1e6:>15.2f}{accord.runtime_ns / 1e6:>15.2f}")
    print(f"{'speedup':24s}{'1.000':>16s}"
          f"{accord.speedup_over(baseline):>15.3f}")

    # ACCORD's entire SRAM budget (Table IX): the GWS region tables.
    from repro.sim.system import build_dram_cache

    cache = build_dram_cache(AccordDesign(kind="accord", ways=2),
                             scaled_system(ways=2))
    print(f"\nACCORD SRAM overhead: {cache.storage_overhead_bits() // 8} bytes")


if __name__ == "__main__":
    main()
