#!/usr/bin/env python3
"""Shared-cache contention study with the true multi-core simulator.

The paper evaluates mixes in rate mode analytically; this example uses
:class:`repro.sim.multicore.MultiCoreSimulator` to interleave four
*different* benchmarks through one shared DRAM cache, showing:

* per-core hit-rate and way-prediction accuracy under contention,
* the weighted speedup of ACCORD SWS(8,2) over the direct-mapped
  baseline when cores with very different locality share the cache.

Usage:
    python examples/mix_contention_study.py [--accesses N]
"""

import argparse

from repro.core.accord import AccordDesign
from repro.params.system import scaled_system
from repro.sim.multicore import MultiCoreSimulator
from repro.utils.tables import format_table
from repro.workloads.spec import get_workload
from repro.workloads.synthetic import SyntheticWorkload

MEMBERS = ["soplex", "libq", "mcf", "sphinx"]
SCALE = 1.0 / 128.0


def build_traces(accesses, capacity):
    traces = []
    for index, name in enumerate(MEMBERS):
        spec = get_workload(name).scaled(SCALE)
        generator = SyntheticWorkload(
            spec, capacity, seed=17, addr_base=index * (1 << 16) * capacity
        )
        traces.append(generator.generate(accesses))
    return traces


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=60_000,
                        help="accesses per core")
    args = parser.parse_args()

    config2 = scaled_system(ways=2, scale=SCALE)
    config8 = scaled_system(ways=8, scale=SCALE)
    config1 = scaled_system(ways=1, scale=SCALE)
    traces = build_traces(args.accesses, config1.dram_cache.capacity_bytes)

    baseline = MultiCoreSimulator(
        config1, AccordDesign(kind="direct", ways=1), seed=17
    ).run(traces, warmup_fraction=0.4)
    accord = MultiCoreSimulator(
        config2, AccordDesign(kind="accord", ways=2), seed=17
    ).run(traces, warmup_fraction=0.4)
    sws = MultiCoreSimulator(
        config8, AccordDesign(kind="sws", ways=8, hashes=2), seed=17
    ).run(traces, warmup_fraction=0.4)

    rows = []
    for core, name in enumerate(MEMBERS):
        rows.append([
            name,
            f"{baseline.per_core_stats[core].hit_rate:.1%}",
            f"{accord.per_core_stats[core].hit_rate:.1%}",
            f"{accord.per_core_stats[core].prediction_accuracy:.1%}",
            f"{sws.per_core_stats[core].hit_rate:.1%}",
        ])
    print(format_table(
        ["core workload", "DM hit", "ACCORD-2 hit", "ACCORD-2 WP acc",
         "SWS(8,2) hit"],
        rows,
        title=f"Per-core behaviour, 4 cores sharing one "
              f"{config1.dram_cache.capacity_bytes // 2**20}MB cache",
    ))
    print(f"\nweighted speedup  ACCORD 2-way: "
          f"{accord.weighted_speedup_over(baseline):.3f}")
    print(f"weighted speedup  ACCORD SWS(8,2): "
          f"{sws.weighted_speedup_over(baseline):.3f}")


if __name__ == "__main__":
    main()
