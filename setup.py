"""Legacy shim: this environment lacks the `wheel` package, so editable
installs go through `setup.py develop` instead of PEP 517."""
from setuptools import setup

setup()
