"""Shared benchmark machinery.

Each benchmark regenerates one paper table/figure end-to-end (trace
generation -> functional simulation -> timing model -> formatted
report) and prints the report so `pytest benchmarks/ --benchmark-only`
doubles as the reproduction harness.

Benchmarks run with a reduced trace length (shorter than the experiments'
default) to keep the whole suite in minutes; run the experiment modules
directly (`python -m repro.experiments.<name>`) for full-length runs.
"""

import os

import pytest

from repro.experiments.common import Settings

#: Trace length per benchmark. CI's smoke job shrinks it via the
#: environment (quick mode); local runs keep the full default.
BENCH_ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", 40_000))


@pytest.fixture(autouse=True)
def _isolated_result_store(tmp_path, monkeypatch):
    """Benchmarks measure simulation time, so each gets a cold,
    throwaway result store instead of the user's warm ~/.cache/repro."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "repro-results"))


@pytest.fixture
def bench_settings():
    return Settings(num_accesses=BENCH_ACCESSES)


@pytest.fixture
def run_report(benchmark, capsys):
    """Benchmark an experiment's run() once and print its report."""

    def _run(func, *args, **kwargs):
        report = benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(report)
        return report

    return _run
