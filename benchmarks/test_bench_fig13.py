"""Benchmark: regenerate Figure 13 (SWS speedups)."""

from repro.experiments import fig13_sws_speedup


def test_fig13_sws_speedup(run_report, bench_settings):
    report = run_report(fig13_sws_speedup.run, bench_settings)
    assert "ACCORD SWS(8,2)" in report
