"""Benchmark: regenerate Table V (PWS sensitivity to PIP)."""

from repro.experiments import table5_pip


def test_table5_pip(run_report, bench_settings):
    report = run_report(table5_pip.run, bench_settings)
    assert "PIP=85%" in report
