"""Benchmark: regenerate Figure 15 (energy / power / EDP)."""

from repro.experiments import fig15_energy


def test_fig15_energy(run_report, bench_settings):
    report = run_report(fig15_energy.run, bench_settings)
    assert "EDP" in report
