"""Benchmark: regenerate Table IV (workload characteristics)."""

from repro.experiments import table4_workloads


def test_table4_workloads(run_report, bench_settings):
    report = run_report(table4_workloads.run, bench_settings)
    assert "soplex" in report and "nekbone" in report
