"""Benchmark: regenerate Figure 14 (predictor speedups)."""

from repro.experiments import fig14_predictor_speedup


def test_fig14_predictor_speedup(run_report, bench_settings):
    report = run_report(fig14_predictor_speedup.run, bench_settings)
    assert "Partial-Tag (32MB)" in report
