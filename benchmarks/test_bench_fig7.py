"""Benchmark: regenerate Figure 7 (way-prediction accuracy)."""

from repro.experiments import fig7_accuracy


def test_fig7_accuracy(run_report, bench_settings):
    report = run_report(fig7_accuracy.run, bench_settings)
    assert "PWS+GWS" in report
