"""Benchmark: regenerate Table I (lookup cost model)."""

from repro.experiments import table1_lookup_cost


def test_table1_lookup_cost(run_report):
    report = run_report(table1_lookup_cost.run, ways=4)
    assert "Serial Lookup (4-way)" in report
