"""Benchmark: run the ablation studies (replacement, GWS tables,
region size, SWS hash count, ACCORD without SWS)."""

from repro.experiments import ablations


def test_ablation_replacement(run_report, bench_settings):
    report = run_report(ablations.run, bench_settings, which=["replacement"])
    assert "lru" in report


def test_ablation_gws_tables(run_report, bench_settings):
    report = run_report(ablations.run, bench_settings, which=["rit-rlt-size"])
    assert "64" in report


def test_ablation_region_size(run_report, bench_settings):
    report = run_report(ablations.run, bench_settings, which=["region-size"])
    assert "4096B" in report


def test_ablation_sws_hashes(run_report, bench_settings):
    report = run_report(ablations.run, bench_settings, which=["sws-hashes"])
    assert "SWS(8,2)" in report


def test_ablation_no_sws(run_report, bench_settings):
    report = run_report(ablations.run, bench_settings, which=["higher-ways-no-sws"])
    assert "8-way" in report


def test_ablation_dueling_pip(run_report, bench_settings):
    report = run_report(ablations.run, bench_settings, which=["dueling-pip"])
    assert "dueling" in report


def test_ablation_dcp_modes(run_report, bench_settings):
    report = run_report(ablations.run, bench_settings, which=["dcp-modes"])
    assert "probe accesses per writeback" in report
