"""Benchmark: regenerate Table VI (hit-rate under way steering)."""

from repro.experiments import table6_hitrate


def test_table6_hitrate(run_report, bench_settings):
    report = run_report(table6_hitrate.run, bench_settings)
    assert "Direct-mapped" in report
