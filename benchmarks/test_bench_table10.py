"""Benchmark: regenerate Table X (way-predictor comparison)."""

from repro.experiments import table10_predictors


def test_table10_predictors(run_report, bench_settings):
    report = run_report(table10_predictors.run, bench_settings)
    assert "CA-Cache" in report and "ACCORD" in report
