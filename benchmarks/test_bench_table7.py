"""Benchmark: regenerate Table VII (SWS hit-rates)."""

from repro.experiments import table7_sws_hitrate


def test_table7_sws(run_report, bench_settings):
    report = run_report(table7_sws_hitrate.run, bench_settings)
    assert "SWS (8,2-way)" in report
