"""Benchmark: regenerate Figure 10 (2-way design speedups)."""

from repro.experiments import fig10_speedup_2way


def test_fig10_speedup(run_report, bench_settings):
    report = run_report(fig10_speedup_2way.run, bench_settings)
    assert "Perfect WP" in report and "Gmean" in report
