"""Benchmark: the sweep engine — parallel fan-out and warm-store replay."""

from repro.core.accord import AccordDesign
from repro.exec import Executor, JobKey, ResultStore

from conftest import BENCH_ACCESSES

WORKLOADS = ("soplex", "libq", "mcf", "sphinx")
DESIGNS = (
    AccordDesign(kind="direct", ways=1),
    AccordDesign(kind="accord", ways=2),
)


def _keys():
    return [
        JobKey(design=design, workload=workload, num_accesses=BENCH_ACCESSES)
        for design in DESIGNS
        for workload in WORKLOADS
    ]


def test_parallel_sweep(benchmark):
    def run():
        return Executor(jobs=4).run(_keys())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) == len(_keys())


def test_warm_store_replay(benchmark, tmp_path):
    root = tmp_path / "store"
    Executor(jobs=1, store=ResultStore(root)).run(_keys())  # populate, unmeasured

    def warm():
        executor = Executor(jobs=1, store=ResultStore(root))
        resolved = executor.run(_keys())
        assert executor.stats.executed == 0
        return resolved

    results = benchmark.pedantic(warm, rounds=3, iterations=1)
    assert len(results) == len(_keys())
