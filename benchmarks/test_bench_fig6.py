"""Benchmark: regenerate Figure 6 (cyclic kernel vs PIP)."""

from repro.experiments import fig6_cyclic


def test_fig6_cyclic(run_report):
    report = run_report(fig6_cyclic.run, trials=16)
    assert "PIP=90%" in report
