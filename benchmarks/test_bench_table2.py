"""Benchmark: regenerate Table II (predictor accuracy and storage)."""

from repro.experiments import table2_predictor_storage


def test_table2_predictors(run_report, bench_settings):
    report = run_report(table2_predictor_storage.run, bench_settings)
    assert "32MB" in report
