"""Benchmark: shared-cache multi-core mix contention (extension).

Not a paper artifact — exercises the true multi-core simulator on a
4-benchmark mix and reports weighted speedup of ACCORD designs.
"""

from repro.core.accord import AccordDesign
from repro.params.system import scaled_system
from repro.sim.multicore import MultiCoreSimulator
from repro.workloads.spec import get_workload
from repro.workloads.synthetic import SyntheticWorkload

MEMBERS = ["soplex", "libq", "mcf", "sphinx"]
SCALE = 1.0 / 128.0


def _run():
    config1 = scaled_system(ways=1, scale=SCALE)
    capacity = config1.dram_cache.capacity_bytes
    traces = []
    for index, name in enumerate(MEMBERS):
        spec = get_workload(name).scaled(SCALE / 16.0)  # single copies
        generator = SyntheticWorkload(
            spec, capacity, seed=17, addr_base=index * (1 << 16) * capacity
        )
        traces.append(generator.generate(40_000))
    base = MultiCoreSimulator(
        config1, AccordDesign(kind="direct", ways=1), seed=17
    ).run(traces, warmup_fraction=0.4)
    sws = MultiCoreSimulator(
        scaled_system(ways=8, scale=SCALE),
        AccordDesign(kind="sws", ways=8, hashes=2), seed=17,
    ).run(traces, warmup_fraction=0.4)
    return (
        f"multi-core mix {MEMBERS}: ACCORD SWS(8,2) weighted speedup "
        f"{sws.weighted_speedup_over(base):.3f}, combined hit "
        f"{sws.combined_hit_rate():.3f} vs DM {base.combined_hit_rate():.3f}"
    )


def test_multicore_mix(run_report):
    report = run_report(_run)
    assert "weighted speedup" in report
