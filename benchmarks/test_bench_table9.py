"""Benchmark: regenerate Table IX (ACCORD storage)."""

from repro.experiments import table9_storage


def test_table9_storage(run_report):
    report = run_report(table9_storage.run)
    assert "320 Bytes" in report
