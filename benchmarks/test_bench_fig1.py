"""Benchmark: regenerate Figure 1 (associativity vs hit-rate/speedup)."""

from repro.experiments import fig1_associativity


def test_fig1_associativity(run_report, bench_settings):
    report = run_report(fig1_associativity.run, bench_settings)
    assert "8-way" in report
