"""Benchmark: regenerate Figure 12 (all 46 workloads)."""

from repro.experiments import fig12_all_workloads


def test_fig12_all_workloads(run_report, bench_settings):
    report = run_report(fig12_all_workloads.run, bench_settings)
    assert "46 workloads" in report
    assert "worst-case" in report
