"""Benchmark: regenerate Table VIII (cache-size sensitivity)."""

from repro.experiments import table8_cache_size


def test_table8_cache_size(run_report, bench_settings):
    report = run_report(table8_cache_size.run, bench_settings)
    assert "1.0GB" in report and "8.0GB" in report
