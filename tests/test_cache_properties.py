"""Stateful property-based tests on DRAM-cache invariants.

A hypothesis state machine drives an ACCORD cache with arbitrary
interleavings of reads and writebacks, checking after every step that:

* a line just read is resident, in a way its steering policy allows;
* the DCP directory exactly mirrors residency (exact directory mode);
* counters satisfy their accounting identities.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cache.geometry import CacheGeometry
from repro.core.accord import AccordDesign, make_design

_CAPACITY = 64 * 1024
_NUM_LINES = _CAPACITY // 64
# Address pool spans 4x the cache so evictions and conflicts happen.
_ADDRS = st.integers(min_value=0, max_value=4 * _NUM_LINES - 1)


class DramCacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        geometry = CacheGeometry(_CAPACITY, 2)
        self.cache = make_design(AccordDesign(kind="accord", ways=2), geometry, seed=9)
        self.geometry = geometry
        self.resident_model = {}  # line -> True (mirror of expected residency)

    @rule(line=_ADDRS)
    def read(self, line):
        addr = line * 64
        outcome = self.cache.read(addr)
        # After a read the line is resident, whatever the outcome was.
        assert self.cache.contains(addr)
        way = self.cache.resident_way(addr)
        set_index, tag = self.geometry.split(addr)
        assert way in self.cache.steering.candidate_ways(set_index, tag)
        if outcome.hit:
            assert not outcome.nvm_read

    @rule(line=_ADDRS)
    def writeback(self, line):
        addr = line * 64
        was_resident = self.cache.contains(addr)
        absorbed = self.cache.writeback(addr)
        assert absorbed == was_resident
        if absorbed:
            set_index, _ = self.geometry.split(addr)
            assert self.cache.store.is_dirty(set_index, self.cache.resident_way(addr))

    @invariant()
    def counters_consistent(self):
        stats = self.cache.stats
        assert stats.hits + stats.misses == stats.demand_reads
        assert stats.misses == stats.installs == stats.nvm_reads
        assert stats.correct_predictions <= stats.predicted_hits <= stats.hits
        assert stats.first_probes == stats.demand_reads
        assert stats.writeback_direct + stats.writeback_bypass == stats.writebacks_in

    @invariant()
    def dcp_mirrors_store(self):
        # Every DCP entry points at a slot whose tag matches the line.
        dcp = self.cache.dcp
        for line_addr, way in list(dcp._way_of.items())[:32]:
            addr = line_addr * 64
            set_index, tag = self.geometry.split(addr)
            assert self.cache.store.tag_at(set_index, way) == tag


DramCacheMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestDramCacheStateMachine = DramCacheMachine.TestCase
