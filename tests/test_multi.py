"""Fused multi-config kernel: bit-identity against solo vector drives.

The fused kernel's whole contract is that evaluating K same-signature
configs in one pass decodes into K results *byte-identical* to K
separate :class:`~repro.sim.engines.vector.VectorEngine` runs. These
tests drive both paths over the same traces — including phase-resolved
runs — and compare the full stats dictionaries.
"""

import pytest

from repro.cache.dram_cache import lazy_tag_stores
from repro.core.accord import AccordDesign
from repro.core.sws import SkewedWaySteering
from repro.params.system import scaled_system
from repro.sim.engines import TraceStream, serial_segments
from repro.sim.engines.multi import (
    FusedRun,
    drive_fused,
    fused_pass_count,
    fusion_plan,
    plan_signature,
)
from repro.sim.engines.vector import VectorEngine
from repro.sim.runner import TraceFactory
from repro.sim.system import build_dram_cache
from repro.core.protocols import ensure_policy_conformance
from repro.utils.rng import XorShift64

ACCESSES = 5000
SCALE = 1.0 / 128.0
SEED = 7
WARMUP = 0.3


def _design_builder(design):
    def build():
        config = scaled_system(ways=design.ways, scale=SCALE)
        return build_dram_cache(design, config, seed=SEED)

    return build


def _sws_builder(pip, rng_seed=123):
    """Standalone skewed-way steering (the GWS wrapper declines the
    kernel); exercises the candidate-matrix scan path."""

    def build():
        design = AccordDesign(kind="serial", ways=4)
        config = scaled_system(ways=4, scale=SCALE)
        cache = build_dram_cache(design, config, seed=SEED)
        cache.steering = SkewedWaySteering(
            cache.geometry, hashes=2, pip=pip, rng=XorShift64(rng_seed)
        )
        ensure_policy_conformance(cache)
        return cache

    return build


# Same-signature groups: every member shares control flow, so one
# fused pass covers the group. The pws/partial-tag groups exercise the
# m == 2 scan fast path, the ways=4 groups the generic block-gather
# path, and the sws group the candidate-matrix scan.
GROUPS = (
    ("pws-pips", [
        _design_builder(AccordDesign(kind="pws", ways=2, pip=0.2)),
        _design_builder(AccordDesign(kind="pws", ways=2, pip=0.5)),
        _design_builder(AccordDesign(kind="pws", ways=2, pip=0.95)),
    ]),
    ("sws-standalone", [
        _sws_builder(0.9),
        _sws_builder(0.6),
    ]),
    ("unbiased-4way", [
        _design_builder(AccordDesign(kind="unbiased", ways=4)),
        _design_builder(
            AccordDesign(kind="unbiased", ways=4, label="twin")
        ),
    ]),
    ("partial-tag", [
        _design_builder(
            AccordDesign(kind="partial_tag", ways=2, partial_tag_bits=4)
        ),
        _design_builder(
            AccordDesign(kind="partial_tag", ways=2, partial_tag_bits=6)
        ),
    ]),
    ("serial-flow", [
        _design_builder(AccordDesign(kind="serial", ways=4)),
        _design_builder(
            AccordDesign(kind="serial", ways=4, label="twin")
        ),
    ]),
)


def _trace(workload="soplex"):
    config = scaled_system(ways=1, scale=SCALE)
    return TraceFactory(config, ACCESSES, SEED).trace_for(workload)


def _solo(builder, trace, epoch=None):
    cache = builder()
    warm = int(len(trace) * WARMUP)
    segments = serial_segments(trace, warm, epoch)
    stream = TraceStream(trace, cache.geometry)
    phases = VectorEngine().drive(cache, stream, warm, segments, epoch)
    return cache.stats, phases


def _fused(builders, trace, epoch=None):
    caches = [b() for b in builders]
    plans = [fusion_plan(c) for c in caches]
    assert all(p is not None for p in plans)
    assert len({plan_signature(p) for p in plans}) == 1
    warm = int(len(trace) * WARMUP)
    runs = [
        FusedRun(
            plan=plan,
            warm=warm,
            segments=serial_segments(trace, warm, epoch),
            epoch=epoch,
        )
        for plan in plans
    ]
    geometry = caches[0].geometry
    return drive_fused(runs, TraceStream(trace, geometry), geometry)


class TestFusedBitIdentity:
    @pytest.mark.parametrize(
        "builders", [g[1] for g in GROUPS], ids=[g[0] for g in GROUPS]
    )
    def test_group_matches_solo_vector(self, builders):
        trace = _trace()
        fused = _fused(builders, trace)
        for builder, (stats, phases) in zip(builders, fused):
            solo_stats, solo_phases = _solo(builder, trace)
            assert stats.to_dict() == solo_stats.to_dict()
            assert phases is None and solo_phases is None

    def test_phase_series_identical(self):
        builders = GROUPS[0][1]
        trace = _trace("mix2")
        fused = _fused(builders, trace, epoch=500)
        for builder, (stats, phases) in zip(builders, fused):
            solo_stats, solo_phases = _solo(builder, trace, epoch=500)
            assert stats.to_dict() == solo_stats.to_dict()
            assert phases.to_dict() == solo_phases.to_dict()

    def test_k1_degenerates_to_solo(self):
        builder = _design_builder(AccordDesign(kind="pws", ways=2, pip=0.5))
        trace = _trace()
        before = fused_pass_count()[0]
        (stats, phases), = _fused([builder], trace)
        solo_stats, _ = _solo(builder, trace)
        assert stats.to_dict() == solo_stats.to_dict()
        # a single run is not a fused pass
        assert fused_pass_count()[0] == before

    def test_fused_pass_counter_advances(self):
        builders = GROUPS[0][1]
        trace = _trace()
        passes, configs = fused_pass_count()
        _fused(builders, trace)
        after_passes, after_configs = fused_pass_count()
        assert after_passes == passes + 1
        assert after_configs == configs + len(builders)


class TestPlanSignature:
    def test_swept_parameter_shares_signature(self):
        a = fusion_plan(
            _design_builder(AccordDesign(kind="pws", ways=2, pip=0.2))()
        )
        b = fusion_plan(
            _design_builder(AccordDesign(kind="pws", ways=2, pip=0.9))()
        )
        assert plan_signature(a) == plan_signature(b)

    def test_control_flow_splits_signature(self):
        pws = fusion_plan(
            _design_builder(AccordDesign(kind="pws", ways=2))()
        )
        serial = fusion_plan(
            _design_builder(AccordDesign(kind="serial", ways=2))()
        )
        mru = fusion_plan(
            _design_builder(AccordDesign(kind="mru", ways=2))()
        )
        signatures = {plan_signature(p) for p in (pws, serial, mru)}
        assert len(signatures) == 3


class TestLazyTagStore:
    def test_vector_build_skips_store_allocation(self):
        design = AccordDesign(kind="pws", ways=2, pip=0.5)
        config = scaled_system(ways=2, scale=SCALE)
        with lazy_tag_stores():
            cache = build_dram_cache(design, config, seed=SEED)
        assert "store" not in cache.__dict__
        # planning and fused driving never materialize it
        plan = fusion_plan(cache)
        assert plan is not None
        assert "store" not in cache.__dict__

    def test_scalar_touch_materializes_prefilled_store(self):
        design = AccordDesign(kind="pws", ways=2, pip=0.5)
        config = scaled_system(ways=2, scale=SCALE)
        with lazy_tag_stores():
            cache = build_dram_cache(design, config, seed=SEED)
        eager = build_dram_cache(design, config, seed=SEED)
        store = cache.store  # first touch materializes
        assert "store" in cache.__dict__
        assert store.dense == eager.store.dense
        assert store.valid_lines == eager.store.valid_lines
        assert store.valid_lines == cache.geometry.num_lines

    def test_flag_restored_outside_context(self):
        design = AccordDesign(kind="pws", ways=2, pip=0.5)
        config = scaled_system(ways=2, scale=SCALE)
        cache = build_dram_cache(design, config, seed=SEED)
        assert "store" in cache.__dict__
