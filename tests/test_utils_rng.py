"""Unit tests for the deterministic RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import XorShift64, mix64


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = XorShift64(42)
        b = XorShift64(42)
        assert [a.next_u64() for _ in range(100)] == [b.next_u64() for _ in range(100)]

    def test_different_seeds_differ(self):
        a = XorShift64(1)
        b = XorShift64(2)
        assert [a.next_u64() for _ in range(10)] != [b.next_u64() for _ in range(10)]

    def test_zero_seed_does_not_degenerate(self):
        rng = XorShift64(0)
        values = {rng.next_u64() for _ in range(50)}
        assert len(values) == 50

    def test_snapshot_restore(self):
        rng = XorShift64(7)
        rng.next_u64()
        state = rng.getstate()
        first = [rng.next_u64() for _ in range(5)]
        rng.setstate(state)
        assert [rng.next_u64() for _ in range(5)] == first


class TestFork:
    def test_forks_are_independent(self):
        parent = XorShift64(9)
        c0 = parent.fork(0)
        c1 = parent.fork(1)
        assert [c0.next_u64() for _ in range(5)] != [c1.next_u64() for _ in range(5)]

    def test_fork_does_not_consume_parent(self):
        a = XorShift64(9)
        b = XorShift64(9)
        a.fork(3)
        assert a.next_u64() == b.next_u64()


class TestDistributions:
    def test_float_range(self):
        rng = XorShift64(5)
        for _ in range(1000):
            value = rng.next_float()
            assert 0.0 <= value < 1.0

    def test_float_mean_reasonable(self):
        rng = XorShift64(5)
        mean = sum(rng.next_float() for _ in range(20000)) / 20000
        assert 0.48 < mean < 0.52

    def test_below_range(self):
        rng = XorShift64(5)
        for _ in range(1000):
            assert 0 <= rng.next_below(7) < 7

    def test_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            XorShift64(1).next_below(0)

    def test_bool_probability(self):
        rng = XorShift64(5)
        hits = sum(rng.next_bool(0.85) for _ in range(20000))
        assert 0.83 < hits / 20000 < 0.87

    def test_bool_extremes(self):
        rng = XorShift64(5)
        assert not any(rng.next_bool(0.0) for _ in range(100))
        assert all(rng.next_bool(1.0) for _ in range(100))

    def test_bool_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            XorShift64(1).next_bool(1.5)

    def test_choice(self):
        rng = XorShift64(5)
        items = ["a", "b", "c"]
        seen = {rng.choice(items) for _ in range(100)}
        assert seen == {"a", "b", "c"}

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            XorShift64(1).choice([])


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_avalanche(self):
        # Flipping one input bit should flip roughly half the output bits.
        diff = mix64(1000) ^ mix64(1001)
        assert 16 <= bin(diff).count("1") <= 48

    @given(st.integers(min_value=0, max_value=2**63))
    def test_64bit_range(self, value):
        assert 0 <= mix64(value) < (1 << 64)
