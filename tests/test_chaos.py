"""End-to-end chaos tests: seeded fault plans against real sweeps.

Every test drives a genuine designs x workloads batch through the
executor while an injected :class:`FaultPlan` crashes, hangs, and
corrupts things, then asserts the final results are *bit-identical* to
a fault-free serial baseline — the property the whole resilience stack
exists to protect.

Each test embeds its own ``dir=`` ledger path in the plan spec: the
ledger shares fault budgets across worker processes, and the unique
spec string defeats the per-spec plan cache between tests.
"""

import pytest

from repro.core.accord import AccordDesign
from repro.exec import (
    BackoffPolicy,
    Executor,
    JobKey,
    ResultStore,
    SweepJournal,
)
from repro.exec.faults import FAULT_PLAN_ENV

ACCESSES = 3000

DESIGNS = (
    AccordDesign(kind="direct", ways=1),
    AccordDesign(kind="accord", ways=2),
)
WORKLOADS = ("soplex", "libq", "mcf", "sphinx")


def all_keys():
    return [
        JobKey(design=d, workload=w, num_accesses=ACCESSES, warmup=0.3, seed=7)
        for d in DESIGNS
        for w in WORKLOADS
    ]


@pytest.fixture(scope="module")
def baseline():
    """Fault-free serial reference results, computed once."""
    results = Executor(jobs=1).run(all_keys())
    return {key: result.to_dict() for key, result in results.items()}


def fast_backoff():
    return BackoffPolicy(base=0.01, max_delay=0.05)


@pytest.fixture
def isolated_traces(tmp_path, monkeypatch):
    """Chaos runs corrupt trace-cache entries; keep them off the shared
    per-session trace directory. The in-process trace memo is cleared
    too, else runs after the baseline never touch the disk cache (and
    forked workers would inherit the warm memo)."""
    from repro.exec import jobs as jobs_module

    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    jobs_module._FACTORY_CACHE.clear()
    yield tmp_path
    jobs_module._FACTORY_CACHE.clear()


class TestChaos:
    def test_mixed_faults_bit_identical(
        self, isolated_traces, monkeypatch, baseline
    ):
        tmp = isolated_traces
        ledger = tmp / "ledger"
        monkeypatch.setenv(
            FAULT_PLAN_ENV,
            f"seed=13;dir={ledger};crash=2;os_error=2;disk_full=1;"
            "corrupt_store=1;truncate_trace=1",
        )
        ex = Executor(
            jobs=2, store=ResultStore(tmp / "results"), retries=6,
            backoff=fast_backoff(),
        )
        resolved = ex.run(all_keys())
        assert {k: r.to_dict() for k, r in resolved.items()} == baseline
        fired = {slot.name.rsplit(".", 1)[0] for slot in ledger.iterdir()}
        assert len(fired) >= 4  # the chaos actually happened
        assert "crash" in fired

    def test_hung_worker_killed_and_rescheduled(
        self, isolated_traces, monkeypatch, baseline
    ):
        tmp = isolated_traces
        monkeypatch.setenv(
            FAULT_PLAN_ENV, f"hang=1;hang_secs=60;dir={tmp / 'ledger'}"
        )
        ex = Executor(
            jobs=2, store=ResultStore(tmp / "results"), retries=3,
            timeout=2.0, poll_interval=0.1, backoff=fast_backoff(),
        )
        resolved = ex.run(all_keys())
        assert ex.stats.timeouts >= 1  # the watchdog fired, not the hang
        assert {k: r.to_dict() for k, r in resolved.items()} == baseline

    def test_crash_charges_only_dead_workers_jobs(
        self, isolated_traces, monkeypatch, baseline
    ):
        tmp = isolated_traces
        monkeypatch.setenv(FAULT_PLAN_ENV, f"crash=1;dir={tmp / 'ledger'}")
        ex = Executor(
            jobs=2, store=ResultStore(tmp / "results"), retries=3,
            backoff=fast_backoff(),
        )
        resolved = ex.run(all_keys())
        assert ex.stats.pool_breaks == 1
        # Only the dead worker's in-flight jobs are charged a retry —
        # never the whole 8-job batch.
        assert 1 <= ex.stats.retried <= 2
        assert {k: r.to_dict() for k, r in resolved.items()} == baseline

    def test_corrupted_store_entry_quarantined_and_rerun(
        self, isolated_traces, monkeypatch, baseline
    ):
        tmp = isolated_traces
        monkeypatch.setenv(
            FAULT_PLAN_ENV, f"corrupt_store=1;dir={tmp / 'ledger'}"
        )
        Executor(jobs=1, store=ResultStore(tmp / "results")).run(all_keys())
        monkeypatch.delenv(FAULT_PLAN_ENV)

        warm_store = ResultStore(tmp / "results")
        ex = Executor(jobs=1, store=warm_store)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            resolved = ex.run(all_keys())
        assert ex.stats.executed == 1  # only the corrupted entry re-ran
        assert ex.stats.cached == len(all_keys()) - 1
        assert warm_store.stats.quarantined == 1
        qdir = tmp / "results" / "quarantine"
        assert any(qdir.glob("*.why"))
        assert {k: r.to_dict() for k, r in resolved.items()} == baseline

    def test_truncated_trace_quarantined_and_regenerated(
        self, isolated_traces, monkeypatch, baseline
    ):
        from repro.exec import jobs as jobs_module

        tmp = isolated_traces
        monkeypatch.setenv(
            FAULT_PLAN_ENV, f"truncate_trace=1;dir={tmp / 'ledger'}"
        )
        Executor(jobs=1, store=ResultStore(tmp / "r1")).run(all_keys())
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert (tmp / "ledger" / "truncate_trace.0").exists()

        # A fresh process would re-read the (truncated) on-disk trace;
        # clearing the in-process trace memo stands in for that here.
        jobs_module._FACTORY_CACHE.clear()
        ex = Executor(jobs=1, store=ResultStore(tmp / "r2"))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            resolved = ex.run(all_keys())
        assert any((tmp / "traces" / "quarantine").glob("*.why"))
        assert {k: r.to_dict() for k, r in resolved.items()} == baseline


class TestResume:
    def test_resume_finishes_partial_sweep(
        self, isolated_traces, baseline
    ):
        tmp = isolated_traces
        keys = all_keys()
        path = tmp / "sweep.journal.jsonl"
        first = SweepJournal(path)
        first.begin(keys)
        # No store: the journal is the only record, as after a crash on
        # a machine whose store was lost.
        interrupted = Executor(jobs=1, journal=first)
        interrupted.run(keys[:3])  # "killed" 3 jobs in

        second = SweepJournal(path)
        assert second.load() == 3
        ex = Executor(jobs=1, journal=second)
        resolved = ex.run(keys)
        assert ex.stats.resumed == 3
        assert ex.stats.executed == len(keys) - 3
        assert {k: r.to_dict() for k, r in resolved.items()} == baseline

    def test_journal_lookup_survives_process_restart(
        self, isolated_traces, baseline
    ):
        tmp = isolated_traces
        keys = all_keys()
        path = tmp / "sweep.journal.jsonl"
        journal = SweepJournal(path)
        journal.begin(keys)
        Executor(jobs=2, journal=journal, backoff=fast_backoff()).run(keys)

        reloaded = SweepJournal(path)
        assert reloaded.load() == len(keys)
        ex = Executor(jobs=1, journal=reloaded)
        resolved = ex.run(keys)
        assert ex.stats.resumed == len(keys)
        assert ex.stats.executed == 0
        assert {k: r.to_dict() for k, r in resolved.items()} == baseline
