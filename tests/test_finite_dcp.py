"""Tests for the finite (L3-co-located) DCP directory and its effect on
the writeback path."""

import pytest

from repro.cache.dcp import DcpDirectory, FiniteDcpDirectory
from repro.cache.dram_cache import DramCache
from repro.cache.geometry import CacheGeometry
from repro.cache.lookup import WayPredictedLookup
from repro.core.prediction import StaticPreferredPredictor
from repro.core.steering import UnbiasedSteering


class TestFiniteDirectory:
    def test_lru_capacity(self):
        dcp = FiniteDcpDirectory(capacity=2)
        dcp.insert(1, 0)
        dcp.insert(2, 1)
        dcp.insert(3, 0)  # evicts line 1
        assert dcp.lookup(1) is None
        assert dcp.lookup(2) == 1
        assert dcp.capacity_evictions == 1

    def test_lookup_refreshes(self):
        dcp = FiniteDcpDirectory(capacity=2)
        dcp.insert(1, 0)
        dcp.insert(2, 1)
        dcp.lookup(1)
        dcp.insert(3, 0)  # evicts 2, not 1
        assert dcp.lookup(1) == 0
        assert dcp.lookup(2) is None

    def test_not_authoritative(self):
        assert FiniteDcpDirectory.authoritative is False
        assert DcpDirectory.authoritative is True

    def test_validation(self):
        with pytest.raises(ValueError):
            FiniteDcpDirectory(capacity=0)


def make_cache(dcp):
    geometry = CacheGeometry(64 * 1024, 2)
    return DramCache(
        geometry,
        lookup=WayPredictedLookup(),
        steering=UnbiasedSteering(geometry),
        predictor=StaticPreferredPredictor(geometry),
        dcp=dcp,
    )


class TestWritebackWithFiniteDcp:
    def test_forgotten_line_is_probed_and_found(self):
        dcp = FiniteDcpDirectory(capacity=4)
        cache = make_cache(dcp)
        cache.read(0x1000)
        # Push the entry out of the tiny directory.
        for i in range(8):
            cache.read(0x100000 + i * 64)
        assert dcp.lookup(cache.geometry.line_addr(0x1000)) is None
        dcp.lookups = dcp.hits = 0

        absorbed = cache.writeback(0x1000)
        assert absorbed
        assert cache.stats.writeback_probe_accesses >= 1
        # The probe re-learned the way.
        assert dcp.lookup(cache.geometry.line_addr(0x1000)) is not None

    def test_truly_absent_line_bypasses_after_probe(self):
        cache = make_cache(FiniteDcpDirectory(capacity=4))
        assert not cache.writeback(0x9000)
        assert cache.stats.writeback_bypass == 1
        assert cache.stats.writeback_probe_accesses == 2  # both ways checked

    def test_exact_dcp_never_probes(self):
        cache = make_cache(DcpDirectory())
        cache.read(0x1000)
        cache.writeback(0x1000)
        assert not cache.writeback(0x9000)
        assert cache.stats.writeback_probe_accesses == 0
