"""Tests for the binary trace format and the shared on-disk trace cache."""

import json

import pytest

from repro.errors import TraceError
from repro.params.system import scaled_system
from repro.sim.runner import TraceFactory
from repro.sim.trace import (
    Trace,
    load_trace,
    load_trace_npz,
    save_trace,
    save_trace_npz,
)
from repro.workloads.trace_cache import (
    TraceCache,
    TraceKey,
    default_trace_root,
    shared_trace_cache,
    trace_cache_enabled,
)


def small_trace(name="t", n=200):
    addrs = [(i * 293) % 4096 * 64 for i in range(n)]
    writes = bytearray(1 if i % 5 == 0 else 0 for i in range(n))
    return Trace(name, addrs, writes, instructions_per_access=37.5)


def assert_traces_equal(a, b):
    assert a.name == b.name
    assert a.addrs == b.addrs
    assert bytes(a.writes) == bytes(b.writes)
    assert a.instructions_per_access == b.instructions_per_access


class TestNpzFormat:
    def test_roundtrip(self, tmp_path):
        trace = small_trace("npz roundtrip")
        path = str(tmp_path / "t.npz")
        save_trace_npz(trace, path)
        assert_traces_equal(load_trace_npz(path), trace)

    def test_text_and_npz_agree(self, tmp_path):
        """The two persistence formats reload to the same trace."""
        trace = small_trace("cross-format")
        text_path = str(tmp_path / "t.trace")
        npz_path = str(tmp_path / "t.npz")
        save_trace(trace, text_path)
        save_trace_npz(trace, npz_path)
        assert_traces_equal(load_trace(text_path), load_trace_npz(npz_path))

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace_npz(str(tmp_path / "absent.npz"))

    def test_garbage_file_raises_trace_error(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(TraceError):
            load_trace_npz(str(path))

    def test_oversized_address_rejected(self, tmp_path):
        trace = Trace("big", [1 << 63], bytearray(1), 10.0)
        with pytest.raises(TraceError, match="not npz-serializable"):
            save_trace_npz(trace, str(tmp_path / "big.npz"))


class TestTextFormatTruncation:
    """Truncated metadata lines must raise TraceError, not IndexError."""

    def _load(self, tmp_path, body):
        path = tmp_path / "t.trace"
        path.write_text("# repro-trace-v1\n" + body)
        return load_trace(str(path))

    def test_truncated_name_line(self, tmp_path):
        with pytest.raises(TraceError, match="truncated name"):
            self._load(tmp_path, "name\nR 40\n")

    def test_truncated_ipa_line(self, tmp_path):
        with pytest.raises(TraceError, match="truncated ipa"):
            self._load(tmp_path, "ipa\nR 40\n")

    def test_non_numeric_ipa(self, tmp_path):
        with pytest.raises(TraceError, match="bad ipa"):
            self._load(tmp_path, "ipa forty\nR 40\n")


class TestWriteCount:
    def test_counts_and_caches(self):
        trace = small_trace()
        expected = sum(1 for w in trace.writes if w)
        assert trace.write_count == expected
        assert trace.read_count == len(trace) - expected
        # Cached: the second read serves from the memo field.
        assert trace._write_count == expected
        assert trace.write_count == expected

    def test_list_backed_flags(self):
        trace = Trace("l", [0, 64, 128], [0, 1, 1], 10.0)
        assert trace.write_count == 2


class TestTraceCache:
    def key(self, workload="soplex", **overrides):
        base = dict(
            workload=workload,
            capacity_bytes=256 * 1024,
            num_accesses=500,
            seed=3,
            footprint_scale=1.0 / 2048.0,
        )
        base.update(overrides)
        return TraceKey(**base)

    def test_put_get_roundtrip(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = self.key()
        assert cache.get(key) is None
        trace = small_trace("soplex")
        cache.put(key, trace)
        assert key in cache
        assert len(cache) == 1
        assert_traces_equal(cache.get(key), trace)

    def test_distinct_keys_distinct_entries(self, tmp_path):
        cache = TraceCache(tmp_path)
        for key in (self.key(), self.key(seed=4), self.key(num_accesses=501),
                    self.key(workload="mix1")):
            cache.put(key, small_trace())
        assert len(cache) == 4

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """A sidecar whose key disagrees (digest collision, hand edit)
        degrades to a miss and is discarded."""
        cache = TraceCache(tmp_path)
        key = self.key()
        cache.put(key, small_trace())
        sidecar = cache._key_path(cache.path_for(key))
        sidecar.write_text(json.dumps({"key": "something else"}))
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_corrupt_payload_is_discarded(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = self.key()
        cache.put(key, small_trace())
        cache.path_for(key).write_bytes(b"garbage")
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_corrupt_key_sidecar_quarantined(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = self.key()
        cache.put(key, small_trace())
        path = cache.path_for(key)
        sidecar = cache._key_path(path)
        sidecar.write_text("{ not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) is None
        assert cache.stats.quarantined == 1
        qdir = tmp_path / "quarantine"
        # Entry and sidecar are moved aside (inspectable), not deleted.
        assert (qdir / path.name).exists()
        assert (qdir / sidecar.name).exists()
        assert (qdir / f"{path.name}.why").exists()
        assert len(cache) == 0
        # The slot is usable again after quarantine.
        trace = small_trace()
        cache.put(key, trace)
        assert_traces_equal(cache.get(key), trace)

    def test_truncated_key_sidecar_quarantined(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = self.key()
        cache.put(key, small_trace())
        sidecar = cache._key_path(cache.path_for(key))
        text = sidecar.read_text(encoding="utf-8")
        sidecar.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) is None
        assert cache.stats.quarantined == 1

    def test_sidecar_without_payload_quarantined(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = self.key()
        cache.put(key, small_trace())
        cache.path_for(key).unlink()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) is None
        assert cache.stats.quarantined == 1

    def test_unwritable_root_warns_once_and_degrades(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the root should be")
        cache = TraceCache(blocker / "sub")
        with pytest.warns(RuntimeWarning, match="not writable"):
            cache.put(self.key(), small_trace())
        # Second put is silent (warn-once) and a lookup still misses.
        cache.put(self.key(), small_trace())
        assert cache.get(self.key()) is None

    def test_mix_key_embeds_member_specs(self):
        canonical = self.key(workload="mix1").canonical()
        payload = json.loads(canonical)
        members = payload["generator"]["members"]
        assert [m["name"] for m in members] == ["soplex", "mcf", "libq", "sphinx"]

    def test_toggle_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        assert not trace_cache_enabled()
        assert shared_trace_cache() is None

    def test_default_root_prefers_trace_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "t"))
        assert default_trace_root() == tmp_path / "t"
        monkeypatch.delenv("REPRO_TRACE_DIR")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "r"))
        assert default_trace_root() == tmp_path / "r" / "traces"


class TestTraceFactoryIntegration:
    def test_factory_shares_traces_across_instances(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "shared"))
        config = scaled_system(ways=1, scale=1.0 / 2048.0)
        first = TraceFactory(config, 1000, seed=9).trace_for("soplex")
        assert len(TraceCache(tmp_path / "shared")) == 1
        second = TraceFactory(config, 1000, seed=9).trace_for("soplex")
        assert_traces_equal(first, second)

    def test_factory_mix_traces_cached(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "shared"))
        config = scaled_system(ways=2, scale=1.0 / 2048.0)
        first = TraceFactory(config, 1000, seed=9).trace_for("mix1")
        second = TraceFactory(config, 1000, seed=9).trace_for("mix1")
        assert_traces_equal(first, second)

    def test_disabled_cache_writes_nothing(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "off"))
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        config = scaled_system(ways=1, scale=1.0 / 2048.0)
        TraceFactory(config, 1000, seed=9).trace_for("soplex")
        assert not (tmp_path / "off").exists()
