"""Unit + property tests for Skewed Way-Steering."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import RandomReplacement
from repro.cache.storage import TagStore
from repro.core.steering import preferred_way
from repro.core.sws import SkewedWaySteering, alternate_way, skewed_candidates
from repro.errors import PolicyError
from repro.utils.rng import XorShift64


class TestAlternateWay:
    def test_never_equals_preferred(self):
        for ways in (2, 4, 8):
            for tag in range(5000):
                assert alternate_way(tag, ways) != preferred_way(tag, ways)

    def test_in_range(self):
        for ways in (2, 4, 8):
            for tag in range(1000):
                assert 0 <= alternate_way(tag, ways) < ways

    def test_deterministic(self):
        assert alternate_way(777, 8) == alternate_way(777, 8)

    def test_rejects_direct_mapped(self):
        with pytest.raises(PolicyError):
            alternate_way(1, 1)


@given(tag=st.integers(min_value=0, max_value=2**48),
       ways_exp=st.integers(min_value=1, max_value=3))
def test_property_alternate_distinct(tag, ways_exp):
    ways = 1 << ways_exp
    assert alternate_way(tag, ways) != preferred_way(tag, ways)


@given(tag=st.integers(min_value=0, max_value=2**48),
       ways_exp=st.integers(min_value=1, max_value=3),
       hashes=st.integers(min_value=1, max_value=4))
def test_property_candidates_distinct_and_rooted(tag, ways_exp, hashes):
    ways = 1 << ways_exp
    if hashes > ways:
        return
    candidates = skewed_candidates(tag, ways, hashes)
    assert len(candidates) == hashes
    assert len(set(candidates)) == hashes  # all distinct
    assert candidates[0] == preferred_way(tag, ways)
    assert all(0 <= c < ways for c in candidates)


class TestSkewedCandidates:
    def test_two_hashes_matches_alternate(self):
        for tag in range(2000):
            candidates = skewed_candidates(tag, 8, 2)
            assert candidates == (preferred_way(tag, 8), alternate_way(tag, 8))

    def test_one_hash_is_direct(self):
        assert skewed_candidates(77, 8, 1) == (preferred_way(77, 8),)

    def test_rejects_more_hashes_than_ways(self):
        with pytest.raises(PolicyError):
            skewed_candidates(1, 2, 3)

    def test_rejects_zero_hashes(self):
        with pytest.raises(PolicyError):
            skewed_candidates(1, 4, 0)

    def test_pairs_spread_over_way_space(self):
        # Different tags mapping to the same set should use many
        # different (preferred, alternate) pairs — the skew property.
        pairs = {skewed_candidates(tag, 8, 2) for tag in range(500)}
        assert len(pairs) > 20


class TestSkewedSteering:
    @pytest.fixture
    def geom(self):
        return CacheGeometry(32 * 1024, 8)

    def test_installs_only_into_candidates(self, geom):
        steering = SkewedWaySteering(geom, hashes=2, rng=XorShift64(5))
        store = TagStore(geom)
        replacement = RandomReplacement(XorShift64(6))
        for tag in range(500):
            way = steering.choose_install_way(0, tag, 0, store, replacement)
            assert way in skewed_candidates(tag, 8, 2)

    def test_bias_toward_preferred(self, geom):
        steering = SkewedWaySteering(geom, hashes=2, pip=0.85, rng=XorShift64(5))
        store = TagStore(geom)
        replacement = RandomReplacement(XorShift64(6))
        preferred_count = sum(
            steering.choose_install_way(0, tag, 0, store, replacement)
            == preferred_way(tag, 8)
            for tag in range(4000)
        )
        assert 0.83 < preferred_count / 4000 < 0.87

    def test_candidate_memoization(self, geom):
        steering = SkewedWaySteering(geom, hashes=2)
        first = steering.candidate_ways(0, 42)
        second = steering.candidate_ways(1, 42)
        assert first is second  # same tag -> memo hit

    def test_rejects_direct_mapped_geometry(self):
        with pytest.raises(PolicyError):
            SkewedWaySteering(CacheGeometry(8 * 1024, 1))

    def test_zero_storage(self, geom):
        assert SkewedWaySteering(geom).storage_bits() == 0
