"""Unit tests for the DRAM cache orchestration (costs, DCP, eviction)."""

import pytest

from repro.cache.dram_cache import DramCache
from repro.cache.geometry import CacheGeometry
from repro.cache.lookup import ParallelLookup, SerialLookup, WayPredictedLookup
from repro.cache.replacement import RandomReplacement
from repro.core.prediction import StaticPreferredPredictor
from repro.core.steering import DirectMappedSteering, UnbiasedSteering, preferred_way
from repro.errors import PolicyError
from repro.utils.rng import XorShift64


def make_cache(ways=2, lookup=None, prefill=False, capacity=8 * 1024):
    geometry = CacheGeometry(capacity, ways)
    predictor = StaticPreferredPredictor(geometry)
    return DramCache(
        geometry,
        lookup=lookup or WayPredictedLookup(),
        steering=UnbiasedSteering(geometry),
        predictor=predictor,
        replacement=RandomReplacement(XorShift64(3)),
        prefill=prefill,
    )


class TestReadPath:
    def test_cold_miss_fills(self):
        cache = make_cache()
        outcome = cache.read(0x1000)
        assert not outcome.hit
        assert outcome.nvm_read
        assert cache.contains(0x1000)
        assert cache.stats.misses == 1
        assert cache.stats.nvm_reads == 1
        assert cache.stats.installs == 1
        assert cache.stats.cache_write_transfers == 1  # the fill

    def test_second_access_hits(self):
        cache = make_cache()
        cache.read(0x1000)
        outcome = cache.read(0x1000)
        assert outcome.hit
        assert cache.stats.hits == 1

    def test_hit_in_installed_way(self):
        cache = make_cache()
        first = cache.read(0x2000)
        second = cache.read(0x2000)
        assert second.way == first.way

    def test_line_granularity(self):
        cache = make_cache()
        cache.read(0x1000)
        assert cache.read(0x1004).hit  # same 64B line
        assert not cache.read(0x1040).hit  # next line

    def test_prediction_stats_only_on_hits(self):
        cache = make_cache()
        cache.read(0x1000)  # miss
        assert cache.stats.predicted_hits == 0
        cache.read(0x1000)  # hit
        assert cache.stats.predicted_hits == 1

    def test_steering_candidate_enforcement(self):
        geometry = CacheGeometry(8 * 1024, 2)

        class RogueSteering(UnbiasedSteering):
            def choose_install_way(self, set_index, tag, addr, store, replacement):
                return 1  # fine for unrestricted candidates

            def candidate_ways(self, set_index, tag):
                return (0,)  # ...but claims only way 0 is legal

        cache = DramCache(
            geometry,
            lookup=SerialLookup(),
            steering=RogueSteering(geometry),
            predictor=None,
        )
        with pytest.raises(PolicyError):
            cache.read(0x1000)


class TestEviction:
    def test_conflict_evicts(self):
        cache = make_cache(ways=1)
        span = cache.geometry.way_span_bytes()
        cache.read(0x0)
        cache.read(span)  # same set, different tag
        assert not cache.contains(0x0)
        assert cache.stats.evictions == 1
        assert cache.stats.nvm_writes == 0  # clean victim

    def test_dirty_eviction_writes_nvm(self):
        cache = make_cache(ways=1)
        span = cache.geometry.way_span_bytes()
        cache.read(0x0)
        cache.writeback(0x0)  # make it dirty
        cache.read(span)  # evicts the dirty line
        assert cache.stats.dirty_evictions == 1
        assert cache.stats.nvm_writes == 1


class TestWriteback:
    def test_resident_writeback_direct(self):
        cache = make_cache()
        cache.read(0x3000)
        assert cache.writeback(0x3000)
        assert cache.stats.writeback_direct == 1
        assert cache.stats.writeback_probe_accesses == 0  # DCP knows the way

    def test_absent_writeback_bypasses_to_nvm(self):
        cache = make_cache()
        assert not cache.writeback(0x4000)
        assert cache.stats.writeback_bypass == 1
        assert cache.stats.nvm_writes == 1

    def test_without_dcp_probes(self):
        geometry = CacheGeometry(8 * 1024, 2)
        cache = DramCache(
            geometry,
            lookup=SerialLookup(),
            steering=UnbiasedSteering(geometry),
            predictor=None,
            dcp=None,
        )
        cache.read(0x3000)
        cache.writeback(0x3000)
        assert cache.stats.writeback_probe_accesses >= 1

    def test_dcp_tracks_eviction(self):
        cache = make_cache(ways=1)
        span = cache.geometry.way_span_bytes()
        cache.read(0x0)
        cache.read(span)
        # 0x0 was evicted; its writeback must bypass.
        assert not cache.writeback(0x0)


class TestCostIdentities:
    """The simulator's counters must satisfy Table I's cost formulas."""

    def test_parallel_transfers(self):
        cache = make_cache(ways=4, lookup=ParallelLookup(), capacity=16 * 1024)
        cache.predictor = None
        for i in range(50):
            cache.read(i * 64)
        stats = cache.stats
        assert stats.cache_read_transfers == 4 * stats.demand_reads
        assert stats.first_probes == stats.demand_reads
        assert stats.extra_probes == 0

    def test_direct_mapped_single_transfer(self):
        geometry = CacheGeometry(8 * 1024, 1)
        cache = DramCache(
            geometry,
            lookup=SerialLookup(),
            steering=DirectMappedSteering(geometry),
            predictor=None,
        )
        for i in range(50):
            cache.read(i * 64)
        assert cache.stats.cache_read_transfers == cache.stats.demand_reads

    def test_way_predicted_miss_probes_all_ways(self):
        cache = make_cache(ways=4, capacity=16 * 1024)
        cache.read(0x0)  # cold miss
        assert cache.stats.miss_extra_probes == 3
        assert cache.stats.cache_read_transfers == 4

    def test_probes_per_read_bounds(self):
        cache = make_cache(ways=2)
        for i in range(200):
            cache.read((i % 30) * 64)
        assert 1.0 <= cache.stats.probes_per_read <= 2.0


class TestStorageOverhead:
    def test_stateless_stack_is_free(self):
        cache = make_cache()
        assert cache.storage_overhead_bits() == 0
