"""Unit tests for lookup flows (Table I cost identities)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.lookup import (
    LookupKind,
    ParallelLookup,
    SerialLookup,
    WayPredictedLookup,
    make_lookup,
)
from repro.cache.storage import TagStore
from repro.core.prediction import StaticPreferredPredictor
from repro.core.steering import preferred_way
from repro.errors import PolicyError


@pytest.fixture
def geom():
    return CacheGeometry(16 * 1024, 4)


@pytest.fixture
def store(geom):
    s = TagStore(geom)
    s.install(5, 2, 77)  # one line resident in way 2 of set 5
    return s


ALL_WAYS = (0, 1, 2, 3)


class TestParallel:
    def test_hit_costs(self, store):
        result = ParallelLookup().lookup(5, 77, 0, store, ALL_WAYS)
        assert result.hit and result.way == 2
        assert result.serialized_accesses == 1
        assert result.transfers == 4

    def test_miss_costs(self, store):
        result = ParallelLookup().lookup(5, 99, 0, store, ALL_WAYS)
        assert not result.hit
        assert result.serialized_accesses == 1
        assert result.transfers == 4

    def test_respects_candidates(self, store):
        result = ParallelLookup().lookup(5, 77, 0, store, (0, 1))
        assert not result.hit
        assert result.transfers == 2


class TestSerial:
    def test_hit_at_position_k(self, store):
        result = SerialLookup().lookup(5, 77, 0, store, ALL_WAYS)
        assert result.hit and result.way == 2
        assert result.serialized_accesses == 3  # probed ways 0,1,2
        assert result.transfers == 3

    def test_miss_probes_all(self, store):
        result = SerialLookup().lookup(5, 99, 0, store, ALL_WAYS)
        assert not result.hit
        assert result.serialized_accesses == 4
        assert result.transfers == 4


class TestWayPredicted:
    def test_correct_prediction_single_access(self, geom, store):
        predictor = StaticPreferredPredictor(geom)
        tag = 77
        way = preferred_way(tag, 4)
        store.install(9, way, tag)
        result = WayPredictedLookup().lookup(9, tag, 0, store, ALL_WAYS, predictor)
        assert result.hit and result.way == way
        assert result.serialized_accesses == 1
        assert result.transfers == 1
        assert result.prediction_correct

    def test_mispredict_then_hit(self, geom, store):
        predictor = StaticPreferredPredictor(geom)
        tag = 77
        wrong_way = (preferred_way(tag, 4) + 1) % 4
        store.install(9, wrong_way, tag)
        result = WayPredictedLookup().lookup(9, tag, 0, store, ALL_WAYS, predictor)
        assert result.hit and result.way == wrong_way
        assert result.serialized_accesses >= 2
        assert not result.prediction_correct

    def test_miss_confirmation_probes_all_candidates(self, geom, store):
        predictor = StaticPreferredPredictor(geom)
        result = WayPredictedLookup().lookup(9, 1234, 0, store, ALL_WAYS, predictor)
        assert not result.hit
        assert result.serialized_accesses == 4
        assert result.transfers == 4

    def test_sws_candidates_limit_miss_cost(self, geom, store):
        predictor = StaticPreferredPredictor(geom)
        tag = 1234
        pref = preferred_way(tag, 4)
        alt = (pref + 1) % 4
        result = WayPredictedLookup().lookup(9, tag, 0, store, (pref, alt), predictor)
        assert not result.hit
        assert result.serialized_accesses == 2
        assert result.transfers == 2

    def test_prediction_outside_candidates_is_coerced(self, geom, store):
        predictor = StaticPreferredPredictor(geom)
        tag = 77
        pref = preferred_way(tag, 4)
        others = tuple(w for w in ALL_WAYS if w != pref)[:2]
        store.install(9, others[0], tag)
        result = WayPredictedLookup().lookup(9, tag, 0, store, others, predictor)
        assert result.hit
        assert result.predicted_way in others

    def test_requires_predictor(self, store):
        with pytest.raises(PolicyError):
            WayPredictedLookup().lookup(5, 77, 0, store, ALL_WAYS, None)


class TestFactory:
    def test_all_kinds(self):
        assert isinstance(make_lookup(LookupKind.PARALLEL), ParallelLookup)
        assert isinstance(make_lookup(LookupKind.SERIAL), SerialLookup)
        assert isinstance(make_lookup(LookupKind.WAY_PREDICTED), WayPredictedLookup)
