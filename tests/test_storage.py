"""Unit tests for the tag store (dense and sparse modes, prefill)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.storage import JUNK_TAG, TagStore
from repro.errors import GeometryError


@pytest.fixture(params=[True, False], ids=["dense", "sparse"])
def store(request):
    return TagStore(CacheGeometry(8 * 1024, 2), dense=request.param)


class TestBasics:
    def test_starts_invalid(self, store):
        assert not store.is_valid(0, 0)
        assert store.tag_at(0, 0) == -1
        assert store.find_way(0, 5) is None
        assert store.occupancy() == 0.0

    def test_install_and_find(self, store):
        store.install(3, 1, 42)
        assert store.is_valid(3, 1)
        assert store.tag_at(3, 1) == 42
        assert store.find_way(3, 42) == 1
        assert store.find_way(3, 43) is None
        assert store.valid_lines == 1

    def test_install_overwrite_keeps_count(self, store):
        store.install(3, 1, 42)
        store.install(3, 1, 43)
        assert store.valid_lines == 1
        assert store.find_way(3, 42) is None
        assert store.find_way(3, 43) == 1

    def test_install_rejects_negative_tag(self, store):
        with pytest.raises(GeometryError):
            store.install(0, 0, -3)

    def test_invalidate(self, store):
        store.install(2, 0, 7)
        store.invalidate(2, 0)
        assert not store.is_valid(2, 0)
        assert store.valid_lines == 0
        store.invalidate(2, 0)  # idempotent
        assert store.valid_lines == 0

    def test_dirty_bits(self, store):
        store.install(1, 0, 9, dirty=True)
        assert store.is_dirty(1, 0)
        store.set_dirty(1, 0, False)
        assert not store.is_dirty(1, 0)

    def test_find_way_among(self, store):
        store.install(4, 1, 11)
        assert store.find_way_among(4, 11, (0,)) is None
        assert store.find_way_among(4, 11, (0, 1)) == 1

    def test_invalid_ways(self, store):
        assert store.invalid_ways(5) == [0, 1]
        store.install(5, 0, 1)
        assert store.invalid_ways(5) == [1]


class TestPrefill:
    def test_prefill_marks_everything_valid(self, store):
        store.prefill_junk()
        assert store.occupancy() == 1.0
        assert store.is_valid(0, 0)
        assert store.tag_at(0, 0) == JUNK_TAG
        assert not store.is_dirty(0, 0)

    def test_junk_never_matches_real_tags(self, store):
        store.prefill_junk()
        for tag in (0, 1, 2**40):
            assert store.find_way(7, tag) is None

    def test_install_over_junk(self, store):
        store.prefill_junk()
        store.install(7, 1, 99)
        assert store.find_way(7, 99) == 1
        assert store.valid_lines == store.geometry.num_lines


class TestEvictSlot:
    """evict_slot == tag_at + is_dirty + invalidate, in one store call."""

    def test_evicts_clean_line(self, store):
        store.install(3, 1, 42)
        assert store.evict_slot(3, 1) == (42, False)
        assert not store.is_valid(3, 1)
        assert store.valid_lines == 0

    def test_evicts_dirty_line_and_clears_dirty_bit(self, store):
        store.install(5, 0, 7)
        store.set_dirty(5, 0)
        assert store.evict_slot(5, 0) == (7, True)
        # A later occupant of the slot must start clean.
        store.install(5, 0, 8)
        assert not store.is_dirty(5, 0)

    def test_invalid_slot_reports_sentinel(self, store):
        assert store.evict_slot(2, 1) == (-1, False)
        assert store.valid_lines == 0

    def test_double_evict_is_idempotent(self, store):
        store.install(4, 1, 11)
        store.evict_slot(4, 1)
        assert store.evict_slot(4, 1) == (-1, False)
        assert store.valid_lines == 0

    def test_matches_separate_calls(self, store):
        """Cross-check against the three-call sequence it replaces."""
        reference = TagStore(store.geometry, dense=True)
        for set_index, way, tag, dirty in [
            (0, 0, 5, True), (0, 1, 6, False), (9, 0, 7, True),
        ]:
            for s in (store, reference):
                s.install(set_index, way, tag)
                if dirty:
                    s.set_dirty(set_index, way)
        for set_index, way in [(0, 0), (0, 1), (9, 0), (9, 1)]:
            expected = (reference.tag_at(set_index, way),
                        reference.is_dirty(set_index, way))
            if expected[0] != -1:
                reference.invalidate(set_index, way)
            assert store.evict_slot(set_index, way) == expected
            assert store.valid_lines == reference.valid_lines
