"""Tests for the sweep service: job specs, rate limiting, scheduler, HTTP.

The HTTP tests run a real :class:`SweepService` on an ephemeral port
inside an event loop, with the blocking :class:`ServiceClient` driven
from a worker thread — the same split a production deployment has.
"""

import asyncio
import json

import pytest

from repro.core.accord import AccordDesign
from repro.errors import ConfigError, ExecutionError
from repro.exec import Executor, JobKey, ResultStore, SweepJournal
from repro.exec.faults import FAULT_PLAN_ENV
from repro.exec.jobs import RESULT_SCHEMA_VERSION
from repro.experiments.common import Settings
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobspec import (
    DEFAULT_ACCESSES,
    QUICK_ACCESSES,
    QUICK_SUITE,
    expand_spec,
    key_from_canonical,
)
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.scheduler import JobManager, Overloaded, etag_for
from repro.service.server import ServiceConfig, SweepService

ACCESSES = 3000


def spec_for(**overrides):
    spec = {
        "designs": "direct,accord:2",
        "workloads": "soplex,libq",
        "accesses": ACCESSES,
    }
    spec.update(overrides)
    return spec


def serve(config, body):
    """Run a service, drive blocking ``body(client, service)`` from a
    thread, and return its result after a clean shutdown."""

    async def main():
        service = SweepService(config)
        await service.start()
        client = ServiceClient(port=service.port, timeout=120)
        try:
            return await asyncio.get_running_loop().run_in_executor(
                None, body, client, service
            )
        finally:
            await service.close()

    return asyncio.run(main())


class TestJobSpec:
    def test_expands_the_cli_grid_in_order(self):
        keys, labels, workloads = expand_spec(spec_for(seed=9))
        assert labels == ["direct-1way", "ACCORD 2-way"]
        assert workloads == ["soplex", "libq"]
        expected = [
            JobKey(design=design, workload=workload,
                   num_accesses=ACCESSES, warmup=0.5, seed=9,
                   scale=1.0 / 128.0)
            for design in (AccordDesign(kind="direct", ways=1),
                           AccordDesign(kind="accord", ways=2))
            for workload in ("soplex", "libq")
        ]
        assert [k.digest() for k in keys] == [k.digest() for k in expected]

    def test_defaults_mirror_cli_settings(self):
        # The spec defaults and the CLI Settings defaults must stay in
        # lockstep, or served jobs stop being the same jobs.
        settings = Settings()
        quick = settings.quick()
        assert DEFAULT_ACCESSES == settings.num_accesses
        assert QUICK_ACCESSES == quick.num_accesses
        assert QUICK_SUITE == quick.suite
        keys, _, workloads = expand_spec({"designs": "direct"})
        assert workloads == settings.suite
        assert keys[0].num_accesses == settings.num_accesses
        assert keys[0].warmup == settings.warmup
        assert keys[0].seed == settings.seed
        assert keys[0].scale == settings.scale

    def test_quick_spec(self):
        keys, _, workloads = expand_spec({"designs": "direct", "quick": True})
        assert workloads == QUICK_SUITE
        assert all(k.num_accesses == QUICK_ACCESSES for k in keys)

    def test_run_kind_takes_one_cell(self):
        keys, _, _ = expand_spec(
            {"kind": "run", "designs": "accord:2", "workloads": "soplex"}
        )
        assert len(keys) == 1
        with pytest.raises(ConfigError):
            expand_spec({"kind": "run", "designs": "direct,accord:2",
                         "workloads": "soplex"})

    @pytest.mark.parametrize("bad", [
        "not a dict",
        {"designs": "direct", "bogus_field": 1},
        {"designs": ""},
        {"designs": []},
        {"designs": "direct,direct"},
        {"designs": "direct", "kind": "teleport"},
        {"designs": "direct", "workloads": "soplex,soplex"},
        {"designs": "direct", "workloads": "no_such_workload"},
        {"designs": "direct", "accesses": "many"},
        {"designs": "direct", "seed": True},
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            expand_spec(bad)

    def test_canonical_round_trip(self):
        keys, _, _ = expand_spec(spec_for(epoch=500))
        for key in keys:
            clone = key_from_canonical(
                json.loads(json.dumps(key.canonical()))
            )
            assert clone.digest() == key.digest()
            assert clone.epoch == key.epoch

    def test_canonical_rejects_stale_schema(self):
        data = expand_spec(spec_for())[0][0].canonical()
        data["schema"] = RESULT_SCHEMA_VERSION - 1
        with pytest.raises(ConfigError):
            key_from_canonical(data)
        with pytest.raises(ConfigError):
            key_from_canonical("nope")


class TestRateLimit:
    def test_bucket_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)
        now[0] += 0.5  # one token refilled
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_bucket_never_exceeds_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=lambda: now[0])
        now[0] += 60.0
        for _ in range(3):
            assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_limiter_isolates_clients(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: now[0])
        assert limiter.check("alice") == (True, 0.0)
        allowed, wait = limiter.check("alice")
        assert not allowed and wait > 0.0
        assert limiter.check("bob")[0]  # separate bucket

    def test_limiter_bounds_tracked_clients(self):
        now = [0.0]
        limiter = RateLimiter(
            rate=1.0, burst=1.0, max_clients=2, clock=lambda: now[0]
        )
        limiter.check("a")
        limiter.check("b")
        limiter.check("c")  # evicts "a", the least recently seen
        assert len(limiter._buckets) == 2
        assert limiter.check("a")[0]  # fresh bucket: allowed again

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigError):
            TokenBucket(rate=1.0, burst=0.5)
        with pytest.raises(ConfigError):
            RateLimiter(rate=1.0, burst=1.0, max_clients=0)


def drain(sub):
    """Collect a subscription's events until its ``None`` sentinel."""

    async def inner():
        events = []
        while True:
            event = await asyncio.wait_for(sub.queue.get(), timeout=60)
            if event is None:
                return events
            events.append(event)

    return inner()


class TestJobManager:
    def test_duplicate_concurrent_submissions_execute_once(self, tmp_path):
        async def scenario():
            manager = JobManager(
                Executor(jobs=1), store=None, journal_batches=False
            )
            keys = expand_spec(spec_for())[0]
            try:
                # Submit twice before the dispatcher exists: the second
                # submission must ride the first's in-flight entries.
                first = manager.submit(keys)
                second = manager.submit(keys)
                assert first.counts["scheduled"] == len(keys)
                assert second.counts["deduped"] == len(keys)
                assert second.counts["scheduled"] == 0
                assert len(manager._inflight) == len(keys)
                manager.start()
                events_a, events_b = await asyncio.gather(
                    drain(first), drain(second)
                )
            finally:
                await manager.close()
            results_a = [e for e in events_a if e["event"] == "result"]
            results_b = [e for e in events_b if e["event"] == "result"]
            assert len(results_a) == len(results_b) == len(keys)
            by_key = {e["key"]: e for e in results_a}
            for event in results_b:
                # One computation, N subscribers: identical payloads.
                assert event["result"] == by_key[event["key"]]["result"]
                assert event["etag"] == etag_for(event["key"])
            assert manager.counters["executed"] == len(keys)
            assert manager.counters["deduped"] == len(keys)

        asyncio.run(scenario())

    def test_overload_sheds_whole_request(self):
        async def scenario():
            manager = JobManager(
                Executor(jobs=1), store=None, max_pending=1,
                journal_batches=False,
            )
            try:
                keys = expand_spec(spec_for())[0]  # 4 cold keys > bound 1
                with pytest.raises(Overloaded) as excinfo:
                    manager.submit(keys)
                assert excinfo.value.retry_after > 0
                # Shed whole: nothing was registered or queued.
                assert not manager._inflight
                assert not manager._queue
                assert manager.counters["shed_queue_full"] == 1
                # A request that fits is still admitted afterwards.
                sub = manager.submit(keys[:1])
                assert sub.counts["scheduled"] == 1
                manager.start()
                events = await drain(sub)
                assert events[-1]["event"] == "result"
            finally:
                await manager.close()

        asyncio.run(scenario())

    def test_resume_pending_finishes_previous_daemons_batch(self, tmp_path):
        keys = expand_spec(spec_for())[0]
        done_key, undone = keys[0], keys[1:]
        store = ResultStore(tmp_path)
        service_dir = tmp_path / "service"
        service_dir.mkdir()
        journal = SweepJournal(service_dir / "batch-dead.journal.jsonl")
        journal.begin(keys, meta={
            "service": True,
            "keys": [key.canonical() for key in keys],
        })
        journal.record_done(done_key, Executor(jobs=1).run([done_key])[done_key])
        # A stale journal from another schema must be skipped, not crash.
        bad = dict(keys[0].canonical(), schema=RESULT_SCHEMA_VERSION - 1)
        stale = SweepJournal(service_dir / "batch-stale.journal.jsonl")
        stale.begin(keys[:1], meta={"service": True, "keys": [bad]})

        async def scenario():
            manager = JobManager(Executor(jobs=1, store=store), store=store)
            try:
                manager.start()
                with pytest.warns(RuntimeWarning, match="stale"):
                    pending = manager.resume_pending()
                assert pending == len(undone)
                for _ in range(600):
                    if not manager._inflight:
                        break
                    await asyncio.sleep(0.1)
                assert not manager._inflight
            finally:
                await manager.close()
            # The journaled job replayed; only the remainder executed.
            assert manager.counters["resumed"] == 1
            assert manager.counters["executed"] == len(undone)
            for key in keys:
                assert store.get(key) is not None
            assert not list(service_dir.glob("batch-*.journal.jsonl"))

        asyncio.run(scenario())


class TestServiceHTTP:
    def config(self, tmp_path, **overrides):
        kwargs = dict(
            port=0, results_dir=str(tmp_path / "store"),
            rate=1000.0, burst=1000.0,
        )
        kwargs.update(overrides)
        return ServiceConfig(**kwargs)

    def test_round_trip_bit_identical_to_cli_executor(self, tmp_path):
        spec = spec_for()
        keys = expand_spec(spec)[0]
        reference = Executor(jobs=1).run(keys)

        def body(client, service):
            events = []
            results = client.submit(spec, on_event=lambda e: events.append(e))
            kinds = [e.get("event") for e in events]
            assert kinds[0] == "accepted"
            assert kinds[-1] == "done"
            assert kinds.count("result") == len(keys)
            return results

        results = serve(self.config(tmp_path), body)
        for key in keys:
            event = results[key.digest()]
            assert event["source"] == "run"
            assert event["etag"] == etag_for(key.digest())
            assert event["result"] == reference[key].to_dict()

    def test_warm_resubmit_is_served_from_store(self, tmp_path):
        spec = spec_for()

        def body(client, service):
            first = client.submit(spec)
            assert all(e["source"] == "run" for e in first.values())
            scheduled = service.manager.counters["scheduled"]
            second = client.submit(spec)
            assert all(e["source"] == "cached" for e in second.values())
            # Nothing new was scheduled: answered straight from the store.
            assert service.manager.counters["scheduled"] == scheduled
            assert service.manager.counters["store_hits"] == len(second)
            for digest, event in first.items():
                assert second[digest]["result"] == event["result"]

        serve(self.config(tmp_path), body)

    def test_rate_limit_answers_429(self, tmp_path):
        def body(client, service):
            client.health()  # health is never rate limited
            assert len(client.submit(spec_for(workloads="soplex"))) == 2
            with pytest.raises(ServiceError) as excinfo:
                client.submit(spec_for(workloads="libq"))
            err = excinfo.value
            assert err.status == 429
            assert err.retry_after is not None and err.retry_after > 0
            assert err.exit_code == 3
            assert err.payload["error"]["retryable"] is True
            assert service.manager.counters["shed_rate_limited"] == 1

        serve(self.config(tmp_path, rate=0.001, burst=1.0), body)

    def test_queue_overflow_answers_503(self, tmp_path):
        def body(client, service):
            with pytest.raises(ServiceError) as excinfo:
                client.submit(spec_for())  # 4 cold keys > max_pending 1
            err = excinfo.value
            assert err.status == 503
            assert err.retry_after is not None and err.retry_after > 0
            assert err.payload["error"]["kind"] == "execution"
            assert err.payload["error"]["retryable"] is True
            # A request that fits the bound still goes through.
            results = client.submit(
                spec_for(designs="direct", workloads="soplex")
            )
            assert len(results) == 1

        serve(self.config(tmp_path, max_pending=1), body)

    def test_bad_spec_answers_400_config(self, tmp_path):
        def body(client, service):
            with pytest.raises(ServiceError) as excinfo:
                list(client.stream_job({"designs": "direct", "bogus": 1}))
            err = excinfo.value
            assert err.status == 400
            assert err.exit_code == 2
            assert err.payload["error"]["kind"] == "config"
            assert err.payload["error"]["retryable"] is False

        serve(self.config(tmp_path), body)

    def test_health_metrics_and_unknown_endpoint(self, tmp_path):
        def body(client, service):
            health = client.health()
            assert health["status"] == "ok"
            assert health["schema_version"] == RESULT_SCHEMA_VERSION
            client.submit(spec_for(designs="direct", workloads="soplex"))
            metrics = client.metrics()
            assert metrics["counters"]["completed"] == 1
            assert metrics["store"]["lookups"] >= 1
            with pytest.raises(ServiceError) as excinfo:
                client._get_json("/no/such/endpoint")
            assert excinfo.value.status == 404

        serve(self.config(tmp_path), body)

    def test_phase_events_stream_per_epoch(self, tmp_path):
        spec = spec_for(designs="accord:2", workloads="soplex", epoch=500)
        key = expand_spec(spec)[0][0]
        reference = Executor(jobs=1).run([key])[key]

        def body(client, service):
            events = []
            client.submit(spec, on_event=lambda e: events.append(e))
            return events

        events = serve(self.config(tmp_path), body)
        phases = [e for e in events if e["event"] == "phase"]
        assert phases, "epoch specs must stream phase events"
        assert [p["sample"]["index"] for p in phases] == \
            [s.index for s in reference.phases]
        assert [p["sample"]["hits"] for p in phases] == \
            [s.hits for s in reference.phases]
        # Phases arrive before the result they belong to.
        kinds = [e["event"] for e in events]
        assert kinds.index("phase") < kinds.index("result")


class TestServiceChaos:
    def config(self, tmp_path, **overrides):
        kwargs = dict(
            port=0, results_dir=str(tmp_path / "store"),
            rate=1000.0, burst=1000.0,
        )
        kwargs.update(overrides)
        return ServiceConfig(**kwargs)

    def test_transient_faults_retry_to_completion(
        self, tmp_path, monkeypatch
    ):
        spec = spec_for()
        keys = expand_spec(spec)[0]
        reference = Executor(jobs=1).run(keys)
        monkeypatch.setenv(
            FAULT_PLAN_ENV,
            f"seed=13;os_error=2;dir={tmp_path / 'ledger'}",
        )

        def body(client, service):
            return client.submit(spec)

        results = serve(self.config(tmp_path, retries=3), body)
        for key in keys:
            assert results[key.digest()]["result"] == reference[key].to_dict()

    def test_exhausted_faults_end_in_clean_retryable_error(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            FAULT_PLAN_ENV,
            f"seed=13;os_error=99;dir={tmp_path / 'ledger2'}",
        )

        def body(client, service):
            events = list(client.stream_job(spec_for()))
            # The stream terminated cleanly (stream_job raises if the
            # 'done' line never arrives), and every failed key carries
            # the documented execution-error payload.
            assert events[-1]["event"] == "done"
            errors = [e for e in events if e["event"] == "error"]
            assert errors
            for event in errors:
                assert event["error"]["kind"] == "execution"
                assert event["error"]["exit_code"] == 3
                assert event["error"]["retryable"] is True
            # submit() surfaces the failure as ExecutionError.
            with pytest.raises(ExecutionError):
                client.submit(spec_for(seed=11))
            return events

        serve(self.config(tmp_path, retries=0), body)
