"""Tests for the writeback edge paths: DCP bypass, desync, probe costs."""

import pytest

from repro.cache.dcp import FiniteDcpDirectory
from repro.cache.dram_cache import DramCache
from repro.cache.geometry import CacheGeometry
from repro.cache.lookup import SerialLookup
from repro.cache.replacement import RandomReplacement
from repro.core.steering import UnbiasedSteering
from repro.errors import PolicyError
from repro.utils.rng import XorShift64


def make_cache(ways=2, dcp="default", steering=None, capacity=8 * 1024):
    geometry = CacheGeometry(capacity, ways)
    return DramCache(
        geometry,
        lookup=SerialLookup(),
        steering=steering or UnbiasedSteering(geometry),
        predictor=None,
        replacement=RandomReplacement(XorShift64(3)),
        dcp=dcp,
        prefill=False,
    )


class TestDcpBypass:
    def test_bypass_charges_nvm_not_probes(self):
        cache = make_cache()
        before_reads = cache.stats.cache_read_transfers
        assert not cache.writeback(0x5000)
        stats = cache.stats
        assert stats.writeback_bypass == 1
        assert stats.nvm_writes == 1
        assert stats.writeback_probe_accesses == 0
        assert stats.cache_read_transfers == before_reads  # no probe reads
        assert stats.cache_write_transfers == 0  # nothing written to DRAM

    def test_out_of_sync_dcp_raises(self):
        cache = make_cache()
        cache.read(0x5000)
        way = cache.resident_way(0x5000)
        line = cache.geometry.line_addr(0x5000)
        # Corrupt the directory: claim the line lives in the other way.
        cache.dcp.insert(line, (way + 1) % cache.geometry.ways)
        with pytest.raises(PolicyError):
            cache.writeback(0x5000)


class TestFiniteDcp:
    def test_forgotten_line_probes_then_relearns(self):
        cache = make_cache(dcp=FiniteDcpDirectory(capacity=1))
        span = cache.geometry.way_span_bytes()
        cache.read(0x0)
        cache.read(span * 2)  # second line: capacity-evicts 0x0's DCP entry
        assert cache.dcp.lookup(cache.geometry.line_addr(0x0)) is None

        # First writeback: the line is resident but forgotten, so the
        # non-authoritative miss forces a probe...
        assert cache.writeback(0x0)
        probes_after_first = cache.stats.writeback_probe_accesses
        assert probes_after_first >= 1
        assert cache.stats.writeback_direct == 1

        # ...and the probe's answer is re-learned: the second writeback
        # goes straight to the way.
        assert cache.writeback(0x0)
        assert cache.stats.writeback_probe_accesses == probes_after_first
        assert cache.stats.writeback_direct == 2

    def test_absent_line_probes_all_candidates_then_bypasses(self):
        cache = make_cache(ways=4, capacity=16 * 1024, dcp=FiniteDcpDirectory())
        assert not cache.writeback(0x7000)
        stats = cache.stats
        # A non-authoritative miss cannot bypass without proof: all four
        # candidate ways are probed before the line goes to NVM.
        assert stats.writeback_probe_accesses == 4
        assert stats.cache_read_transfers == 4
        assert stats.writeback_bypass == 1
        assert stats.nvm_writes == 1


class GeneratorSteering(UnbiasedSteering):
    """Returns its candidates as a one-shot generator, as a policy
    legally may: the access path must not assume len()/index() work."""

    def candidate_ways(self, set_index, tag):
        return (way for way in range(self.ways))


class TestCandidateIterables:
    def test_probe_hit_cost_with_generator_candidates(self):
        cache = make_cache(dcp=None, steering=None)
        cache.steering = GeneratorSteering(cache.geometry)
        cache.read(0x3000)
        way = cache.resident_way(0x3000)
        assert cache.writeback(0x3000)
        # Serialized probe: ways 0..way are read before the hit.
        assert cache.stats.writeback_probe_accesses == way + 1

    def test_probe_miss_cost_with_generator_candidates(self):
        cache = make_cache(ways=4, capacity=16 * 1024, dcp=None)
        cache.steering = GeneratorSteering(cache.geometry)
        assert not cache.writeback(0x3000)
        assert cache.stats.writeback_probe_accesses == 4

    def test_read_path_accepts_generator_candidates(self):
        cache = make_cache(dcp=None)
        cache.steering = GeneratorSteering(cache.geometry)
        assert not cache.read(0x3000).hit
        assert cache.read(0x3000).hit
