"""Tests for the deterministic fault-injection harness."""

import errno
import json

import pytest

from repro.errors import ConfigError
from repro.exec.faults import (
    FAULT_PLAN_ENV,
    KIND_SITES,
    SITE_JOB,
    SITE_STORE_ENTRY,
    SITE_STORE_WRITE,
    SITE_TRACE_ENTRY,
    FaultPlan,
    FaultRule,
    active_plan,
    fault_point,
    install,
    uninstall,
)


@pytest.fixture(autouse=True)
def _clean_install():
    yield
    uninstall()


class TestParse:
    def test_full_grammar(self, tmp_path):
        plan = FaultPlan.parse(
            f"seed=13;rate=0.5;hang_secs=30;dir={tmp_path};"
            "crash=2;os_error=3"
        )
        assert plan.seed == 13
        assert plan.rate == 0.5
        assert plan.hang_secs == 30.0
        assert plan.ledger == tmp_path
        assert {r.kind: r.times for r in plan.rules} == {
            "crash": 2, "os_error": 3,
        }

    def test_empty_spec_is_inert(self):
        plan = FaultPlan.parse("")
        assert plan.rules == []

    def test_zero_budget_rules_dropped(self):
        plan = FaultPlan.parse("crash=0;os_error=1")
        assert [r.kind for r in plan.rules] == ["os_error"]

    @pytest.mark.parametrize("bad", [
        "bogus=1",          # unknown kind/field
        "crash",            # missing =value
        "crash=two",        # non-integer budget
        "crash=-1",         # negative budget
        "rate=1.5",         # rate out of [0, 1]
        "rate=x",           # non-float
        "hang_secs=0",      # non-positive hang
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            FaultPlan.parse(bad)

    def test_every_kind_has_a_site(self):
        for kind in KIND_SITES:
            plan = FaultPlan.parse(f"{kind}=1")
            assert [r.kind for r in plan.rules] == [kind]


class TestFiring:
    def test_no_plan_is_a_noop(self):
        # No env var, nothing installed: fault_point must do nothing.
        fault_point(SITE_JOB, token="anything")

    def test_os_error_fires_exactly_budget_times(self):
        install(FaultPlan([FaultRule("os_error", 2)]))
        for attempt in range(2):
            with pytest.raises(OSError) as info:
                fault_point(SITE_JOB, token=f"t{attempt}")
            assert info.value.errno == errno.EAGAIN
        fault_point(SITE_JOB, token="t2")  # budget exhausted: no-op
        assert active_plan().fired == {"os_error": 2}

    def test_worker_only_kinds_skipped_in_main_process(self):
        # crash/hang must never kill or stall the harness itself.
        install(FaultPlan([FaultRule("crash", 5), FaultRule("hang", 5)]))
        fault_point(SITE_JOB, token="x")
        assert active_plan().fired == {}

    def test_rate_zero_never_fires(self):
        install(FaultPlan([FaultRule("os_error", 100)], rate=0.0))
        for attempt in range(20):
            fault_point(SITE_JOB, token=f"t{attempt}")
        assert active_plan().fired == {}

    def test_decision_is_seeded_and_deterministic(self):
        decide = FaultPlan([], rate=0.5, seed=13)._decide
        outcomes = [decide("os_error", f"t{n}") for n in range(64)]
        again = [decide("os_error", f"t{n}") for n in range(64)]
        assert outcomes == again
        assert any(outcomes) and not all(outcomes)  # rate actually bites
        other_seed = FaultPlan([], rate=0.5, seed=14)._decide
        assert outcomes != [other_seed("os_error", f"t{n}") for n in range(64)]

    def test_site_binding(self):
        # disk_full belongs to store.write: a job-site opportunity must
        # not consume its budget.
        install(FaultPlan([FaultRule("disk_full", 1)]))
        fault_point(SITE_JOB, token="x")
        assert active_plan().fired == {}
        with pytest.raises(OSError) as info:
            fault_point(SITE_STORE_WRITE, token="x")
        assert info.value.errno == errno.ENOSPC

    def test_ledger_budget_is_shared(self, tmp_path):
        # Two plan instances (stand-ins for two worker processes) share
        # one budget through the ledger directory.
        first = FaultPlan([FaultRule("os_error", 2)], ledger=str(tmp_path))
        second = FaultPlan([FaultRule("os_error", 2)], ledger=str(tmp_path))
        with pytest.raises(OSError):
            first.fire(SITE_JOB, "a")
        with pytest.raises(OSError):
            second.fire(SITE_JOB, "b")
        first.fire(SITE_JOB, "c")   # exhausted globally: no-ops
        second.fire(SITE_JOB, "d")
        slots = sorted(p.name for p in tmp_path.iterdir())
        assert slots == ["os_error.0", "os_error.1"]


class TestEntryCorruption:
    def test_corrupt_store_garbles_file(self, tmp_path):
        victim = tmp_path / "entry.json"
        victim.write_text(json.dumps({"ok": True}), encoding="utf-8")
        install(FaultPlan([FaultRule("corrupt_store", 1)]))
        fault_point(SITE_STORE_ENTRY, token="x", path=str(victim))
        with pytest.raises(json.JSONDecodeError):
            json.loads(victim.read_text(encoding="utf-8"))

    def test_truncate_trace_halves_file(self, tmp_path):
        victim = tmp_path / "entry.npz"
        victim.write_bytes(b"\x00" * 100)
        install(FaultPlan([FaultRule("truncate_trace", 1)]))
        fault_point(SITE_TRACE_ENTRY, token="x", path=str(victim))
        assert victim.stat().st_size == 50


class TestActivePlan:
    def test_env_plan_cached_per_spec(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "os_error=1")
        plan = active_plan()
        assert plan is active_plan()  # same spec: cached instance
        monkeypatch.setenv(FAULT_PLAN_ENV, "os_error=2")
        assert active_plan() is not plan  # spec change takes effect

    def test_env_cleared_deactivates(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "os_error=1")
        assert active_plan() is not None
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert active_plan() is None

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "os_error=1")
        mine = FaultPlan([])
        install(mine)
        assert active_plan() is mine
        uninstall()
        assert active_plan() is not mine

    def test_malformed_env_raises_config_error(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "nope=1")
        with pytest.raises(ConfigError):
            active_plan()
