"""Tests for the CPU front-end and the L3-filtering effect."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.errors import SimulationError, WorkloadError
from repro.sim.frontend import (
    FrontendSpec,
    RawAccessGenerator,
    mru_accuracy_at_level,
    run_frontend,
)


class TestRawGenerator:
    def test_deterministic(self):
        spec = FrontendSpec()
        a = list(RawAccessGenerator(spec, seed=3).accesses(2000))
        b = list(RawAccessGenerator(spec, seed=3).accesses(2000))
        assert a == b

    def test_exact_count(self):
        stream = list(RawAccessGenerator(FrontendSpec(), seed=1).accesses(777))
        assert len(stream) == 777

    def test_word_level_reuse(self):
        # Consecutive accesses frequently share a line (L1 locality).
        stream = list(RawAccessGenerator(FrontendSpec(), seed=1).accesses(4000))
        same_line = sum(
            1
            for i in range(1, len(stream))
            if stream[i][0] // 64 == stream[i - 1][0] // 64
        )
        assert same_line / len(stream) > 0.5

    def test_write_fraction(self):
        stream = list(RawAccessGenerator(FrontendSpec(), seed=1).accesses(8000))
        writes = sum(w for _, w in stream)
        assert 0.18 < writes / 8000 < 0.32

    def test_spec_validation(self):
        with pytest.raises(WorkloadError):
            FrontendSpec(hot_objects=100, total_objects=50)
        with pytest.raises(WorkloadError):
            FrontendSpec(burst_lines=0)
        with pytest.raises(WorkloadError):
            FrontendSpec(words_per_line=0)

    def test_count_validation(self):
        with pytest.raises(WorkloadError):
            list(RawAccessGenerator(FrontendSpec()).accesses(0))


class TestRunFrontend:
    def _result(self, raw=40_000):
        return run_frontend(
            FrontendSpec(),
            raw,
            seed=5,
            l1=CacheGeometry(16 * 1024, 8),
            l2=CacheGeometry(128 * 1024, 8),
            l3=CacheGeometry(1024 * 1024, 16),
        )

    def test_filtering_happens(self):
        result = self._result()
        assert result.l1_hit_rate > 0.6  # word-level reuse absorbed
        assert 0.0 < result.filter_rate < 1.0
        assert result.dram_cache_reads < result.raw_accesses

    def test_trace_is_line_granular_misses(self):
        result = self._result()
        trace = result.dram_cache_trace
        assert len(trace) > 0
        assert trace.instructions_per_access > 3.0  # rescaled upward

    def test_filtered_stream_loses_line_reuse(self):
        """The defining property: consecutive same-line accesses are gone."""
        result = self._result()
        addrs = result.dram_cache_trace.addrs
        same_line = sum(
            1
            for i in range(1, len(addrs))
            if addrs[i] // 64 == addrs[i - 1] // 64
        )
        assert same_line / max(len(addrs), 1) < 0.05

    def test_validation(self):
        with pytest.raises(SimulationError):
            run_frontend(FrontendSpec(), 0)


class TestMruFilteringEffect:
    def test_mru_worse_after_filtering(self):
        """The paper's Section II-D claim, end to end."""
        spec = FrontendSpec()
        raw = 120_000
        result = run_frontend(
            spec, raw, seed=7,
            l1=CacheGeometry(16 * 1024, 8),
            l2=CacheGeometry(128 * 1024, 8),
            l3=CacheGeometry(1024 * 1024, 16),
        )
        geometry = CacheGeometry(8 * 1024 * 1024, 2)
        raw_accuracy = mru_accuracy_at_level(
            RawAccessGenerator(spec, seed=7).accesses(raw), geometry
        )
        filtered_accuracy = mru_accuracy_at_level(
            zip(result.dram_cache_trace.addrs, result.dram_cache_trace.writes),
            geometry,
        )
        assert raw_accuracy > 0.95
        assert filtered_accuracy < raw_accuracy - 0.05
